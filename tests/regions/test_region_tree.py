"""Tests for fields, regions, partitions, and region trees."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (Extent, FieldSpace, IndexSpace, RegionTree,
                   RegionTreeError)

from tests.conftest import make_fig1_tree, random_trees


class TestFieldSpace:
    def test_basic(self):
        fs = FieldSpace({"up": np.float64, "down": "int32"})
        assert fs.names == ("up", "down")
        assert fs["up"].dtype == np.float64
        assert fs["down"].dtype == np.int32
        assert "up" in fs and "sideways" not in fs
        assert len(fs) == 2

    def test_empty_rejected(self):
        with pytest.raises(RegionTreeError):
            FieldSpace({})

    def test_bad_name_rejected(self):
        with pytest.raises(RegionTreeError):
            FieldSpace({"": np.float64})

    def test_unknown_lookup(self):
        fs = FieldSpace({"x": np.float64})
        with pytest.raises(RegionTreeError):
            fs["y"]


class TestRegionTreeConstruction:
    def test_from_count(self):
        tree = RegionTree(10, {"x": np.float64})
        assert tree.root.space.size == 10
        assert tree.root.is_root and tree.root.depth == 0

    def test_from_extent(self):
        tree = RegionTree(Extent((4, 4)), {"x": np.float64})
        assert tree.root.space.size == 16

    def test_from_sparse_space(self):
        space = IndexSpace.from_indices([2, 5, 9])
        tree = RegionTree(space, {"x": np.float64})
        assert tree.root.space == space

    def test_invalid_roots(self):
        with pytest.raises(RegionTreeError):
            RegionTree(0, {"x": np.float64})
        with pytest.raises(RegionTreeError):
            RegionTree(IndexSpace.empty(), {"x": np.float64})
        with pytest.raises(RegionTreeError):
            RegionTree("eight", {"x": np.float64})


class TestPartitions:
    def test_fig1_shape(self):
        tree, P, G = make_fig1_tree()
        assert P.disjoint and P.complete and not P.is_aliased
        assert not G.disjoint and not G.complete and G.is_aliased
        assert len(P) == 3 and len(G) == 3
        assert P[0].parent is tree.root
        assert P[0].depth == 1
        assert P[1].name == "N.P[1]"

    def test_declared_properties_verified(self):
        tree = RegionTree(8, {"x": np.float64})
        halves = [IndexSpace.from_range(0, 4), IndexSpace.from_range(4, 8)]
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("bad", halves, disjoint=False)
        overlapping = [IndexSpace.from_range(0, 5), IndexSpace.from_range(4, 8)]
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("bad2", overlapping, disjoint=True)
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("bad3", [halves[0]], complete=True)

    def test_subset_enforced(self):
        tree = RegionTree(8, {"x": np.float64})
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("oob", [IndexSpace.from_indices([9])])

    def test_duplicate_name_rejected(self):
        tree = RegionTree(8, {"x": np.float64})
        tree.root.create_partition("P", [IndexSpace.from_range(0, 4)])
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("P", [IndexSpace.from_range(4, 8)])

    def test_empty_partition_rejected(self):
        tree = RegionTree(8, {"x": np.float64})
        with pytest.raises(RegionTreeError):
            tree.root.create_partition("empty", [])

    def test_lookup(self):
        tree, P, G = make_fig1_tree()
        assert tree.root.partition("P") is P
        with pytest.raises(RegionTreeError):
            tree.root.partition("Z")
        assert set(tree.root.partitions) == {"P", "G"}

    def test_subregions_overlapping(self):
        _, P, G = make_fig1_tree()
        hits = G.subregions_overlapping(P[0].space)  # elements 0..3
        assert [g.name for g in hits] == [g.name for g in G
                                          if g.space.overlaps(P[0].space)]
        assert len(hits) == 3  # G[0] has 3, G[1] has 0, G[2] has 0,4


class TestTraversal:
    def test_path_from_root(self):
        tree, P, _ = make_fig1_tree()
        sub = P[1].create_partition(
            "Q", [IndexSpace.from_range(4, 6), IndexSpace.from_range(6, 8)],
            disjoint=True, complete=True)
        path = sub[0].path_from_root()
        assert [r.name for r in path] == ["N", "N.P[1]", "N.P[1].Q[0]"]
        assert sub[0].depth == 2

    def test_walk_covers_all(self):
        tree, _, _ = make_fig1_tree()
        assert {r.uid for r in tree.walk()} == {r.uid for r in tree.regions}
        assert len(tree) == 7  # root + 3 P + 3 G

    def test_descendants(self):
        tree, P, G = make_fig1_tree()
        names = {r.name for r in tree.root.descendants()}
        assert len(names) == 6
        assert not list(P[0].descendants())

    def test_overlaps(self):
        _, P, G = make_fig1_tree()
        assert P[0].overlaps(G[1])    # G[1] contains 0
        assert not P[1].overlaps(G[0] if False else P[2])

    def test_find_disjoint_complete(self):
        tree, P, _ = make_fig1_tree()
        assert tree.find_disjoint_complete_partition() is P

    def test_find_disjoint_complete_none(self):
        tree = RegionTree(8, {"x": np.float64})
        tree.root.create_partition("half", [IndexSpace.from_range(0, 4)])
        assert tree.find_disjoint_complete_partition() is None

    @settings(max_examples=25)
    @given(random_trees())
    def test_random_trees_wellformed(self, tree):
        for region in tree.walk():
            assert region.space.issubset(tree.root.space)
            for part in region.partitions.values():
                for sub in part.subregions:
                    assert sub.space.issubset(region.space)
                    assert sub.parent is region
