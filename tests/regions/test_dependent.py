"""Tests for dependent partitioning operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import IndexSpace, RegionTree, RegionTreeError
from repro.regions.dependent import (difference_partition, equal_partition,
                                     image_partition, intersection_partition,
                                     partition_by_field,
                                     partition_by_predicate,
                                     preimage_partition, union_partition)


def make_tree(n=12):
    return RegionTree(n, {"x": np.float64})


class TestPartitionByField:
    def test_colors_routed(self):
        tree = make_tree(6)
        part = partition_by_field(tree.root, "C",
                                  np.array([0, 1, 0, 2, 1, 0]))
        assert [list(s.space) for s in part] == [[0, 2, 5], [1, 4], [3]]
        assert part.disjoint and part.complete

    def test_negative_colors_excluded(self):
        tree = make_tree(4)
        part = partition_by_field(tree.root, "C", np.array([0, -1, 0, -1]))
        assert part.disjoint and not part.complete
        assert list(part[0].space) == [0, 2]

    def test_explicit_num_colors(self):
        tree = make_tree(4)
        part = partition_by_field(tree.root, "C", np.array([0, 0, 0, 0]),
                                  num_colors=3)
        assert len(part) == 3
        assert part[1].space.is_empty

    def test_shape_validated(self):
        tree = make_tree(4)
        with pytest.raises(RegionTreeError):
            partition_by_field(tree.root, "C", np.array([0, 1]))

    @settings(max_examples=25)
    @given(st.lists(st.integers(0, 3), min_size=4, max_size=12))
    def test_property_disjoint_cover(self, colors):
        tree = make_tree(len(colors))
        part = partition_by_field(tree.root, "C", np.array(colors))
        union = IndexSpace.union_all([s.space for s in part])
        assert union == tree.root.space
        assert sum(s.space.size for s in part) == len(colors)


class TestImagePreimage:
    def test_image_matches_ghosts(self):
        """The circuit's ghost partition is the image of its wires."""
        tree = make_tree(12)
        part = image_partition(tree.root, "G",
                               [np.array([3, 4, 4]), np.array([0, 7])])
        assert list(part[0].space) == [3, 4]
        assert list(part[1].space) == [0, 7]

    def test_image_clips(self):
        tree = make_tree(4)
        part = image_partition(tree.root, "G", [np.array([1, 99])])
        assert list(part[0].space) == [1]

    def test_image_unclipped_validates(self):
        tree = make_tree(4)
        with pytest.raises(RegionTreeError):
            image_partition(tree.root, "G", [np.array([99])], clip=False)

    def test_preimage(self):
        tree = make_tree(6)
        through = equal_partition(tree.root, "P", 2)   # [0..2], [3..5]
        src_tree = make_tree(4)
        pointers = np.array([0, 5, 3, 1])
        part = preimage_partition(src_tree.root, "Q", pointers, through)
        assert list(part[0].space) == [0, 3]   # point into [0..2]
        assert list(part[1].space) == [1, 2]   # point into [3..5]
        assert part.disjoint

    def test_preimage_shape_validated(self):
        tree = make_tree(6)
        through = equal_partition(tree.root, "P", 2)
        with pytest.raises(RegionTreeError):
            preimage_partition(tree.root, "Q", np.array([0]), through)


class TestSetOperators:
    def make_two(self, tree):
        a = tree.root.create_partition(
            "A", [IndexSpace.from_range(0, 8), IndexSpace.from_range(6, 12)])
        b = tree.root.create_partition(
            "B", [IndexSpace.from_range(4, 10), IndexSpace.from_range(0, 2)])
        return a, b

    def test_difference(self):
        tree = make_tree(12)
        a, b = self.make_two(tree)
        part = difference_partition(tree.root, "D", a, b)
        assert list(part[0].space) == [0, 1, 2, 3]
        assert list(part[1].space) == [6, 7, 8, 9, 10, 11]

    def test_intersection(self):
        tree = make_tree(12)
        a, b = self.make_two(tree)
        part = intersection_partition(tree.root, "I", a, b)
        assert list(part[0].space) == [4, 5, 6, 7]
        assert part[1].space.is_empty

    def test_union(self):
        tree = make_tree(12)
        a, b = self.make_two(tree)
        part = union_partition(tree.root, "U", a, b)
        assert list(part[0].space) == list(range(10))
        assert list(part[1].space) == [0, 1] + list(range(6, 12))

    def test_arity_checked(self):
        tree = make_tree(12)
        a, b = self.make_two(tree)
        c = tree.root.create_partition("C", [tree.root.space])
        with pytest.raises(RegionTreeError):
            difference_partition(tree.root, "X", a, c)


class TestEqualAndPredicate:
    def test_equal_partition(self):
        tree = make_tree(10)
        part = equal_partition(tree.root, "E", 3)
        assert part.disjoint and part.complete
        assert [s.space.size for s in part] in ([3, 4, 3], [4, 3, 3],
                                                [3, 3, 4])

    def test_equal_partition_of_sparse_region(self):
        tree = RegionTree(IndexSpace.from_indices([1, 5, 9, 13]),
                          {"x": np.float64})
        part = equal_partition(tree.root, "E", 2)
        assert list(part[0].space) == [1, 5]
        assert list(part[1].space) == [9, 13]

    def test_equal_validates(self):
        tree = make_tree(3)
        with pytest.raises(RegionTreeError):
            equal_partition(tree.root, "E", 5)

    def test_predicates(self):
        tree = make_tree(10)
        part = partition_by_predicate(
            tree.root, "Pr",
            [lambda idx: idx % 2 == 0, lambda idx: idx >= 7])
        assert list(part[0].space) == [0, 2, 4, 6, 8]
        assert list(part[1].space) == [7, 8, 9]
        assert part.is_aliased  # 8 is in both

    def test_predicate_shape_checked(self):
        tree = make_tree(4)
        with pytest.raises(RegionTreeError):
            partition_by_predicate(tree.root, "Pr",
                                   [lambda idx: np.array([True])])


class TestEndToEnd:
    def test_circuit_ghosts_via_image(self):
        """Rebuild Figure 2's structure with dependent operators and run
        coherence over it."""
        from repro import READ_WRITE, RegionRequirement, Runtime, reduce

        tree = RegionTree(12, {"up": np.float64, "down": np.float64})
        P = equal_partition(tree.root, "P", 3)
        wires = [np.array([3, 4]), np.array([0, 7, 8]), np.array([0, 4, 11])]
        G = image_partition(tree.root, "G", wires)
        rt = Runtime(tree, {"up": np.zeros(12), "down": np.zeros(12)},
                     algorithm="raycast")

        def body(p, g):
            p += 1.0
            g += 2.0
        for i in range(3):
            rt.launch(f"t1[{i}]",
                      [RegionRequirement(P[i], "up", READ_WRITE),
                       RegionRequirement(G[i], "down", reduce("sum"))],
                      body, point=i)
        down = rt.read_field("down")
        assert down[0] == 4.0   # ghost of pieces 1 and 2
        assert down[4] == 4.0   # ghost of pieces 0 and 2
