"""Critical-path analyzer tests on hand-built span DAGs with exact
durations — no clocks involved."""

import pytest

from repro.obs.critpath import (critical_path, deps_from_spans,
                                select_task_spans)
from repro.obs.tracer import Span


def task_span(task_id, seconds, deps=(), name=None, pid=0, tid=0,
              start=None, span_id=None):
    start = float(task_id) if start is None else start
    return Span(name=name or f"t{task_id}", category="task",
                start=start, end=start + seconds, pid=pid, tid=tid,
                span_id=span_id or (1000 + task_id),
                args={"task_id": task_id, "deps": list(deps)})


class TestSelection:
    def test_one_span_per_task_earliest_wins(self):
        spans = [task_span(1, 0.5, start=5.0),
                 task_span(1, 0.5, start=2.0)]
        chosen = select_task_spans(spans)
        assert chosen[1].start == 2.0

    def test_majority_group_wins(self):
        # Shard replica (pid 2) recorded both tasks; the driver group
        # only one — the fuller timeline wins.
        spans = [task_span(1, 0.1, pid=0, tid=0),
                 task_span(1, 0.1, pid=2, tid=1),
                 task_span(2, 0.1, pid=2, tid=1)]
        chosen = select_task_spans(spans)
        assert set(chosen) == {1, 2}
        assert all(s.pid == 2 for s in chosen.values())

    def test_tie_breaks_toward_reference_replica(self):
        spans = [task_span(1, 0.1, pid=2, tid=1),
                 task_span(1, 0.1, pid=0, tid=0)]
        (span,) = select_task_spans(spans).values()
        assert (span.pid, span.tid) == (0, 0)

    def test_ignores_non_task_and_untagged_spans(self):
        spans = [Span("x", "runtime", 0.0, 1.0),
                 Span("y", "task", 0.0, 1.0)]  # no task_id arg
        assert select_task_spans(spans) == {}

    def test_deps_from_spans(self):
        chosen = select_task_spans([task_span(3, 0.1, deps=(1, 2))])
        assert deps_from_spans(chosen) == {3: (1, 2)}


class TestLongestPath:
    def test_weighted_path_beats_hop_count(self):
        # Diamond: 1 -> {2, 3} -> 4.  Task 3 is slow, so the longest
        # weighted path must route through it.
        spans = [task_span(1, 1.0),
                 task_span(2, 0.1, deps=(1,)),
                 task_span(3, 5.0, deps=(1,)),
                 task_span(4, 1.0, deps=(2, 3))]
        report = critical_path(spans)
        assert [s.task_id for s in report.steps] == [1, 3, 4]
        assert report.total == pytest.approx(7.0)
        assert report.span_total == pytest.approx(7.1)
        assert report.tasks == 4
        assert report.steps[-1].cumulative == pytest.approx(7.0)
        assert 0.0 < report.parallel_fraction < 0.02

    def test_independent_tasks_path_is_single_longest(self):
        spans = [task_span(1, 1.0), task_span(2, 3.0), task_span(3, 2.0)]
        report = critical_path(spans)
        assert [s.task_id for s in report.steps] == [2]
        assert report.total == pytest.approx(3.0)

    def test_explicit_deps_override_span_args(self):
        spans = [task_span(1, 1.0), task_span(2, 1.0, deps=(1,))]
        report = critical_path(spans, deps={1: (), 2: ()})
        assert len(report.steps) == 1

    def test_graph_mode(self):
        class FakeGraph:
            task_ids = {1, 2}

            def dependences_of(self, tid):
                return (1,) if tid == 2 else ()

        spans = [task_span(1, 1.0), task_span(2, 1.0)]
        report = critical_path(spans, graph=FakeGraph())
        assert [s.task_id for s in report.steps] == [1, 2]
        assert report.total == pytest.approx(2.0)

    def test_empty_input(self):
        report = critical_path([])
        assert report.steps == []
        assert "tracer enabled" in report.render()


class TestAttribution:
    def test_per_phase_from_child_spans(self):
        parent = task_span(1, 1.0)
        child = Span("materialize", "visibility.raycast",
                     start=parent.start, end=parent.start + 0.4,
                     parent_id=parent.span_id)
        report = critical_path([parent, child])
        assert report.per_phase["visibility.raycast"] == pytest.approx(0.4)
        assert report.per_phase["runtime.other"] == pytest.approx(0.6)

    def test_off_path_children_not_attributed(self):
        on_path = task_span(1, 1.0)
        off_path = task_span(2, 0.1)  # not on the single-task longest path
        stray = Span("commit", "visibility.painter",
                     start=off_path.start, end=off_path.start + 0.05,
                     parent_id=off_path.span_id)
        report = critical_path([on_path, off_path, stray])
        assert [s.task_id for s in report.steps] == [1]
        assert "visibility.painter" not in report.per_phase

    def test_render_table(self):
        spans = [task_span(1, 1.0), task_span(2, 2.0, deps=(1,))]
        text = critical_path(spans).render(top_k=1)
        assert "critical path: 2 of 2 tasks" in text
        assert "top 1 spans" in text
        assert "t2" in text and "t1" not in text.split("top 1")[1]
