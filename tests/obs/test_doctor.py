"""``repro doctor``: the escape-hatch registry resolves values and
origins from an explicit environment — no subsystem imports, no
monkeypatching of the real ``os.environ``."""

from repro.obs.doctor import (HATCHES, config_snapshot, render_doctor,
                              resolve_hatches)


def by_env(environ=None):
    return {row["env"]: row for row in resolve_hatches(environ)}


def test_defaults_have_default_origin():
    rows = by_env({})
    assert set(rows) == {h.env for h in HATCHES}
    for row in rows.values():
        assert row["origin"] == "default"
        assert row["raw"] is None
    assert rows["REPRO_NO_GEOM_CACHE"]["value"] == "enabled"
    assert rows["REPRO_PRECEDENCE"]["value"] == "opt-in (off)"
    assert rows["REPRO_NO_FLIGHT"]["value"] == "armable"


def test_truthy_override_flips_value_and_origin():
    rows = by_env({"REPRO_NO_GEOM_CACHE": "1", "REPRO_PRECEDENCE": "yes"})
    assert rows["REPRO_NO_GEOM_CACHE"]["value"] == "disabled"
    assert rows["REPRO_NO_GEOM_CACHE"]["origin"] == "env"
    assert rows["REPRO_PRECEDENCE"]["value"] == "on"
    assert rows["REPRO_PRECEDENCE"]["origin"] == "env"


def test_falsey_string_is_still_the_default_outcome():
    # REPRO_NO_COLUMNAR=0 does not disable anything: the subsystems only
    # honor truthy strings, and doctor must agree with them
    rows = by_env({"REPRO_NO_COLUMNAR": "0"})
    assert rows["REPRO_NO_COLUMNAR"]["value"] == "enabled"
    assert rows["REPRO_NO_COLUMNAR"]["origin"] == "default"
    assert rows["REPRO_NO_COLUMNAR"]["raw"] == "0"


def test_value_kind_reports_the_raw_setting():
    rows = by_env({"REPRO_BENCH_MAX_NODES": "64"})
    assert rows["REPRO_BENCH_MAX_NODES"]["value"] == "64"
    assert rows["REPRO_BENCH_MAX_NODES"]["origin"] == "env"
    assert by_env({})["REPRO_BENCH_MAX_NODES"]["value"] \
        == "512 (full sweep)"


def test_config_snapshot_is_keyed_by_env_var():
    snap = config_snapshot({"REPRO_NO_FLIGHT": "true"})
    assert set(snap) == {h.env for h in HATCHES}
    assert snap["REPRO_NO_FLIGHT"] == {
        "value": "hard-disabled", "origin": "env", "raw": "true"}
    assert "raw" not in snap["REPRO_NO_GEOM_CACHE"]


def test_render_lists_every_hatch_with_header():
    table = render_doctor({"REPRO_BENCH_MAX_NODES": "32"})
    lines = table.splitlines()
    assert len(lines) == len(HATCHES) + 1
    assert lines[0].split()[:2] == ["hatch", "env"]
    for hatch in HATCHES:
        assert any(hatch.env in line for line in lines[1:])
    assert any("32" in line and "env" in line for line in lines)
