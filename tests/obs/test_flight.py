"""Flight recorder: rings, triggers, cooldown, rotation, size cap,
schema validation, and the incident report.  Everything runs on a
FakeClock — no sleeps, no real incidents required."""

import json
from types import SimpleNamespace

import pytest

from repro.distributed.faults import FakeClock
from repro.obs import tracer as tracing
from repro.obs.flight import (BLACKBOX_SCHEMA, ENV_DISABLE, FlightRecorder,
                              active_recorder, blackbox_spans,
                              load_blackbox, render_blackbox, set_recorder,
                              validate_blackbox)
from repro.obs.tracer import Instant, Span


def make_span(n, tid=0, start=0.0, dur=0.01, category="task", **args):
    return Span(name=f"s{n}", category=category, start=start,
                end=start + dur, pid=tid + 1, tid=tid, span_id=n,
                parent_id=None, args=args)


def make_instant(name="crash", category="recovery", ts=1.0, tid=0):
    return Instant(name=name, category=category, ts=ts, pid=tid + 1,
                   tid=tid, args={})


def make_event(kind, tenant="t0", session=0, detail="", at=1.0):
    return SimpleNamespace(kind=kind, tenant=tenant, session=session,
                           detail=detail, at=at)


def make_recorder(directory=None, **kw):
    kw.setdefault("clock", FakeClock())
    kw.setdefault("armed", True)
    return FlightRecorder(directory, **kw)


# ----------------------------------------------------------------------
# rings
# ----------------------------------------------------------------------
def test_disarmed_recorder_records_nothing():
    rec = make_recorder(armed=False)
    rec.record_span(make_span(0))
    rec.record_instant(make_instant())
    rec.record_event(make_event("alert", detail="x firing"))
    snap = rec.snapshot()
    assert snap["shards"] == {}
    assert snap["instants"] == []
    assert snap["tenants"] == {}
    assert rec.triggers_seen == 0


def test_rings_are_bounded_per_shard():
    rec = make_recorder(span_capacity=4)
    for n in range(10):
        rec.record_span(make_span(n, tid=n % 2))
    snap = rec.snapshot()
    assert set(snap["shards"]) == {"0", "1"}
    for shard in snap["shards"].values():
        assert len(shard["spans"]) == 4
    # the ring kept the newest spans, oldest evicted
    assert snap["shards"]["0"]["spans"][-1]["span_id"] == 8


def test_event_rings_are_keyed_per_tenant():
    rec = make_recorder(event_capacity=2)
    for k in range(5):
        rec.record_event(make_event("rejected", tenant="a", session=k))
    rec.record_event(make_event("rejected", tenant="b"))
    snap = rec.snapshot()
    assert [e["session"] for e in snap["tenants"]["a"]["events"]] == [3, 4]
    assert len(snap["tenants"]["b"]["events"]) == 1


# ----------------------------------------------------------------------
# triggers + cooldown
# ----------------------------------------------------------------------
def test_anomaly_events_trigger_dumps(tmp_path):
    cases = [
        (make_event("alert", detail="availability[fast] firing: ..."),
         "slo"),
        (make_event("breaker", detail="closed->open"), "breaker"),
        (make_event("expired", detail="expired in queue"), "deadline"),
        (make_event("cancelled", detail="finished past deadline"),
         "deadline"),
    ]
    for event, kind in cases:
        rec = make_recorder(tmp_path / kind, cooldown=0.0)
        rec.record_event(event)
        assert rec.dumps_written == 1, kind
        data = load_blackbox(rec.last_dump)
        assert data["trigger"]["kind"] == kind
        assert data["trigger"]["tenant"] == "t0"


def test_benign_events_do_not_trigger(tmp_path):
    rec = make_recorder(tmp_path)
    rec.record_event(make_event("alert", detail="x resolved"))
    rec.record_event(make_event("breaker", detail="open->half_open"))
    rec.record_event(make_event("rejected", detail="rate"))
    rec.record_event(make_event("errored", detail="boom"))
    assert rec.dumps_written == 0
    assert rec.triggers_seen == 0


def test_recovery_instant_triggers(tmp_path):
    rec = make_recorder(tmp_path, cooldown=0.0)
    rec.record_instant(make_instant("respawn", "recovery", ts=2.0))
    assert rec.dumps_written == 1
    data = load_blackbox(rec.last_dump)
    assert data["trigger"]["kind"] == "recovery"
    assert data["trigger"]["name"] == "respawn"
    # non-recovery instants land in the ring without dumping
    rec.record_instant(make_instant("note", "service", ts=3.0))
    assert rec.dumps_written == 1


def test_cooldown_debounces_alert_storms(tmp_path):
    clock = FakeClock()
    rec = make_recorder(tmp_path, clock=clock, cooldown=5.0)
    for _ in range(4):
        rec.record_event(make_event("expired"))
    assert rec.dumps_written == 1
    assert rec.dumps_suppressed == 3
    assert rec.triggers_seen == 4
    clock.advance(6.0)
    rec.record_event(make_event("expired"))
    assert rec.dumps_written == 2


def test_manual_dump_ignores_cooldown(tmp_path):
    rec = make_recorder(tmp_path, cooldown=1e9)
    rec.record_event(make_event("expired"))
    path = rec.dump("operator requested")
    assert rec.dumps_written == 2
    assert load_blackbox(path)["trigger"]["detail"] \
        == "operator requested"


# ----------------------------------------------------------------------
# files: rotation + size cap
# ----------------------------------------------------------------------
def test_rotation_keeps_newest_max_dumps(tmp_path):
    rec = make_recorder(tmp_path, max_dumps=3)
    for _ in range(7):
        rec.dump()
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == ["blackbox-00004.json", "blackbox-00005.json",
                     "blackbox-00006.json"]


def test_size_cap_sheds_oldest_evidence_and_accounts(tmp_path):
    rec = make_recorder(tmp_path, span_capacity=512, max_bytes=4096)
    for n in range(200):
        rec.record_span(make_span(n, note="x" * 64))
    path = rec.dump()
    assert path.stat().st_size <= 4096 + 2  # trailing newline
    data = load_blackbox(path)
    assert data["dropped"]["spans"] > 0
    kept = data["shards"]["0"]["spans"]
    assert kept  # newest spans survive the shedding
    assert kept[-1]["span_id"] == 199


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def valid_dump():
    rec = make_recorder()
    rec.record_span(make_span(0))
    rec.record_instant(make_instant())
    rec.record_event(make_event("expired"))
    return rec.snapshot()


def test_snapshot_validates():
    data = valid_dump()
    assert data["schema"] == BLACKBOX_SCHEMA
    assert validate_blackbox(data) == []


def test_validator_reports_key_paths():
    data = valid_dump()
    del data["shards"]["0"]["spans"][0]["end"]
    data["instants"][0]["ts"] = "late"
    data["tenants"]["t0"]["events"][0]["session"] = None
    data["trigger"]["kind"] = "gremlins"
    problems = validate_blackbox(data)
    assert "shards.0.spans[0]: missing key 'end'" in problems
    assert any(p.startswith("instants[0].ts:") for p in problems)
    assert any(p.startswith("tenants.t0.events[0].session:")
               for p in problems)
    assert "trigger.kind: unknown kind 'gremlins'" in problems


def test_validator_rejects_wrong_schema_and_shapes():
    assert validate_blackbox([]) \
        == ["$: expected object, got list"]
    assert "$: missing key 'shards'" in validate_blackbox({})
    data = valid_dump()
    data["schema"] = "repro.blackbox/9"
    assert any("expected 'repro.blackbox/1'" in p
               for p in validate_blackbox(data))
    data = valid_dump()
    data["exemplars"] = [{"metric": 3}]
    problems = validate_blackbox(data)
    assert "exemplars[0].value: missing or not a number" in problems
    assert "exemplars[0].metric: missing or not a string" in problems


def test_load_blackbox_raises_with_problem_list(tmp_path):
    data = valid_dump()
    del data["shards"]["0"]["spans"][0]["end"]
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match=r"shards\.0\.spans\[0\]"):
        load_blackbox(path)


def test_snapshot_survives_a_raising_exemplar_source():
    def broken():
        raise RuntimeError("registry gone")

    rec = make_recorder(exemplar_source=broken)
    rec.record_span(make_span(0))
    data = rec.snapshot()
    assert data["exemplars"] == []
    assert validate_blackbox(data) == []


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def test_render_blackbox_sections():
    rec = make_recorder()
    base = 0.0
    for n in range(3):
        rec.record_span(make_span(n, start=base + n * 0.01,
                                  task_id=n, deps=[]))
    rec.record_span(make_span(99, category="service.session",
                              start=base, dur=0.05, tenant="t0",
                              session=4, app="stencil", pieces=4,
                              iterations=1, algorithm="raycast",
                              backend="process"))
    rec.record_instant(make_instant("fault.crash", "recovery", ts=0.02))
    rec.record_event(make_event("expired", tenant="t0", session=4,
                                detail="expired in queue", at=0.03))
    rec.exemplar_source = lambda: [
        {"metric": "service.latency_seconds", "value": 0.05, "seq": 1,
         "trace": 99, "tenant": "t0", "session": 4, "bucket": 0.1},
        {"metric": "service.latency_seconds", "value": 0.01, "seq": 2,
         "trace": 12345, "tenant": "t0", "session": 5, "bucket": 0.1},
    ]
    data = rec.snapshot({"kind": "deadline", "name": "expired",
                         "detail": "expired in queue", "tenant": "t0",
                         "session": 4, "ts": 0.03})
    assert validate_blackbox(data) == []
    report = render_blackbox(data)
    assert "trigger    : deadline" in report
    assert "tenant=t0 session=4" in report
    assert "fault.crash" in report
    assert "critical path" in report
    assert "-> span in dump" in report
    assert "(span evicted from ring)" in report
    assert "repro explain" in report
    assert "--app stencil" in report


def test_render_config_section_names_overrides():
    rec = make_recorder(
        config_source=lambda: {"REPRO_NO_COLUMNAR":
                               {"value": "disabled", "origin": "env"}})
    report = render_blackbox(rec.snapshot())
    assert "REPRO_NO_COLUMNAR=disabled" in report
    rec = make_recorder(
        config_source=lambda: {"REPRO_NO_COLUMNAR":
                               {"value": "enabled", "origin": "default"}})
    report = render_blackbox(rec.snapshot())
    assert "all escape hatches at defaults" in report


def test_blackbox_spans_round_trip():
    rec = make_recorder()
    original = make_span(7, tid=3, start=1.0, task_id=7)
    rec.record_span(original)
    spans = blackbox_spans(rec.snapshot())
    assert len(spans) == 1
    assert spans[0] == original


# ----------------------------------------------------------------------
# arming + global plumbing
# ----------------------------------------------------------------------
def test_env_hatch_refuses_arming(monkeypatch):
    monkeypatch.setenv(ENV_DISABLE, "1")
    rec = FlightRecorder(armed=True)
    assert not rec.armed
    assert rec.arm() is False
    rec.record_span(make_span(0))
    assert rec.snapshot()["shards"] == {}
    monkeypatch.delenv(ENV_DISABLE)
    assert rec.arm() is True


def test_tracer_hooks_feed_the_installed_recorder():
    rec = make_recorder()
    previous = set_recorder(rec)
    prev_tracer = tracing.set_tracer(
        tracing.Tracer(enabled=True, retain=False))
    try:
        assert active_recorder() is rec
        with tracing.span("work", "task", task_id=3):
            pass
        tracing.instant("note", "service")
    finally:
        tracing.set_tracer(prev_tracer)
        set_recorder(previous)
    snap = rec.snapshot()
    spans = [s for shard in snap["shards"].values()
             for s in shard["spans"]]
    assert [s["name"] for s in spans] == ["work"]
    assert spans[0]["args"]["task_id"] == 3
    assert [i["name"] for i in snap["instants"]] == ["note"]


def test_absorb_feeds_flight_even_without_retention():
    rec = make_recorder()
    previous = set_recorder(rec)
    tracer = tracing.Tracer(enabled=True, retain=False)
    try:
        tracer.absorb([make_span(0, tid=5)],
                      [make_instant("respawn", "recovery", ts=1.0)])
    finally:
        set_recorder(previous)
    snap = rec.snapshot()
    assert set(snap["shards"]) == {"5"}
    assert snap["instants"][0]["name"] == "respawn"
    assert tracer.snapshot().spans == []  # retain=False buffers nothing
