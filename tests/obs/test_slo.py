"""SLO burn-rate alerting: spec validation, burn math, and the
deterministic fire/resolve state machine — all on a FakeClock hub."""

import math

import pytest

from repro.errors import MachineError
from repro.distributed.faults import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (AVAILABILITY, FAST, LATENCY, REJECTION, SLOW,
                           SloEvaluator, SloSpec, default_service_slos)
from repro.obs.telemetry import TelemetryHub
from repro.service.errors import ServiceLedger

WINDOWS = {"10s": 10.0, "1m": 60.0, "5m": 300.0}

AVAIL = SloSpec(name="availability", kind=AVAILABILITY, objective=0.99,
                good=("service.completed",),
                bad=("service.errors", "service.expired"))


def make_hub(**kwargs):
    registry = MetricsRegistry()
    clock = FakeClock()
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS, **kwargs)
    return hub, registry, clock


def tick(hub, clock, seconds=1.0):
    clock.advance(seconds)
    return hub.sample()


# ----------------------------------------------------------------------
# spec validation + burn math
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(MachineError):
        SloSpec(name="x", kind="bogus", objective=0.9,
                good=("a",), bad=("b",))
    with pytest.raises(MachineError):
        SloSpec(name="x", kind=AVAILABILITY, objective=1.0,
                good=("a",), bad=("b",))
    with pytest.raises(MachineError):
        SloSpec(name="x", kind=AVAILABILITY, objective=0.9)  # no counters
    with pytest.raises(MachineError):
        SloSpec(name="x", kind=LATENCY, objective=0.9)  # no histogram
    with pytest.raises(MachineError):
        SloEvaluator([AVAIL, AVAIL])  # duplicate names
    assert AVAIL.budget == pytest.approx(0.01)


def test_burn_rate_sums_counters_across_labels():
    hub, registry, clock = make_hub()
    registry.counter("service.completed", tenant="t0").inc(90)
    registry.counter("service.completed", tenant="t1").inc(8)
    registry.counter("service.errors", tenant="t0").inc(2)
    tick(hub, clock)
    # bad fraction 2/100 over a 1% budget -> burn 2x
    assert AVAIL.bad_fraction(hub, "10s") == pytest.approx(0.02)
    assert AVAIL.burn_rate(hub, "10s") == pytest.approx(2.0)


def test_no_data_is_not_an_outage():
    hub, registry, clock = make_hub()
    tick(hub, clock)
    assert AVAIL.bad_fraction(hub, "10s") is None
    assert AVAIL.burn_rate(hub, "10s") == 0.0
    latency = SloSpec(name="lat", kind=LATENCY, objective=0.95,
                      histogram="service.latency_seconds", threshold=1.0)
    assert latency.bad_fraction(hub, "10s") is None


def test_latency_kind_reads_the_digest():
    hub, registry, clock = make_hub()
    hist = registry.histogram("service.latency_seconds",
                              buckets=(0.1, 1.0))
    for value in (0.05, 0.05, 0.05, 5.0):
        hist.observe(value)
    tick(hub, clock)
    spec = SloSpec(name="lat", kind=LATENCY, objective=0.95,
                   histogram="service.latency_seconds", threshold=1.0)
    # 1 of 4 over the threshold against a 5% budget -> burn 5x
    assert spec.bad_fraction(hub, "10s") == pytest.approx(0.25)
    assert spec.burn_rate(hub, "10s") == pytest.approx(5.0)


# ----------------------------------------------------------------------
# acceptance: fast-burn fires and resolves, no sleeps
# ----------------------------------------------------------------------
def test_fast_burn_fires_and_resolves_deterministically():
    ledger = ServiceLedger()
    registry = MetricsRegistry()
    clock = FakeClock()
    evaluator = SloEvaluator([AVAIL], ledger=ledger, registry=registry)
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS, evaluator=evaluator)
    done = registry.counter("service.completed")
    errs = registry.counter("service.errors")

    # healthy baseline: no alert
    for _ in range(5):
        done.inc(10)
        tick(hub, clock)
    assert evaluator.firing() == []

    # a total outage: every session errors; fast burn = 100x > 14x
    # over both the 10s and 1m windows -> fires
    for _ in range(12):
        errs.inc(10)
        tick(hub, clock)
    assert "availability[fast]" in evaluator.firing()
    assert hub.firing_alerts()
    fired = [line for line in hub.alerts
             if line["name"] == "availability[fast]"]
    assert fired[0]["state"] == "firing"
    assert fired[0]["burn"]["short"] > 14.0

    # recovery: the 10s window clears first, resolving the fast alert
    # even while the 1m window still remembers the outage
    for _ in range(12):
        done.inc(10)
        tick(hub, clock)
    assert "availability[fast]" not in evaluator.firing()
    states = [line["state"] for line in hub.alerts
              if line["name"] == "availability[fast]"]
    assert states == ["firing", "resolved"]

    # every transition became a structured ledger event
    alerts = ledger.events(kind="alert")
    assert len(alerts) >= 2
    assert "availability[fast] firing" in alerts[0].detail
    assert any("availability[fast] resolved" in e.detail for e in alerts)
    assert clock.sleeps == []  # the whole march never slept


def test_slow_burn_needs_both_long_windows():
    hub, registry, clock = make_hub()
    evaluator = SloEvaluator([AVAIL])
    hub.evaluator = evaluator
    errs = registry.counter("service.errors")
    done = registry.counter("service.completed")
    # a 3% error rate: burn 3x -- over slow_factor=2, under fast=14
    for _ in range(70):
        errs.inc(3)
        done.inc(97)
        tick(hub, clock)
    assert evaluator.firing() == ["availability[slow]"]


def test_evaluator_publishes_slo_gauges():
    registry = MetricsRegistry()
    clock = FakeClock()
    evaluator = SloEvaluator([AVAIL], registry=registry)
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS, evaluator=evaluator)
    registry.counter("service.errors").inc(10)
    tick(hub, clock)
    burn = registry.find("slo.burn", slo="availability", window="10s")
    assert burn is not None and burn.value > 14.0
    firing = registry.find("slo.firing", slo="availability",
                           severity=FAST)
    assert firing is not None and firing.value == 1.0
    resolved = registry.find("slo.firing", slo="availability",
                             severity=SLOW)
    assert resolved is not None


def test_default_service_slos_cover_the_service_counters():
    specs = default_service_slos()
    assert [s.kind for s in specs] == [AVAILABILITY, LATENCY, REJECTION]
    names = {s.name for s in specs}
    assert names == {"availability", "latency-1s", "rejection"}
    for spec in specs:
        assert 0.0 < spec.objective < 1.0
        assert spec.fast_factor > spec.slow_factor


def test_alert_resolves_when_the_metric_stops_reporting():
    """Silence is 'no data', not an outage: when a source stops
    publishing mid-window the firing alert must resolve as the bad
    deltas age out — never page on the silence itself."""
    ledger = ServiceLedger()
    registry = MetricsRegistry()
    clock = FakeClock()
    evaluator = SloEvaluator([AVAIL], ledger=ledger, registry=registry)
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS, evaluator=evaluator)
    errs = registry.counter("service.errors")
    for _ in range(12):
        errs.inc(10)
        tick(hub, clock)
    assert "availability[fast]" in evaluator.firing()

    # the source goes dark: no completions, no errors, only empty ticks
    for _ in range(70):
        tick(hub, clock)
    assert evaluator.firing() == []
    assert AVAIL.bad_fraction(hub, "1m") is None
    assert AVAIL.burn_rate(hub, "1m") == 0.0
    states = [line["state"] for line in hub.alerts
              if line["name"] == "availability[fast]"]
    assert states == ["firing", "resolved"]
    resolved = [e for e in ledger.events(kind="alert")
                if "availability[fast] resolved" in e.detail]
    assert resolved
    assert clock.sleeps == []


def test_burn_rate_survives_a_counter_reset():
    """A restarted source republishes totals from zero; the hub's
    reset-aware deltas must keep the burn math finite and correct —
    no negative deltas, no phantom outage from the missing history."""
    hub, registry, clock = make_hub()
    evaluator = SloEvaluator([AVAIL])
    hub.evaluator = evaluator
    done = registry.counter("service.completed")
    errs = registry.counter("service.errors")
    for _ in range(10):
        done.inc(98)
        errs.inc(2)
        tick(hub, clock)
    assert AVAIL.burn_rate(hub, "10s") == pytest.approx(2.0)

    # the serving process restarts: cumulative totals fall back to zero
    done.value = 0.0
    errs.value = 0.0
    for _ in range(10):
        done.inc(98)
        errs.inc(2)
        tick(hub, clock)
    # every post-reset delta is non-negative and the window holds
    # exactly the post-restart traffic
    assert hub.delta("service.completed", "10s") \
        == pytest.approx(10 * 98.0)
    assert hub.delta("service.errors", "10s") >= 0
    assert AVAIL.bad_fraction(hub, "10s") == pytest.approx(0.02)
    assert AVAIL.burn_rate(hub, "10s") == pytest.approx(2.0)
    assert evaluator.firing() == []  # 2x burn is under the 14x fast gate
