"""Metrics-registry unit tests, including the publish_to bridges from
the three pre-existing instrument silos."""

import pickle
import threading

import pytest

from repro.distributed.faults import RecoveryReport
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               format_labels)
from repro.visibility.meter import CostMeter, PhaseProfile


class TestInstruments:
    def test_counter_inc_and_set_total(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", shard="0")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set_total(9)
        assert c.value == 9
        with pytest.raises(ValueError):
            c.set_total(3)  # counters cannot move backwards
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_last_value_wins(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3.0)
        g.set(1.5)
        g.add(0.5)
        assert g.value == 2.0

    def test_histogram_buckets_and_quantiles(self):
        h = Histogram("lat", {}, buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(5.0605)
        assert h.counts == [1, 2, 1, 1]  # last bucket is +inf overflow
        assert h.quantile_bound(0.5) == 0.01
        assert h.quantile_bound(1.0) == float("inf")
        assert "##" in h.render()

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", {}, buckets=(0.1, 0.01))

    def test_empty_histogram_has_no_quantiles(self):
        """An empty distribution has no quantiles: NaN, not an invented
        bound of zero (zero is a *claim* about latency; NaN is 'no
        data')."""
        import math

        h = Histogram("lat", {})
        assert math.isnan(h.quantile_bound(0.5))
        assert all(math.isnan(v) for v in h.quantile_summary().values())
        assert h.render() == "(no samples)"
        h.observe(0.005)
        assert h.quantile_bound(0.5) == 0.01
        assert "(no samples)" not in h.render()

    def test_histogram_bucket_counts_snapshot_is_detached(self):
        h = Histogram("lat", {}, buckets=(0.01, 0.1))
        h.observe(0.005)
        counts, count, total = h.bucket_counts()
        assert (counts, count, total) == ([1, 0, 0], 1, 0.005)
        counts[0] = 99  # mutating the snapshot must not touch the metric
        assert h.counts == [1, 0, 0]


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1") is reg.counter("x", a="1")
        assert reg.counter("x", a="2") is not reg.counter("x", a="1")

    def test_kind_conflict_is_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labels_render_sorted(self):
        assert format_labels({"b": 2, "a": 1}) == '{a="1",b="2"}'
        assert format_labels({}) == ""

    def test_iter_sorted_and_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.0)
        reg.histogram("c").observe(0.5)
        names = [m.full_name for m in reg]
        assert names == sorted(names)
        snap = reg.snapshot()
        assert snap["a"] == 1.0
        assert snap["b"] == 2
        assert snap["c"] == {"count": 1, "sum": 0.5}

    def test_find_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.find("nope") is None
        assert len(reg) == 0

    def test_render_table(self):
        reg = MetricsRegistry()
        reg.counter("meter.ops").inc(7)
        out = reg.render()
        assert "meter.ops" in out and "counter" in out and "7" in out

    def test_metrics_pickle_without_lock(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(3)
        clone = pickle.loads(pickle.dumps(c))
        assert clone.value == 3
        clone.inc()  # lock was rebuilt
        assert clone.value == 4

    def test_concurrent_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestPublishBridges:
    def test_cost_meter_publishes_counters(self):
        meter = CostMeter()
        meter.count("entries_scanned", 12)
        meter.touch(("eqset", 1))
        reg = MetricsRegistry()
        meter.publish_to(reg, shard="0")
        assert reg.find("meter.entries_scanned", shard="0").value == 12
        assert reg.find("meter.objects_touched", shard="0").value == 1
        meter.publish_to(reg, shard="0")  # idempotent re-publish
        assert reg.find("meter.entries_scanned", shard="0").value == 12

    def test_phase_profile_publishes(self):
        profile = PhaseProfile()
        profile.add_time("analyze", 1.5, calls=2)
        profile.add_bytes("ship", 2048)
        reg = MetricsRegistry()
        profile.publish_to(reg)
        assert reg.find("profile.calls", phase="analyze").value == 2
        assert reg.find("profile.seconds", phase="analyze").value == 1.5
        assert reg.find("profile.bytes", phase="ship").value == 2048

    def test_recovery_report_publishes(self):
        report = RecoveryReport()
        report.record_fault("crash")
        report.recoveries = 1
        report.respawns = 2
        report.recovery_seconds = 0.25
        reg = MetricsRegistry()
        report.publish_to(reg)
        assert reg.find("recovery.recoveries").value == 1
        assert reg.find("recovery.fault.crash").value == 1
        assert reg.find("recovery.respawns").value == 2
        assert reg.find("recovery.seconds").value == 0.25


class TestExemplars:
    def test_reservoir_collects_values_with_context(self):
        h = Histogram("lat", {}, buckets=(0.1, 1.0), exemplars=2,
                      exemplar_seed=7)
        h.observe(0.05, {"trace": 1, "tenant": "a"})
        h.observe(0.5, {"trace": 2, "tenant": "b"})
        h.observe(5.0)  # no exemplar offered: counted, not sampled
        rows = h.exemplars()
        assert [r["trace"] for r in rows] == [1, 2]
        assert rows[0]["bucket"] == 0.1 and rows[1]["bucket"] == 1.0
        assert rows[0]["value"] == 0.05
        assert [r["seq"] for r in rows] == [1, 2]
        assert h.count == 3

    def test_reservoir_is_bounded_and_seed_deterministic(self):
        def fill(seed):
            h = Histogram("lat", {}, buckets=(1.0,), exemplars=4,
                          exemplar_seed=seed)
            for n in range(200):
                h.observe(0.5, {"trace": n})
            return h.exemplars()

        a, b = fill(3), fill(3)
        assert len(a) == 4
        assert a == b  # same seed + same stream -> identical reservoirs
        assert fill(4) != a  # a different seed samples differently

    def test_seed_derivation_ignores_pythonhashseed(self):
        # the RNG is seeded from crc32(full_name), not builtin hash():
        # two instruments with the same name and seed must make the
        # same replacement decisions in any interpreter
        import zlib
        h = Histogram("lat", {"t": "x"}, buckets=(1.0,), exemplars=1,
                      exemplar_seed=9)
        assert h._rng.getstate() == __import__("random").Random(
            9 ^ zlib.crc32(b'lat{t="x"}')).getstate()

    def test_zero_capacity_histogram_has_no_reservoirs(self):
        h = Histogram("lat", {})
        h.observe(0.5, {"trace": 1})
        assert h.exemplars() == []

    def test_registry_exemplars_add_the_metric_name(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,), exemplars=2,
                          exemplar_seed=1, tenant="t0")
        h.observe(0.5, {"trace": 9})
        assert reg.exemplars() == [
            {"trace": 9, "value": 0.5, "seq": 1, "bucket": 1.0,
             "metric": 'lat{tenant="t0"}'}]

    def test_exemplar_histogram_pickles(self):
        h = Histogram("lat", {}, buckets=(1.0,), exemplars=2)
        h.observe(0.5, {"trace": 1})
        clone = pickle.loads(pickle.dumps(h))
        assert clone.exemplars() == h.exemplars()
        clone.observe(0.6, {"trace": 2})  # still usable after transit
        assert len(clone.exemplars()) == 2
