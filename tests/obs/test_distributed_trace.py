"""End-to-end tracing through the sharded backends.

Worker-side spans must ship back with the analyze replies, land in the
driver tracer with shard-attributed pid/tid, and appear on the matching
:class:`ShardReport`; recovery incidents must appear as instant events.
"""

import pytest

from repro.distributed import ShardedRuntime
from repro.distributed.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.obs import tracer as obs

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree

FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, multiplier=2.0,
                         max_delay=0.05)


@pytest.fixture
def driver_tracer():
    """Install a fresh enabled tracer for the test, restore after."""
    tracer = obs.Tracer()
    previous = obs.set_tracer(tracer)
    yield tracer
    obs.set_tracer(previous)


def analyze_fig1(driver_tracer, **kwargs):
    tree, P, G = make_fig1_tree()
    srt = ShardedRuntime(tree, fig1_initial(tree), shards=3,
                         checkpoint_interval=2, **kwargs)
    with srt:
        reports = srt.analyze(fig1_stream(tree, P, G, iterations=1))
    return reports, driver_tracer.snapshot()


class TestBackendAttribution:
    def test_serial_backend_reference_spans(self, driver_tracer):
        reports, buffer = analyze_fig1(driver_tracer, backend="serial")
        replica = [s for s in buffer.spans
                   if s.category == "distributed.replica"]
        assert {s.name for s in replica} == {
            "analyze.shard0", "analyze.shard1", "analyze.shard2"}
        # Reference replica runs on the driver process.
        assert all(s.pid == 0 for s in replica
                   if s.name == "analyze.shard0")
        # Hosted replicas 1..n-1 are attributed pid shard+1 / tid shard.
        others = {(s.pid, s.tid) for s in replica
                  if s.name != "analyze.shard0"}
        assert others == {(2, 1), (3, 2)}

    def test_thread_backend_spans(self, driver_tracer):
        reports, buffer = analyze_fig1(driver_tracer, backend="thread",
                                       max_workers=2)
        replica = {s.name: (s.pid, s.tid) for s in buffer.spans
                   if s.category == "distributed.replica"}
        assert replica["analyze.shard1"] == (2, 1)
        assert replica["analyze.shard2"] == (3, 2)

    def test_task_spans_cover_the_stream(self, driver_tracer):
        reports, buffer = analyze_fig1(driver_tracer, backend="serial")
        tasks = [s for s in buffer.spans if s.category == "task"]
        assert {s.args["task_id"] for s in tasks} == set(range(6))
        assert all("deps" in s.args for s in tasks)


class TestProcessBackend:
    def test_worker_spans_ship_back_and_attach_to_reports(
            self, driver_tracer):
        reports, buffer = analyze_fig1(driver_tracer, backend="process",
                                       recv_timeout=10.0, retry=FAST_RETRY)
        replica = [s for s in buffer.spans
                   if s.category == "distributed.replica"]
        by_shard = {s.args["shard"]: s for s in replica}
        assert set(by_shard) == {0, 1, 2}
        for shard in (1, 2):
            span = by_shard[shard]
            assert (span.pid, span.tid) == (shard + 1, shard)
        # Worker clocks are offset-aligned into the driver timeline:
        # shipped spans must overlap the driver's own span window.
        driver_end = max(s.end for s in buffer.spans if s.pid == 0)
        driver_start = min(s.start for s in buffer.spans if s.pid == 0)
        for shard in (1, 2):
            assert driver_start <= by_shard[shard].start <= driver_end

        for report in reports:
            if report.shard == 0:
                continue
            assert report.spans, f"shard {report.shard} shipped no spans"
            assert all(s.tid == report.shard for s in report.spans)

    def test_disabled_tracer_ships_nothing(self):
        # The default process-global tracer is disabled — workers must
        # not pay for or ship span buffers.
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=3,
                             backend="process", recv_timeout=10.0,
                             retry=FAST_RETRY)
        with srt:
            reports = srt.analyze(fig1_stream(tree, P, G, iterations=1))
        assert all(r.spans == () for r in reports)

    def test_recovery_instants_for_pinned_crash(self, driver_tracer):
        # op 0 is the first (and only) analyze request this single-window
        # run sends worker 0 — the crash fires mid-analysis.
        plan = FaultPlan(events=(FaultEvent("crash", worker=0, op=0),))
        reports, buffer = analyze_fig1(
            driver_tracer, backend="process", faults=plan,
            recv_timeout=10.0, retry=FAST_RETRY)
        names = [i.name for i in buffer.instants]
        assert "fault.crash" in names
        assert "respawn" in names
        crash = next(i for i in buffer.instants if i.name == "fault.crash")
        assert crash.category == "recovery"
        assert crash.args["worker"] == 0
        respawn = next(i for i in buffer.instants if i.name == "respawn")
        assert respawn.args["incarnation"] >= 1
        # Determinism contract still holds through the recovery.
        assert len({r.fingerprint for r in reports}) == 1
