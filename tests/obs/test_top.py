"""``repro top``: deterministic rendering, byte-stable --once golden,
live-mode repaints, and CLI exit codes."""

import io
import math

import pytest

from repro.cli import main
from repro.distributed.faults import FakeClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEvaluator, default_service_slos
from repro.obs.telemetry import TelemetryHub, TelemetrySink, load_telemetry
from repro.obs.top import (CLEAR, _fmt_seconds, render_top, run_top,
                           tenant_names, tenant_row)

WINDOWS = {"10s": 10.0, "1m": 60.0, "5m": 300.0}


def record_stream(directory, *, outage: bool = False):
    """A fixed two-tenant stream (FakeClock, so byte-identical runs)."""
    sink = TelemetrySink(directory,
                         meta={"interval": 1.0, "windows": WINDOWS})
    registry = MetricsRegistry()
    clock = FakeClock()
    evaluator = SloEvaluator(default_service_slos(), registry=registry)
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS, sink=sink, evaluator=evaluator)
    t0 = dict(tenant="tenant0")
    t1 = dict(tenant="tenant1")
    for k in range(12):
        registry.counter("service.admitted", **t0).inc(4)
        registry.counter("service.completed", **t0).inc(4)
        registry.counter("service.admitted", **t1).inc(1)
        registry.counter("service.completed", **t1).inc(1)
        if k == 0:   # one early shed; sustained shedding would page
            registry.counter("service.rejected", reason="queue_full",
                             **t1).inc(1)
        if outage:
            registry.counter("service.errors", **t0).inc(6)
        hist0 = registry.histogram("service.latency_seconds",
                                   buckets=(0.01, 0.1, 1.0), **t0)
        hist1 = registry.histogram("service.latency_seconds",
                                   buckets=(0.01, 0.1, 1.0), **t1)
        glob = registry.histogram("service.latency_seconds",
                                  buckets=(0.01, 0.1, 1.0))
        for hist, value in ((hist0, 0.05), (hist1, 0.5)):
            for _ in range(4 if hist is hist0 else 1):
                hist.observe(value)
                glob.observe(value)
        registry.gauge("service.inflight").set(3)
        registry.gauge("service.breaker").set(0)
        registry.gauge("service.queue_depth", **t0).set(2)
        registry.gauge("service.queue_depth", **t1).set(0)
        registry.gauge("service.paused", **t1).set(1)
        registry.counter("geom.cache.hits", **t0).inc(9)
        registry.counter("geom.cache.misses", **t0).inc(1)
        clock.advance(1.0)
        hub.sample()
    hub.close()
    return hub


GOLDEN = """\
repro top - window 1m (12 samples, 12.0s span, uptime 12.0s)                            alerts: none
inflight 3   breaker closed   sessions (1m): 60 adm / 60 ok / 1 rej / 0 err / 0 exp
latency (1m): p50 100ms   p95 1.0s   p99 1.0s

tenant           qps     ok    rej    err    exp  queue  paused      p50      p95      p99  degraded
----------------------------------------------------------------------------------------------------
tenant0         4.00     48      0      0      0      2      no    100ms    100ms    100ms         0
tenant1         1.00     12      1      0      0      0     yes     1.0s     1.0s     1.0s         0

geometry cache hit rate: tenant0 90%

alerts: none firing (2 transitions recorded)"""


def test_fmt_seconds():
    assert _fmt_seconds(math.nan) == "-"
    assert _fmt_seconds(None) == "-"
    assert _fmt_seconds(math.inf) == "inf"
    assert _fmt_seconds(90.0) == "1.5m"
    assert _fmt_seconds(1.0) == "1.0s"
    assert _fmt_seconds(0.1) == "100ms"
    assert _fmt_seconds(2.5e-4) == "250us"
    assert _fmt_seconds(0.0) == "0"


def test_render_without_samples():
    hub = TelemetryHub(MetricsRegistry(), clock=FakeClock(),
                       windows=WINDOWS)
    assert render_top(hub) == "repro top: no telemetry samples"


def test_render_golden_is_byte_stable(tmp_path):
    """Acceptance: --once output over a recorded file is byte-stable at
    a pinned width, twice over (same recording, same bytes)."""
    record_stream(tmp_path)
    frames = [render_top(load_telemetry(tmp_path), window="1m", width=100)
              for _ in range(2)]
    assert frames[0] == frames[1] == GOLDEN
    assert all(len(line) <= 100 for line in frames[0].splitlines())


def test_render_clips_to_width(tmp_path):
    record_stream(tmp_path)
    narrow = render_top(load_telemetry(tmp_path), window="1m", width=60)
    lines = narrow.splitlines()
    assert all(len(line) <= 60 for line in lines)
    assert lines[0].startswith("repro top - window 1m")


def test_tenant_helpers(tmp_path):
    hub = record_stream(tmp_path)
    assert tenant_names(hub) == ["tenant0", "tenant1"]
    row = tenant_row(hub, "tenant1", "1m")
    assert row["ok"] == 12
    assert row["rejected"] == 1  # summed across reason labels
    assert row["paused"] is True
    assert row["quantiles"]["p99"] == 1.0


def test_render_shows_firing_alerts(tmp_path):
    record_stream(tmp_path, outage=True)
    frame = render_top(load_telemetry(tmp_path), window="1m", width=100)
    assert "ALERTS FIRING" in frame.splitlines()[0]
    assert "FIRING availability[fast]" in frame
    assert "objective 99%" in frame


def test_run_top_once_and_live(tmp_path):
    record_stream(tmp_path)
    out = io.StringIO()
    assert run_top(tmp_path, once=True, out=out) == 0
    assert out.getvalue() == GOLDEN + "\n"

    live = io.StringIO()
    clock = FakeClock()
    assert run_top(tmp_path, refresh=0.5, clock=clock, out=live,
                   max_frames=3) == 0
    assert live.getvalue().count(CLEAR) == 3
    assert clock.sleeps == [0.5, 0.5]  # no sleep after the last frame


def test_cli_top_exit_codes(tmp_path, capsys):
    record_stream(tmp_path / "ok")
    assert main(["top", str(tmp_path / "ok"), "--once"]) == 0
    assert "repro top - window 1m" in capsys.readouterr().out

    assert main(["top", str(tmp_path / "absent"), "--once"]) == 2
    assert "error:" in capsys.readouterr().err

    bad = tmp_path / "bad"
    bad.mkdir()
    (bad / "telemetry-00000.jsonl").write_text('{"kind":"sample"}\n')
    assert main(["top", str(bad), "--once"]) == 1
    assert "not a valid telemetry stream" in capsys.readouterr().err


def test_cli_serve_telemetry_then_top_round_trip(tmp_path, capsys):
    """The full pipeline: serve --telemetry-out records a stream that
    validates against repro.telemetry/1 and renders with top --once."""
    from repro.obs.telemetry import load_telemetry, validate_telemetry

    out_dir = tmp_path / "telemetry"
    assert main(["serve", "--backend", "serial", "--tenants", "2",
                 "--sessions", "6", "--seed", "2023",
                 "--max-inflight", "32", "--queue-limit", "32",
                 "--rate", "1000", "--burst", "64",
                 "--telemetry-out", str(out_dir),
                 "--telemetry-interval", "0.05"]) == 0
    err = capsys.readouterr().err
    assert "telemetry:" in err and str(out_dir) in err

    assert validate_telemetry(out_dir) == []
    hub = load_telemetry(out_dir)
    assert hub.delta_matching("service.completed", "5m") == 6

    assert main(["top", str(out_dir), "--once", "--window", "5m"]) == 0
    frame = capsys.readouterr().out
    assert "repro top - window 5m" in frame
    assert "tenant0" in frame and "tenant1" in frame
