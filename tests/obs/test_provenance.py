"""Unit tests for the provenance ledger: record lifecycle, shard
attribution, the stable (``id()``-free) wire format, and the
``explain`` rendering."""

import pickle
import threading

import pytest

from repro import READ, READ_WRITE, IndexSpace, Runtime
from repro import reduce as reduce_priv
from repro.obs import provenance as prov
from repro.obs.provenance import (AGGREGATE_SRC, DRIVER_SHARD, INITIAL_SRC,
                                  AccessRecord, EdgeWitness, ProvenanceLedger,
                                  PruneRecord, domain_desc, explain_task,
                                  format_domain, privilege_label)

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


# ----------------------------------------------------------------------
# descriptors
# ----------------------------------------------------------------------
def test_privilege_labels():
    assert privilege_label(READ) == "read"
    assert privilege_label(READ_WRITE) == "read-write"
    assert privilege_label(reduce_priv("sum")) == "reduce(sum)"


def test_domain_desc_is_content_based():
    space = IndexSpace.from_range(4, 12)
    assert domain_desc(space) == (4, 11, 8)
    assert format_domain((4, 11, 8)) == "[4,11] n=8"
    assert domain_desc(IndexSpace.from_indices([])) == (0, -1, 0)
    assert format_domain((0, -1, 0)) == "[] n=0"


# ----------------------------------------------------------------------
# ledger lifecycle
# ----------------------------------------------------------------------
def test_disabled_ledger_records_nothing():
    led = ProvenanceLedger(enabled=False)
    led.begin_access(0, "x", "raycast", READ, IndexSpace.from_range(0, 4))
    led.edge(1, "history", "read", (0, 3, 4))
    led.end_access()
    assert len(led) == 0
    assert led.scope(3) is prov._NOOP_SCOPE


def test_record_lifecycle_and_queries():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 8)
    led.begin_access(5, "x", "raycast", READ_WRITE, space)
    led.set_source(("eqset", 0, 7, 8))
    led.edge(3, "eqset", "read", (0, 7, 8))
    led.edge(4, "summary", "read-write", (0, 3, 4), collapsed=(1, 2))
    led.prune(0, "dominated", (0, 7, 8))
    led.visit("eqsets", 2)
    led.visit("eqsets")
    led.end_access()
    assert len(led) == 1
    (rec,) = led.records_for(5)
    assert rec.phase == "materialize"
    assert rec.shard == DRIVER_SHARD
    assert rec.privilege == "read-write"
    assert rec.domain == (0, 7, 8)
    assert rec.dep_ids == {1, 2, 3, 4}
    assert rec.visited == {"eqsets": 3}
    assert rec.edges[0].via == ("eqset", 0, 7, 8)
    assert rec.pruned[0].reason == "dominated"
    assert led.records_for(5, phase="commit") == []
    assert led.records_for(99) == []


def test_end_access_drops_empty_when_asked():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    led.begin_access(0, "x", "painter", READ, space, phase="commit")
    led.end_access(keep_empty=False)
    assert len(led) == 0
    led.begin_access(0, "x", "painter", READ, space, phase="commit")
    led.end_access(keep_empty=True)
    assert len(led) == 1


def test_hooks_without_open_record_are_noops():
    led = ProvenanceLedger(enabled=True)
    led.edge(1, "history", "read", (0, 3, 4))
    led.prune(1, "disjoint", (0, 3, 4))
    led.visit("eqsets")
    led.end_access()
    assert len(led) == 0


def test_shard_scope_tags_and_restores():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    with led.scope(shard=2):
        led.begin_access(0, "x", "warnock", READ, space)
        led.end_access()
        with led.scope(shard=5):
            led.begin_access(1, "x", "warnock", READ, space)
            led.end_access()
        led.begin_access(2, "x", "warnock", READ, space)
        led.end_access()
    led.begin_access(3, "x", "warnock", READ, space)
    led.end_access()
    shards = [r.shard for r in led.snapshot()]
    assert shards == [2, 5, 2, DRIVER_SHARD]
    assert led.by_shard() == {2: 2, 5: 1, DRIVER_SHARD: 1}


def test_drain_and_absorb():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    led.begin_access(0, "x", "painter", READ, space)
    led.end_access()
    drained = led.drain()
    assert len(drained) == 1 and len(led) == 0
    led.absorb(drained)
    led.absorb([])
    assert len(led) == 1


def test_thread_local_open_records():
    """Two threads interleaving accesses never corrupt each other."""
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    barrier = threading.Barrier(2)

    def work(task_id):
        with led.scope(shard=task_id):
            led.begin_access(task_id, "x", "raycast", READ, space)
            barrier.wait()
            led.edge(100 + task_id, "eqset", "read", (0, 3, 4))
            led.end_access()

    threads = [threading.Thread(target=work, args=(i,)) for i in (1, 2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for task_id in (1, 2):
        (rec,) = led.records_for(task_id)
        assert rec.shard == task_id
        assert rec.dep_ids == {100 + task_id}


def test_set_ledger_swaps_global():
    led = ProvenanceLedger(enabled=True)
    previous = prov.set_ledger(led)
    try:
        assert prov.active_ledger() is led
        assert prov._LEDGER is led
    finally:
        prov.set_ledger(previous)
    assert prov.active_ledger() is previous


# ----------------------------------------------------------------------
# stable wire format (satellite: id()-free, pickle-safe records)
# ----------------------------------------------------------------------
def _assert_primitive(value):
    if isinstance(value, (int, float, str, bool)) or value is None:
        return
    if isinstance(value, tuple):
        for item in value:
            _assert_primitive(item)
        return
    if isinstance(value, (EdgeWitness, PruneRecord)):
        for name in value.__dataclass_fields__:
            _assert_primitive(getattr(value, name))
        return
    raise AssertionError(f"non-primitive in wire record: {value!r}")


def _record_key(rec):
    return (rec.shard, rec.task_id, rec.phase, rec.field, rec.algorithm)


def _normalized(records, keep_shard=True):
    out = []
    for rec in records:
        out.append((rec.shard if keep_shard else None, rec.task_id,
                    rec.phase, rec.field, rec.algorithm, rec.privilege,
                    rec.domain, tuple(rec.edges), tuple(rec.pruned),
                    tuple(sorted(rec.visited.items()))))
    return sorted(out, key=repr)


def _sharded_records(backend, shards=2):
    from repro.distributed import ShardedRuntime

    tree, P, G = make_fig1_tree()
    led = ProvenanceLedger(enabled=True)
    previous = prov.set_ledger(led)
    try:
        with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                            algorithm="raycast", backend=backend) as srt:
            srt.analyze(fig1_stream(tree, P, G, 2))
    finally:
        prov.set_ledger(previous)
    return led.snapshot()


def test_records_are_primitive_and_pickle_stable():
    records = _sharded_records("serial")
    assert records
    for rec in records:
        assert isinstance(rec, AccessRecord)
        for witness in rec.edges:
            _assert_primitive(witness)
        for pruned in rec.pruned:
            _assert_primitive(pruned)
        _assert_primitive(rec.domain)
    round_tripped = pickle.loads(pickle.dumps(records))
    assert round_tripped == records


def test_process_backend_round_trip_matches_serial():
    """The regression this wire format exists for: records shipped home
    from worker processes must equal the serial backend's in-memory
    records exactly (same shard tags, same content descriptors — no
    process-local uids leaking into the format)."""
    serial = _normalized(_sharded_records("serial"))
    process = _normalized(_sharded_records("process"))
    assert process == serial
    shards = {rec[0] for rec in process}
    assert shards == {0, 1}


# ----------------------------------------------------------------------
# explain rendering
# ----------------------------------------------------------------------
def test_explain_no_records_message():
    led = ProvenanceLedger(enabled=True)
    text = explain_task(led, 7)
    assert "no provenance recorded" in text


def test_explain_renders_witnesses_and_sentinels():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 8)
    led.begin_access(3, "x", "tree_painter", READ_WRITE, space)
    led.set_source(("treenode", 4))
    led.edge(INITIAL_SRC, "history", "read-write", (0, 7, 8))
    led.edge(2, "summary", "read", (0, 3, 4), collapsed=(0, 1))
    led.prune(AGGREGATE_SRC, "view_occluded", (0, 7, 8))
    led.end_access()
    text = explain_task(led, 3)
    assert "task 3" in text
    assert "[materialize] field 'x' read-write on [0,7] n=8" in text
    assert "initial write (pre-program state)" in text
    assert "summarizing tasks [0, 1]" in text
    assert "composite view (aggregated)" in text
    assert "view_occluded" in text
    assert "tree node (region uid 4)" in text


def test_explain_edge_filter():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 8)
    led.begin_access(5, "x", "raycast", READ, space)
    led.set_source(("eqset", 0, 7, 8))
    led.edge(1, "eqset", "read-write", (0, 7, 8))
    led.edge(2, "eqset", "read-write", (0, 7, 8))
    led.end_access()
    text = explain_task(led, 5, edge=(1, 5))
    assert "edge 5 <- 1" in text
    assert "edge 5 <- 2" not in text
    missing = explain_task(led, 5, edge=(9, 5))
    assert "no witness for edge 5 <- 9" in missing


def test_explain_uses_task_names():
    tree, P, G = make_fig1_tree()
    led = ProvenanceLedger(enabled=True)
    previous = prov.set_ledger(led)
    try:
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, 1))
    finally:
        prov.set_ledger(previous)
    task_id = 5
    text = explain_task(led, task_id, tasks=rt.tasks)
    assert f"task {task_id} ({rt.tasks[task_id].name})" in text


# ----------------------------------------------------------------------
# tenant attribution (the analysis-service isolation seam)
# ----------------------------------------------------------------------
def test_tenant_scope_stamps_records():
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    with led.scope(tenant="alice"):
        led.begin_access(0, "x", "raycast", READ, space)
        led.end_access()
        # shard scopes nest inside a tenant scope without clobbering it
        with led.scope(shard=3):
            led.begin_access(1, "x", "raycast", READ, space)
            led.end_access()
    led.begin_access(2, "x", "raycast", READ, space)
    led.end_access()
    records = led.snapshot()
    assert [r.tenant for r in records] == ["alice", "alice", ""]
    assert records[1].shard == 3
    assert led.by_tenant() == {"alice": 2, "": 1}
    assert len(led.records_for(1, tenant="alice")) == 1
    assert led.records_for(1, tenant="bob") == []


def test_absorb_stamps_thread_local_tenant_on_untagged():
    """Worker-shard fragments arrive untagged; absorbing them inside a
    tenant scope claims them for that tenant (without overwriting
    fragments another tenant already tagged)."""
    led = ProvenanceLedger(enabled=True)
    space = IndexSpace.from_range(0, 4)
    worker = ProvenanceLedger(enabled=True)
    worker.begin_access(0, "x", "raycast", READ, space)
    worker.end_access()
    with worker.scope(tenant="bob"):
        worker.begin_access(1, "x", "raycast", READ, space)
        worker.end_access()
    fragments = worker.drain()
    with led.scope(tenant="alice"):
        led.absorb(fragments)
    tenants = sorted(r.tenant for r in led.snapshot())
    assert tenants == ["alice", "bob"]
