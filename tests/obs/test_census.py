"""Census tests: schema validation, structural diff, metrics
publication, and rendering across every coherence algorithm."""

import json

import pytest

from repro import ALGORITHMS, Runtime
from repro.obs.census import (CENSUS_SCHEMA, SCHEMA_ID, census, census_diff,
                              publish_census, render_census, validate_census)
from repro.obs.metrics import MetricsRegistry

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


def _run(algo: str, iterations: int = 2) -> Runtime:
    tree, P, G = make_fig1_tree()
    rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
    rt.replay(fig1_stream(tree, P, G, iterations))
    return rt


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_census_validates_for_every_algorithm(algo):
    rt = _run(algo)
    doc = census(rt)
    validate_census(doc)
    assert doc["schema"] == SCHEMA_ID
    assert doc["algorithm"] == algo
    assert doc["tasks"] == len(rt.tasks)
    assert doc["edges"] == rt.graph.edge_count()
    assert set(doc["fields"]) == {"up", "down"}
    for stats in doc["fields"].values():
        assert stats["kind"] in CENSUS_SCHEMA["field_kinds"]
    # documents must be JSON-serializable end to end
    validate_census(json.loads(json.dumps(doc)))


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_census_is_pure_observation(algo):
    from repro.distributed.verify import analysis_fingerprint

    rt = _run(algo)
    before = analysis_fingerprint(rt)
    doc1 = census(rt)
    doc2 = census(rt)
    assert analysis_fingerprint(rt) == before, \
        f"{algo}: taking a census mutated the analysis state"
    assert census_diff(doc1, doc2) == {}


def test_census_diff_reports_leaves():
    rt2 = _run("raycast", iterations=2)
    rt3 = _run("raycast", iterations=3)
    diff = census_diff(census(rt2), census(rt3))
    assert diff
    assert "tasks" in diff
    a, b = diff["tasks"]
    assert a == len(rt2.tasks) and b == len(rt3.tasks)
    assert all(isinstance(path, str) and len(pair) == 2
               for path, pair in diff.items())


def test_census_publishes_gauges():
    rt = _run("raycast")
    registry = MetricsRegistry()
    doc = census(rt, registry=registry, app="fig1")
    names = {m.name for m in registry}
    assert "census.tasks" in names
    assert "census.edges" in names
    assert any(n.startswith("census.fields.up.") for n in names)
    assert "census.derived.occlusion_kill_rate" in names
    gauge = registry.gauge("census.tasks", app="fig1")
    assert gauge.value == doc["tasks"]


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_render_census_mentions_structures(algo):
    rt = _run(algo)
    doc = census(rt)
    text = render_census(doc)
    assert f"census ({algo})" in text
    assert "occlusion" in text
    kinds = {stats["kind"] for stats in doc["fields"].values()}
    if "eqsets" in kinds:
        assert "eqsets" in text
    if "tree_painter" in kinds:
        assert "composite views" in text
    if "zbuffer" in kinds:
        assert "interned sets" in text
    if "painter" in kinds:
        assert "global history" in text


# ----------------------------------------------------------------------
# validator negatives
# ----------------------------------------------------------------------
def test_validate_rejects_non_dict():
    with pytest.raises(ValueError, match="must be a dict"):
        validate_census([])


def test_validate_rejects_missing_key():
    doc = census(_run("raycast"))
    del doc["edges"]
    with pytest.raises(ValueError, match="missing required key 'edges'"):
        validate_census(doc)


def test_validate_rejects_wrong_schema():
    doc = census(_run("raycast"))
    doc["schema"] = "repro.census/0"
    with pytest.raises(ValueError, match="unknown census schema"):
        validate_census(doc)


def test_validate_rejects_unknown_field_kind():
    doc = census(_run("raycast"))
    doc["fields"]["up"]["kind"] = "octree"
    with pytest.raises(ValueError, match="unknown kind 'octree'"):
        validate_census(doc)


def test_validate_rejects_incomplete_distribution():
    doc = census(_run("raycast"))
    del doc["fields"]["up"]["sizes"]["mean"]
    with pytest.raises(ValueError, match="'sizes'.*missing 'mean'"):
        validate_census(doc)


def test_validate_rejects_non_int_meter():
    doc = census(_run("raycast"))
    doc["meter"]["entries_scanned"] = 1.5
    with pytest.raises(ValueError, match="must be an int"):
        validate_census(doc)


def test_validate_rejects_missing_derived():
    doc = census(_run("raycast"))
    del doc["derived"]["occlusion_kill_rate"]
    with pytest.raises(ValueError, match="derived block missing"):
        validate_census(doc)
