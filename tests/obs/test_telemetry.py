"""Streaming telemetry: digests, windowed hub queries, sink rotation,
schema validation, and replay — all clock-injected, no real sleeps."""

import json
import math

import pytest

from repro.errors import MachineError
from repro.distributed.faults import FakeClock
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.telemetry import (TELEMETRY_SCHEMA, QuantileDigest,
                                 TelemetryHub, TelemetrySample,
                                 TelemetrySink, load_telemetry,
                                 parse_full_name, validate_telemetry)


# ----------------------------------------------------------------------
# full-name parsing
# ----------------------------------------------------------------------
def test_parse_full_name_round_trips_format_labels():
    from repro.obs.metrics import format_labels

    labels = {"tenant": "t0", "reason": "queue_full"}
    full = "service.rejected" + format_labels(labels)
    assert parse_full_name(full) == ("service.rejected", labels)
    assert parse_full_name("service.inflight") == ("service.inflight", {})


# ----------------------------------------------------------------------
# quantile digest
# ----------------------------------------------------------------------
def test_digest_validates_centroids():
    with pytest.raises(MachineError):
        QuantileDigest([])
    with pytest.raises(MachineError):
        QuantileDigest([1.0, 1.0, 2.0])
    with pytest.raises(MachineError):
        QuantileDigest([2.0, 1.0])


def test_digest_appends_inf_tail():
    digest = QuantileDigest([1.0, 2.0])
    assert digest.centroids == (1.0, 2.0, math.inf)
    # an explicit inf tail is not doubled
    assert QuantileDigest([1.0, math.inf]).centroids == (1.0, math.inf)


def test_digest_empty_quantiles_are_nan():
    digest = QuantileDigest(DEFAULT_BUCKETS)
    assert math.isnan(digest.quantile(0.5))
    assert math.isnan(digest.fraction_at_most(1.0))
    assert all(math.isnan(v) for v in digest.quantiles().values())


def test_digest_quantile_matches_bucket_rule():
    digest = QuantileDigest([0.1, 0.5, 1.0])
    for value in (0.05, 0.05, 0.05, 0.3, 0.7, 0.7, 0.7, 0.7, 0.7, 5.0):
        digest.observe(value)
    assert digest.count == 10
    assert digest.quantile(0.0) == 0.1
    assert digest.quantile(0.5) == 1.0    # 5th obs lands in <=1.0 bucket
    assert digest.quantile(1.0) == math.inf
    assert digest.fraction_at_most(0.5) == pytest.approx(0.4)
    with pytest.raises(MachineError):
        digest.quantile(1.5)


def test_digest_merge_adds_counts():
    a = QuantileDigest([0.1, 1.0])
    b = QuantileDigest([0.1, 1.0])
    a.observe(0.05, n=3)
    b.observe(0.5, n=2)
    a.merge(b)
    assert a.count == 5
    assert a.counts == [3, 2, 0]
    assert a.sum == pytest.approx(0.05 * 3 + 0.5 * 2)
    with pytest.raises(MachineError):
        a.merge(QuantileDigest([0.2, 1.0]))


def test_digest_dict_round_trip_encodes_inf_as_null():
    digest = QuantileDigest([0.1, 1.0])
    digest.observe(0.05, n=2)
    digest.observe(9.0)
    wire = digest.to_dict()
    assert wire["centroids"][-1] is None
    assert json.loads(json.dumps(wire)) == wire
    back = QuantileDigest.from_dict(wire)
    assert back.centroids == digest.centroids
    assert back.counts == digest.counts
    assert back.count == digest.count
    assert back.sum == pytest.approx(digest.sum)


# ----------------------------------------------------------------------
# the hub: deltas, windows, derived gauges
# ----------------------------------------------------------------------
def make_hub(**kwargs):
    registry = MetricsRegistry()
    clock = FakeClock()
    hub = TelemetryHub(registry, clock=clock, interval=1.0, **kwargs)
    return hub, registry, clock


def test_hub_counters_become_deltas():
    hub, registry, clock = make_hub()
    done = registry.counter("service.completed", tenant="t0")
    done.inc(5)
    clock.advance(1.0)
    first = hub.sample()
    assert first.counters['service.completed{tenant="t0"}'] == 5
    done.inc(2)
    clock.advance(1.0)
    second = hub.sample()
    assert second.counters['service.completed{tenant="t0"}'] == 2
    assert hub.delta('service.completed{tenant="t0"}', "10s") == 7
    assert hub.delta_matching("service.completed", "10s") == 7


def test_hub_counter_reset_detection():
    hub, registry, clock = make_hub()
    done = registry.counter("service.completed")
    done.inc(10)
    clock.advance(1.0)
    hub.sample()
    # simulate a source restart: the cumulative total goes backwards
    done.value = 3
    clock.advance(1.0)
    sample = hub.sample()
    assert sample.counters["service.completed"] == 3  # whole total is new


def test_hub_histogram_becomes_per_tick_digest():
    hub, registry, clock = make_hub()
    hist = registry.histogram("service.latency_seconds",
                              buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    clock.advance(1.0)
    hub.sample()
    hist.observe(0.5)
    clock.advance(1.0)
    hub.sample()
    merged = hub.digest("service.latency_seconds", "10s")
    assert merged.count == 3
    assert merged.counts == [1, 2, 0]
    q = hub.quantiles("service.latency_seconds", "10s")
    assert q["p50"] == 1.0 and q["p99"] == 1.0
    # an empty window answers NaN, not zero
    assert all(math.isnan(v) for v in
               hub.quantiles("service.other", "10s").values())


def test_hub_derives_cache_hit_rate_gauges():
    hub, registry, clock = make_hub()
    registry.counter("geom.cache.hits", tenant="t0").inc(9)
    registry.counter("geom.cache.misses", tenant="t0").inc(1)
    clock.advance(1.0)
    sample = hub.sample()
    assert sample.gauges['geom.cache.hit_rate{tenant="t0"}'] == \
        pytest.approx(0.9)
    # no traffic this tick -> no rate published (stale gauge remains
    # reachable via the scan-back)
    clock.advance(1.0)
    second = hub.sample()
    assert 'geom.cache.hit_rate{tenant="t0"}' not in second.gauges
    assert hub.gauge('geom.cache.hit_rate{tenant="t0"}') == \
        pytest.approx(0.9)


def test_hub_windows_slide_and_ring_evicts():
    hub, registry, clock = make_hub(windows={"10s": 10.0, "1m": 60.0})
    done = registry.counter("service.completed")
    for _ in range(70):
        done.inc(1)
        clock.advance(1.0)
        hub.sample()
    # ring capacity = 60/1 + 1; the 10s window sees only its tail
    assert len(hub) == 61
    assert hub.delta("service.completed", "10s") == 10
    assert hub.delta("service.completed", "1m") == 60
    assert hub.rate("service.completed", "10s") == pytest.approx(1.0)
    assert hub.span("10s") == pytest.approx(10.0)
    with pytest.raises(MachineError):
        hub.delta("service.completed", "5m")  # window not configured
    assert hub.delta("service.completed", 10.0) == 10  # raw seconds ok


def test_hub_requires_positive_interval_and_windows():
    with pytest.raises(MachineError):
        TelemetryHub(MetricsRegistry(), interval=0.0)
    with pytest.raises(MachineError):
        TelemetryHub(MetricsRegistry(), windows={})


# ----------------------------------------------------------------------
# sink rotation
# ----------------------------------------------------------------------
def test_sink_rotates_by_size_with_meta_per_segment(tmp_path):
    sink = TelemetrySink(tmp_path, max_bytes=1024, meta={"seed": 7})
    for k in range(40):
        sink.write({"kind": "sample", "ts": float(k), "interval": 1.0,
                    "counters": {}, "gauges": {},
                    "digests": {}, "pad": "x" * 80})
    sink.close()
    paths = sink.paths
    assert len(paths) > 1
    assert sink.rotations == len(paths) - 1
    for index, path in enumerate(paths):
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "meta"
        assert first["schema"] == TELEMETRY_SCHEMA
        assert first["segment"] == index
        assert first["seed"] == 7
    assert validate_telemetry(tmp_path) == []


def test_hub_writes_samples_to_sink(tmp_path):
    sink = TelemetrySink(tmp_path, meta={"interval": 1.0})
    hub, registry, clock = make_hub(sink=sink)
    hub.sink = sink
    registry.counter("service.completed").inc(3)
    clock.advance(1.0)
    hub.sample()
    hub.close()
    assert validate_telemetry(tmp_path) == []
    lines = [json.loads(t) for path in sink.paths
             for t in path.read_text().splitlines()]
    kinds = [line["kind"] for line in lines]
    assert kinds == ["meta", "sample"]
    assert lines[1]["counters"]["service.completed"] == 3


# ----------------------------------------------------------------------
# schema validation negatives
# ----------------------------------------------------------------------
def _meta():
    return {"kind": "meta", "schema": TELEMETRY_SCHEMA, "segment": 0}


def _sample(ts, **over):
    line = {"kind": "sample", "ts": ts, "interval": 1.0,
            "counters": {}, "gauges": {}, "digests": {}}
    line.update(over)
    return line


def test_validate_requires_meta_first():
    assert validate_telemetry([_sample(1.0)]) \
        == ["<lines> line 0: segment must open with a meta line"]
    bad = dict(_meta(), schema="nope/9")
    problems = validate_telemetry([bad])
    assert problems and "schema" in problems[0]


def test_validate_rejects_backwards_time_and_negative_deltas():
    problems = validate_telemetry(
        [_meta(), _sample(5.0), _sample(3.0)])
    assert any("precedes" in p for p in problems)
    problems = validate_telemetry(
        [_meta(), _sample(1.0, counters={"service.completed": -2})])
    assert any("negative" in p for p in problems)


def test_validate_rejects_malformed_digests_and_alerts():
    bad_digest = _sample(1.0, digests={"h": {"centroids": [2.0, 1.0, None],
                                             "counts": [0, 0, 0]}})
    assert any("increasing" in p
               for p in validate_telemetry([_meta(), bad_digest]))
    misaligned = _sample(1.0, digests={"h": {"centroids": [1.0, None],
                                             "counts": [0]}})
    assert any("centroids vs" in p
               for p in validate_telemetry([_meta(), misaligned]))
    bad_alert = {"kind": "alert", "ts": 1.0, "name": "a", "state": "maybe"}
    assert any("firing/resolved" in p
               for p in validate_telemetry([_meta(), bad_alert]))
    assert any("unknown kind" in p
               for p in validate_telemetry([_meta(), {"kind": "bogus"}]))


def test_validate_missing_path_reports_not_raises(tmp_path):
    problems = validate_telemetry(tmp_path / "absent")
    assert problems and "no such telemetry file" in problems[0]


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def test_load_telemetry_round_trips_window_queries(tmp_path):
    sink = TelemetrySink(tmp_path, max_bytes=1024,
                         meta={"interval": 1.0,
                               "windows": {"10s": 10.0, "1m": 60.0}})
    hub, registry, clock = make_hub(sink=sink,
                                    windows={"10s": 10.0, "1m": 60.0})
    done = registry.counter("service.completed", tenant="t0")
    hist = registry.histogram("service.latency_seconds",
                              buckets=DEFAULT_BUCKETS)
    for k in range(20):
        done.inc(2)
        hist.observe(0.01 * (k + 1))
        clock.advance(1.0)
        hub.sample()
    hub.close()

    replay = load_telemetry(tmp_path)
    assert len(replay) == len(hub)
    assert replay.windows == hub.windows
    for window in ("10s", "1m"):
        assert replay.delta('service.completed{tenant="t0"}', window) \
            == hub.delta('service.completed{tenant="t0"}', window)
        assert replay.quantiles("service.latency_seconds", window) \
            == hub.quantiles("service.latency_seconds", window)
    with pytest.raises(MachineError):
        replay.sample()  # replayed hubs are query-only


def test_load_telemetry_refuses_invalid_stream(tmp_path):
    (tmp_path / "telemetry-00000.jsonl").write_text(
        json.dumps(_sample(1.0)) + "\n")
    with pytest.raises(ValueError, match="not a valid telemetry stream"):
        load_telemetry(tmp_path)
    with pytest.raises(FileNotFoundError):
        load_telemetry(tmp_path / "absent")


# ----------------------------------------------------------------------
# acceptance: windowed digests vs the offline cumulative histogram
# ----------------------------------------------------------------------
def test_digest_agrees_with_offline_histogram_on_seeded_load():
    """Merging every per-tick digest of the seeded loadgen run must
    reproduce the offline cumulative Histogram exactly (same bucket
    counts), so every windowed quantile bound agrees with the offline
    bound within one bucket width by construction."""
    from repro.service.loadgen import LoadSpec, run_load

    registry = MetricsRegistry()
    hub = TelemetryHub(registry, interval=0.05,
                       windows={"10s": 10.0, "1m": 60.0, "5m": 300.0})
    spec = LoadSpec(seed=2023, tenants=3, sessions=12)
    results, summary = run_load(spec, hub=hub, backend="serial",
                                registry=registry, max_inflight=32,
                                queue_limit=32, rate=1000.0, burst=64)
    assert summary["by_status"] == {"ok": 12}
    assert len(hub) >= 1  # the final flush tick always lands

    offline = registry.find("service.latency_seconds")
    merged = hub.digest("service.latency_seconds", "5m")
    counts, count, total = offline.bucket_counts()
    assert merged.centroids == offline.bounds
    assert merged.counts == counts
    assert merged.count == count == 12
    assert merged.sum == pytest.approx(total)
    for q in (0.5, 0.95, 0.99):
        assert merged.quantile(q) == offline.quantile_bound(q)


# ----------------------------------------------------------------------
# exemplar shipping
# ----------------------------------------------------------------------
def test_hub_ships_only_fresh_exemplars_per_tick():
    hub, registry, clock = make_hub()
    hist = registry.histogram("service.latency_seconds",
                              buckets=(0.1, 1.0), exemplars=4,
                              exemplar_seed=1)
    hist.observe(0.05, {"trace": 1})
    clock.advance(1.0)
    first = hub.sample()
    assert [r["trace"] for r in
            first.exemplars["service.latency_seconds"]] == [1]
    clock.advance(1.0)
    second = hub.sample()  # nothing new offered: no exemplar block
    assert second.exemplars == {}
    hist.observe(0.5, {"trace": 2})
    clock.advance(1.0)
    third = hub.sample()
    assert [r["trace"] for r in
            third.exemplars["service.latency_seconds"]] == [2]
    # window query folds the shipped rows, slowest first
    rows = hub.exemplars_in("service.latency_seconds", "10s")
    assert [r["trace"] for r in rows] == [2, 1]


def test_exemplars_round_trip_through_the_sink(tmp_path):
    sink = TelemetrySink(tmp_path, meta={"interval": 1.0})
    hub, registry, clock = make_hub(sink=sink)
    hist = registry.histogram("service.latency_seconds",
                              buckets=(0.1,), exemplars=2,
                              exemplar_seed=3)
    hist.observe(0.02, {"trace": 7, "tenant": "t0"})
    clock.advance(1.0)
    hub.sample()
    hub.close()
    assert validate_telemetry(tmp_path) == []
    replay = load_telemetry(tmp_path)
    rows = replay.exemplars_in("service.latency_seconds", "10s")
    assert rows == [{"trace": 7, "tenant": "t0", "value": 0.02,
                     "seq": 1, "bucket": 0.1}]


def test_validate_reports_exemplar_key_paths():
    bad = _sample(1.0, exemplars={"h": [{"seq": 1},
                                        {"value": 0.5, "seq": 0}]})
    problems = validate_telemetry([_meta(), bad])
    assert "<lines> line 1: exemplars['h'][0].value: " \
        "missing or not a number" in problems
    assert "<lines> line 1: exemplars['h'][1].seq: " \
        "missing or not a positive integer" in problems
    shapeless = _sample(1.0, exemplars=[1, 2])
    assert any("'exemplars' must be an object" in p
               for p in validate_telemetry([_meta(), shapeless]))


def test_validate_reports_digest_key_path():
    bad = _sample(1.0, digests={"service.latency_seconds":
                                {"centroids": [1.0, None],
                                 "counts": [0]}})
    problems = validate_telemetry([_meta(), bad])
    assert problems == ["<lines> line 1: "
                        "digests['service.latency_seconds']: "
                        "1 centroids vs 2 counts"] \
        or problems == ["<lines> line 1: "
                        "digests['service.latency_seconds']: "
                        "2 centroids vs 1 counts"]
