"""Golden ``explain`` test: a hand-built 4-task program over aliased
regions, with the witness chain checked edge by edge.

The program::

    task 0  init        read-write  R       (whole root, first writer)
    task 1  left        read-write  P[0]    (disjoint half)
    task 2  ghost-read  read        G[0]    (aliased, straddles P[0]/P[1])
    task 3  final       read-write  R       (whole root again)

Every algorithm must (a) witness every dependence edge it reports in
the graph with a concrete structure (history entry, equivalence set,
Z-buffer table), and (b) render those witnesses with task names,
domains, and via-descriptors.  Ray casting must additionally record
the dominating-write prunes ``final`` triggers.
"""

import numpy as np
import pytest

from repro import (ALGORITHMS, READ, READ_WRITE, Extent, IndexSpace,
                   RegionRequirement, RegionTree, Runtime)
from repro.obs import provenance as prov
from repro.obs.provenance import explain_task


def _run_golden(algo: str, oracle: bool = False):
    tree = RegionTree(Extent((16,)), {"x": np.float64}, name="R")
    P = tree.root.create_partition(
        "P", [IndexSpace.from_range(0, 8), IndexSpace.from_range(8, 16)],
        disjoint=True, complete=True)
    G = tree.root.create_partition("G", [IndexSpace.from_range(4, 12)])
    led = prov.ProvenanceLedger(enabled=True)
    previous = prov.set_ledger(led)
    try:
        rt = Runtime(tree, {"x": np.zeros(16)}, algorithm=algo,
                     precedence_oracle=oracle)
        rt.launch("init", [RegionRequirement(tree.root, "x", READ_WRITE)])
        rt.launch("left", [RegionRequirement(P[0], "x", READ_WRITE)])
        rt.launch("ghost-read", [RegionRequirement(G[0], "x", READ)])
        rt.launch("final", [RegionRequirement(tree.root, "x", READ_WRITE)])
    finally:
        prov.set_ledger(previous)
    return rt, led


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_every_graph_edge_has_a_witness(algo):
    rt, led = _run_golden(algo)
    for task in rt.tasks:
        deps = rt.graph.dependences_of(task.task_id)
        witnessed = set()
        for rec in led.records_for(task.task_id):
            witnessed |= rec.dep_ids
        missing = set(deps) - witnessed
        assert not missing, (
            f"{algo}: task {task.task_id} ({task.name}) edges {missing} "
            f"have no provenance witness (deps={sorted(deps)}, "
            f"witnessed={sorted(witnessed)})")


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_golden_edges_name_concrete_witnesses(algo):
    rt, led = _run_golden(algo)

    # task 1 (left) overwrites half of init's write
    assert 0 in rt.graph.dependences_of(1)
    text1 = explain_task(led, 1, tasks=rt.tasks, edge=(0, 1))
    assert "task 1 (left)" in text1
    assert "edge 1 <- 0" in text1
    assert "task 0 (init)" in text1
    assert "read-write" in text1
    assert "via" in text1

    # task 2 (ghost-read) straddles left's half and init's remainder
    deps2 = rt.graph.dependences_of(2)
    assert 1 in deps2, f"{algo}: ghost-read must depend on left"
    text2 = explain_task(led, 2, tasks=rt.tasks)
    assert "task 2 (ghost-read)" in text2
    assert "field 'x' read on [4,11] n=8" in text2
    assert "task 1 (left)" in text2
    for src in sorted(deps2):
        assert f"edge 2 <- {src}" in text2, (algo, src, text2)

    # task 3 (final) must witness the reader
    assert 2 in rt.graph.dependences_of(3)
    text3 = explain_task(led, 3, tasks=rt.tasks, edge=(2, 3))
    assert "edge 3 <- 2" in text3
    assert "task 2 (ghost-read)" in text3
    assert "(read)" in text3


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_first_writer_reports_no_dependences(algo):
    rt, led = _run_golden(algo)
    text0 = explain_task(led, 0, tasks=rt.tasks)
    # init only interferes with the pre-program initial write (if the
    # algorithm tracks it as an edge, it renders as the sentinel)
    assert rt.graph.dependences_of(0) == frozenset()
    assert "task 0 (init)" in text0


def test_raycast_records_dominating_write_prunes():
    """``final``'s root-wide write dominates every equivalence set it
    touches: ray casting coalesces them and the ledger must say which
    candidate edges died that way."""
    rt, led = _run_golden("raycast")
    records = led.records_for(3, phase="materialize")
    assert records
    reasons = {p.reason for rec in records for p in rec.pruned}
    assert "dominated" in reasons, reasons
    text = explain_task(led, 3, tasks=rt.tasks)
    assert "pruned" in text
    assert "dominated" in text
    assert "via eqset" in text


@pytest.mark.parametrize("algo", list(ALGORITHMS))
def test_oracle_records_transitive_prunes(algo):
    """With the precedence oracle on, ``final``'s root-wide scan needs
    only ``ghost-read``: the chain final ← ghost-read ← left ← init
    makes the older writers transitively ordered, and every candidate
    edge the oracle kills must land in the ledger as a ``transitive``
    prune (and render in the explain text)."""
    rt, led = _run_golden(algo, oracle=True)
    records = led.records_for(3, phase="materialize")
    assert records
    pruned = [p for rec in records for p in rec.pruned
              if p.reason == "transitive"]
    assert pruned, f"{algo}: no transitive prunes recorded"
    # the killed candidates are exactly the dominated older writers
    assert {p.src for p in pruned} <= {0, 1}, (algo, pruned)
    # the pruned edges left the graph but not the closure
    assert rt.graph.dependences_of(3) == frozenset({2}), algo
    assert rt.graph.ancestors_of(3) == {0, 1, 2}, algo
    text = explain_task(led, 3, tasks=rt.tasks)
    assert "transitive" in text
    assert "pruned" in text


def test_painter_witnesses_via_global_history():
    rt, led = _run_golden("painter")
    text = explain_task(led, 3, tasks=rt.tasks)
    assert "via global history" in text
    assert "history entry" in text


def test_zbuffer_witnesses_name_tables():
    rt, led = _run_golden("zbuffer")
    text2 = explain_task(led, 2, tasks=rt.tasks)
    assert "last_write entry" in text2
    assert "via element tables" in text2
    text3 = explain_task(led, 3, tasks=rt.tasks)
    assert "reader entry" in text3
