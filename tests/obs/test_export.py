"""Trace-export tests: a FakeClock golden file checked field-by-field
against the trace-event schema, negative validation cases, and the full
CLI round trip (``analyze --trace-out`` → ``prof``)."""

import json

import pytest

from repro.cli import main
from repro.distributed.faults import FakeClock
from repro.obs.export import (load_trace, spans_from_events,
                              telemetry_counter_events, telemetry_trace,
                              to_chrome_trace, trace_events,
                              validate_trace, write_trace)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def make_buffer():
    """A tiny deterministic trace: driver span nesting a shard-attributed
    span, one recovery instant, one counter sample."""
    t = Tracer(clock=FakeClock(10.0))
    with t.span("analyze", "runtime"):
        t.clock.advance(0.001)
        with t.scope(pid=2, tid=1):
            with t.span("analyze.shard1", "distributed.replica", shard=1):
                t.clock.advance(0.002)
            t.instant("fault.crash", "recovery", worker=1)
        t.clock.advance(0.001)
    t.counter("tasks_analyzed", 4)
    return t.snapshot()


class TestGolden:
    def test_events_are_exact(self):
        events = trace_events(make_buffer())
        meta = [e for e in events if e["ph"] == "M"]
        assert [(m["pid"], m["args"]["name"]) for m in meta] == [
            (0, "driver"), (2, "shard 1")]

        by_name = {e["name"]: e for e in events if e["ph"] != "M"}
        outer = by_name["analyze"]
        inner = by_name["analyze.shard1"]
        crash = by_name["fault.crash"]
        sample = by_name["tasks_analyzed"]

        assert (outer["ph"], outer["ts"], outer["dur"]) == ("X", 0.0, 4000.0)
        assert (outer["pid"], outer["tid"]) == (0, 0)
        assert (inner["ph"], inner["ts"], inner["dur"]) == (
            "X", 1000.0, 2000.0)
        assert (inner["pid"], inner["tid"]) == (2, 1)
        assert inner["args"]["shard"] == 1
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert (crash["ph"], crash["s"], crash["ts"]) == ("i", "g", 3000.0)
        assert (crash["pid"], crash["tid"]) == (2, 1)
        assert (sample["ph"], sample["args"]["value"]) == ("C", 4.0)

    def test_registry_totals_become_counter_events(self):
        reg = MetricsRegistry()
        reg.counter("meter.ops").inc(7)
        reg.histogram("analysis.shard_seconds").observe(0.5)
        events = trace_events(make_buffer(), registry=reg)
        metrics = {e["name"]: e for e in events if e.get("cat") == "metrics"}
        assert metrics["meter.ops"]["args"] == {"value": 7}
        assert metrics["analysis.shard_seconds"]["args"] == {
            "count": 1, "sum": 0.5}

    def test_emitted_trace_validates(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1.0)
        assert validate_trace(to_chrome_trace(make_buffer(), reg)) == []

    def test_write_trace_round_trips_spans(self, tmp_path):
        path = write_trace(tmp_path / "t.json", make_buffer())
        raw, spans = load_trace(path)
        assert raw["displayTimeUnit"] == "ms"
        assert [s.name for s in spans] == ["analyze", "analyze.shard1"]
        outer, inner = spans
        assert inner.parent_id == outer.span_id
        assert inner.duration == pytest.approx(0.002)
        assert inner.args == {"shard": 1}  # span_id/parent_id popped out


class TestValidation:
    def test_rejects_non_object(self):
        assert validate_trace([1, 2]) != []
        assert validate_trace({"events": []}) != []

    def test_missing_required_keys(self):
        data = {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        problems = validate_trace(data)
        assert any("'name'" in p for p in problems)
        assert any("'pid'" in p for p in problems)

    def test_unknown_phase(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "Z", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("unknown phase" in p for p in validate_trace(data))

    def test_negative_ts_and_missing_dur(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 1},
            {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 0}]}
        problems = validate_trace(data)
        assert any("'ts'" in p for p in problems)
        assert any("'dur'" in p for p in problems)

    def test_non_monotonic_ts(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 0},
            {"name": "b", "ph": "X", "pid": 0, "tid": 0, "ts": 3, "dur": 0}]}
        assert any("monoton" in p for p in validate_trace(data))

    def test_instant_needs_scope(self):
        data = {"traceEvents": [
            {"name": "a", "ph": "i", "pid": 0, "tid": 0, "ts": 0}]}
        assert any("scope" in p for p in validate_trace(data))

    def test_load_trace_raises_on_invalid(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        with pytest.raises(ValueError, match="not a valid trace"):
            load_trace(path)

    def test_spans_from_events_skips_non_complete(self):
        events = [{"name": "i", "ph": "i", "pid": 0, "tid": 0, "ts": 0,
                   "s": "g"},
                  {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1000.0,
                   "dur": 500.0}]
        (span,) = spans_from_events(events)
        assert span.name == "x"
        assert span.duration == pytest.approx(0.0005)


class TestCliRoundTrip:
    def test_analyze_trace_out_then_prof(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["analyze", "--app", "stencil", "--pieces", "4",
                     "--iterations", "1", "--shards", "2",
                     "--trace-out", str(trace), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert f"trace written: {trace}" in out
        assert "critical path" in out.lower()

        data = json.loads(trace.read_text())
        assert validate_trace(data) == []
        cats = {e.get("cat") for e in data["traceEvents"] if e["ph"] == "X"}
        assert "task" in cats
        assert any(c.startswith("visibility.") for c in cats)
        assert "distributed.replica" in cats

        assert main(["prof", str(trace)]) == 0
        prof_out = capsys.readouterr().out
        assert "spans" in prof_out
        assert "critical path" in prof_out.lower()

    def test_prof_missing_file(self, tmp_path, capsys):
        assert main(["prof", str(tmp_path / "nope.json")]) == 2
        assert "no such" in capsys.readouterr().err.lower()

    def test_prof_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"traceEvents\": [{\"ph\": \"Z\"}]}")
        assert main(["prof", str(bad)]) == 1
        assert "not a valid trace" in capsys.readouterr().err


class TestTelemetryBridge:
    def make_samples(self):
        from repro.obs.telemetry import QuantileDigest, TelemetrySample

        digest = QuantileDigest((0.01, 0.1))
        digest.observe(0.05, n=3)
        return [
            TelemetrySample(
                ts=10.0, interval=1.0,
                counters={'service.completed{tenant="t0"}': 4.0,
                          "geom.cache.hits": 20.0},
                gauges={"service.inflight": 2.0}),
            TelemetrySample(
                ts=11.0, interval=1.0,
                counters={'service.completed{tenant="t0"}': 6.0,
                          "geom.cache.hits": 10.0},
                gauges={"service.inflight": 1.0},
                digests={"service.latency_seconds": digest}),
        ]

    def test_counter_events_gauges_and_rates(self):
        events = telemetry_counter_events(self.make_samples())
        names = {e["name"] for e in events}
        # gauges emit raw values; service counters emit .rate series;
        # non-service counters are filtered by default
        assert names == {"service.inflight",
                         'service.completed{tenant="t0"}.rate'}
        assert all(e["ph"] == "C" and e["cat"] == "telemetry"
                   for e in events)
        by_ts = {(e["name"], e["ts"]): e["args"]["value"] for e in events}
        assert by_ts[("service.inflight", 0.0)] == 2.0
        assert by_ts[('service.completed{tenant="t0"}.rate', 1e6)] == 6.0
        assert telemetry_counter_events([]) == []

    def test_names_filter_uses_base_names(self):
        events = telemetry_counter_events(self.make_samples(),
                                          names={"geom.cache.hits"})
        assert {e["name"] for e in events} == {"geom.cache.hits.rate"}

    def test_telemetry_trace_round_trips_validation(self, tmp_path):
        trace = telemetry_trace(self.make_samples())
        assert validate_trace(trace) == []
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "telemetry"
        # the serialized object survives a disk round-trip as valid JSON
        path = tmp_path / "telemetry-trace.json"
        path.write_text(json.dumps(trace, separators=(",", ":")))
        assert validate_trace(json.loads(path.read_text())) == []


def test_validate_reports_offending_index_and_key_path():
    events = [
        {"name": "ok", "ph": "X", "pid": 0, "tid": 0, "ts": 10.0,
         "dur": 1.0},
        {"name": "bad-dur", "ph": "X", "pid": 0, "tid": 0, "ts": 12.0,
         "dur": -5},
        {"name": "rewind", "ph": "X", "pid": 0, "tid": 0, "ts": 4.0,
         "dur": 0.0},
        {"ph": "i", "pid": 0, "tid": 0, "ts": 20.0, "s": "q"},
    ]
    problems = validate_trace({"traceEvents": events})
    # the bad duration names the event and the key
    assert any(p.startswith("traceEvents[1] ('bad-dur').dur:")
               for p in problems)
    # the ordering violation names BOTH events involved
    rewind = [p for p in problems if p.startswith("traceEvents[2]")]
    assert rewind and "precedes traceEvents[1] ts 12.0" in rewind[0]
    # the instant is missing 'name' (indexed, nameless prefix) and has
    # a bad scope
    assert "traceEvents[3]: missing required key 'name'" in problems
    assert any(p.startswith("traceEvents[3].s:") and "'q'" in p
               for p in problems)


def test_validate_reports_container_shape_with_path():
    assert validate_trace([]) \
        == ["$: top level must be an object with a 'traceEvents' list"]
    assert validate_trace({"traceEvents": "nope"}) \
        == ["traceEvents: must be a list, got str"]
    problems = validate_trace({"traceEvents": [17]})
    assert problems == ["traceEvents[0]: not an object, got int"]
