"""Span tracer unit tests — all on a FakeClock, so times are exact."""

import threading

import pytest

from repro.distributed.faults import FakeClock
from repro.obs.tracer import (DRIVER_PID, Span, Tracer, active_tracer,
                              set_tracer, span, traced)


def make_tracer(start=100.0):
    return Tracer(clock=FakeClock(start))


class TestSpans:
    def test_span_times_and_names(self):
        t = make_tracer()
        with t.span("analyze", "distributed", shard=3):
            t.clock.advance(2.5)
        (s,) = t.snapshot().spans
        assert s.name == "analyze"
        assert s.category == "distributed"
        assert (s.start, s.end) == (100.0, 102.5)
        assert s.duration == 2.5
        assert s.args == {"shard": 3}
        assert s.pid == DRIVER_PID

    def test_nesting_links_parents(self):
        t = make_tracer()
        with t.span("outer") as outer:
            with t.span("inner"):
                t.clock.advance(1.0)
        inner_span, outer_span = t.snapshot().spans
        assert inner_span.name == "inner"
        assert inner_span.parent_id == outer.span_id
        assert outer_span.parent_id is None

    def test_set_updates_args_mid_span(self):
        t = make_tracer()
        with t.span("task", "task", task_id=7) as sp:
            sp.set(deps=[1, 2])
        (s,) = t.snapshot().spans
        assert s.args == {"task_id": 7, "deps": [1, 2]}

    def test_exception_recorded_and_propagated(self):
        t = make_tracer()
        with pytest.raises(ValueError):
            with t.span("bad"):
                raise ValueError("boom")
        (s,) = t.snapshot().spans
        assert s.args["error"] == "ValueError"

    def test_current_returns_innermost(self):
        t = make_tracer()
        assert t.current() is None
        with t.span("outer"):
            with t.span("inner") as inner:
                assert t.current() is inner
        assert t.current() is None


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = Tracer(clock=FakeClock(0.0), enabled=False)
        with t.span("a") as sp:
            sp.set(x=1)  # no-op handle accepts set()
        t.instant("i")
        t.counter("c", 1.0)
        assert len(t.snapshot()) == 0

    def test_disabled_span_is_shared_noop(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b")


class TestAttribution:
    def test_scope_overrides_pid_tid(self):
        t = make_tracer()
        with t.scope(pid=4, tid=3):
            with t.span("shard-work"):
                pass
            t.instant("crash")
        (s,) = t.snapshot().spans
        (i,) = t.snapshot().instants
        assert (s.pid, s.tid) == (4, 3)
        assert (i.pid, i.tid) == (4, 3)

    def test_scope_restores_previous(self):
        t = make_tracer()
        with t.scope(pid=9, tid=9):
            pass
        with t.span("after"):
            pass
        (s,) = t.snapshot().spans
        assert s.pid == DRIVER_PID

    def test_threads_get_distinct_tids(self):
        t = make_tracer()
        # All threads must be alive at once: Python reuses thread idents
        # once a thread exits, which would legitimately share a tid.
        barrier = threading.Barrier(3)

        def work():
            barrier.wait()
            with t.span("w"):
                pass
            barrier.wait()

        threads = [threading.Thread(target=work) for _ in range(3)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        tids = {s.tid for s in t.snapshot().spans}
        assert len(tids) == 3


class TestBuffers:
    def test_absorb_shifts_by_offset(self):
        t = make_tracer(start=50.0)
        foreign = [Span("remote", "cat", start=1.0, end=2.0, pid=3, tid=2)]
        t.absorb(foreign, offset=49.0)
        (s,) = t.snapshot().spans
        assert (s.start, s.end) == (50.0, 51.0)
        assert (s.pid, s.tid) == (3, 2)

    def test_drain_empties_buffer(self):
        t = make_tracer()
        with t.span("a"):
            pass
        buf = t.drain()
        assert len(buf.spans) == 1
        assert len(t.snapshot()) == 0

    def test_counter_samples(self):
        t = make_tracer()
        t.counter("tasks", 28)
        (c,) = t.snapshot().counters
        assert (c.name, c.value, c.ts) == ("tasks", 28.0, 100.0)


class TestGlobalTracer:
    def test_default_active_tracer_is_disabled(self):
        assert not active_tracer().enabled

    def test_set_tracer_swaps_and_restores(self):
        mine = make_tracer()
        previous = set_tracer(mine)
        try:
            assert active_tracer() is mine
            with span("global", "cat"):
                mine.clock.advance(1.0)
            (s,) = mine.snapshot().spans
            assert s.name == "global"
        finally:
            set_tracer(previous)

    def test_traced_decorator_uses_obs_cat(self):
        class Algo:
            _obs_cat = "visibility.test"

            @traced("materialize")
            def materialize(self):
                return 42

        mine = make_tracer()
        previous = set_tracer(mine)
        try:
            assert Algo().materialize() == 42
        finally:
            set_tracer(previous)
        (s,) = mine.snapshot().spans
        assert (s.name, s.category) == ("materialize", "visibility.test")

    def test_traced_decorator_disabled_fast_path(self):
        calls = []

        class Algo:
            @traced("commit", category="c")
            def commit(self):
                calls.append(1)

        Algo().commit()  # default tracer is disabled: no span machinery
        assert calls == [1]
