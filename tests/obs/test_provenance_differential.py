"""Differential harness: the provenance ledger is observationally
invisible.

Analysis fingerprints hash the dependence graph, the equivalence-set
structure tokens, *and* the cost-meter counter snapshot.  These tests
run the same program with the ledger enabled and disabled — for every
coherence algorithm, plain and sharded across every backend — and
require bit-identical fingerprints.  Any ledger hook that touches a
:class:`~repro.visibility.meter.CostMeter`, perturbs analysis control
flow, or changes an algorithm's interning order lands here.
"""

import pytest

from repro import ALGORITHMS, Runtime
from repro.distributed import BACKENDS, ShardedRuntime
from repro.distributed.verify import analysis_fingerprint
from repro.obs import provenance as prov

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


def _with_ledger(enabled: bool, fn):
    """Run ``fn`` under a fresh ledger; return (result, ledger)."""
    led = prov.ProvenanceLedger(enabled=enabled)
    previous = prov.set_ledger(led)
    try:
        return fn(), led
    finally:
        prov.set_ledger(previous)


def _plain_fingerprint(algo: str) -> str:
    tree, P, G = make_fig1_tree()
    rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
    rt.replay(fig1_stream(tree, P, G, 2))
    return analysis_fingerprint(rt)


def _sharded_fingerprints(algo: str, backend: str, shards: int = 3) -> set:
    tree, P, G = make_fig1_tree()
    with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                        algorithm=algo, backend=backend) as srt:
        reports = srt.analyze(fig1_stream(tree, P, G, 2))
    return {r.fingerprint for r in reports}


class TestProvenanceDifferential:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_plain_runtime_bit_identical(self, algo):
        recorded, led = _with_ledger(True, lambda: _plain_fingerprint(algo))
        assert len(led) > 0, \
            "the ledger never recorded — the differential proves nothing"
        silent, off_led = _with_ledger(
            False, lambda: _plain_fingerprint(algo))
        assert len(off_led) == 0
        assert recorded == silent, \
            f"{algo}: provenance recording changed the analysis fingerprint"

    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_sharded_bit_identical(self, algo, backend):
        recorded, led = _with_ledger(
            True, lambda: _sharded_fingerprints(algo, backend))
        assert len(recorded) == 1, (algo, backend, sorted(recorded))
        # every replica contributed shard-tagged records
        assert sorted(led.by_shard()) == [0, 1, 2], (algo, backend)
        silent, _ = _with_ledger(
            False, lambda: _sharded_fingerprints(algo, backend))
        assert recorded == silent, (algo, backend)
