"""Concurrency hammers for the shared observability stores.

The ledger and the registry are written from service coroutines, thread
backends and the telemetry sampler at once; these tests drive 8 threads
through a barrier and assert the exact-count invariants (torn reads and
lost updates both show up as wrong totals)."""

import math
import threading

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.service.errors import ServiceLedger

THREADS = 8
ROUNDS = 2000


def hammer(work):
    """Run ``work(thread_index)`` on THREADS threads, barrier-aligned."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def runner(k):
        barrier.wait()
        try:
            work(k)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(k,))
               for k in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_ledger_record_vs_snapshot_hammer():
    ledger = ServiceLedger(capacity=THREADS * ROUNDS + 1)

    def work(k):
        for n in range(ROUNDS):
            ledger.record("alert" if n % 2 else "admit", f"tenant{k}",
                          session=n, at=float(n))
            if n % 64 == 0:
                # concurrent readers must always see a coherent list
                snap = ledger.snapshot()
                assert len(snap) <= THREADS * ROUNDS

    hammer(work)
    assert len(ledger) == THREADS * ROUNDS
    counts = ledger.counts()
    assert counts["admit"] == THREADS * ROUNDS // 2
    assert counts["alert"] == THREADS * ROUNDS // 2
    assert len(ledger.events(tenant="tenant0")) == ROUNDS


def test_ledger_trimming_keeps_counts_exact():
    """Capacity trimming drops old *events*, never *counts*, even while
    eight writers race the trim."""
    ledger = ServiceLedger(capacity=64)

    def work(k):
        for n in range(ROUNDS):
            ledger.record("evict", f"tenant{k}", at=float(n))

    hammer(work)
    assert ledger.count("evict") == THREADS * ROUNDS
    assert len(ledger) <= 64


def test_registry_create_vs_iterate_hammer():
    registry = MetricsRegistry()

    def work(k):
        for n in range(ROUNDS):
            # shared instrument: get-or-create must hand back the same
            # counter to every thread
            registry.counter("shared.ops").inc()
            # private instrument per (thread, phase): concurrent creates
            registry.counter("private.ops", thread=str(k),
                             phase=str(n % 8)).inc()
            if n % 128 == 0:
                for metric in registry:   # snapshot-iteration mid-churn
                    assert metric.full_name
                registry.snapshot()
                assert registry.find("absent.metric") is None
                len(registry)

    hammer(work)
    assert registry.find("shared.ops").value == THREADS * ROUNDS
    total = sum(m.value for m in registry
                if m.name == "private.ops")
    assert total == THREADS * ROUNDS
    assert len(registry) == 1 + THREADS * 8


def test_histogram_observe_vs_quantile_hammer():
    hist = Histogram("lat", {}, buckets=(0.001, 0.01, 0.1, 1.0))

    def work(k):
        for n in range(ROUNDS):
            hist.observe(0.0005 * (1 + n % 4))
            if n % 128 == 0:
                q = hist.quantile_bound(0.5)
                assert q > 0 or math.isnan(q)
                counts, count, total = hist.bucket_counts()
                # tear-free: the parts must agree with each other
                assert sum(counts) == count
                hist.render()

    hammer(work)
    counts, count, total = hist.bucket_counts()
    assert count == THREADS * ROUNDS
    assert sum(counts) == count
