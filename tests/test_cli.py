"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "N [12 elems]" in out
        assert "wave" in out
        assert "up   =" in out


class TestValidate:
    def test_validate_circuit(self, capsys):
        assert main(["validate", "--app", "circuit", "--pieces", "3",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "raycast" in out and "values ✓" in out
        assert "agree with the sequential reference" in out

    def test_validate_pennant(self, capsys):
        assert main(["validate", "--app", "pennant", "--pieces", "2",
                     "--iterations", "1"]) == 0


class TestFigure:
    def test_small_figure(self, capsys):
        assert main(["figure", "fig16", "--max-nodes", "4",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# fig16")
        assert "raycast_dcr" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestArtifact:
    def test_table(self, capsys):
        assert main(["artifact", "--app", "stencil", "--reps", "2"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].split("\t")[0] == "system"
        # 5 systems × 2 nodes × 2 reps
        assert len(lines) == 1 + 5 * 2 * 2
        assert any(line.startswith("neweqcr_dcr") for line in lines)


class TestInspect:
    def test_eqset_dump(self, capsys):
        assert main(["inspect", "--app", "circuit", "--algorithm",
                     "raycast", "--pieces", "3", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "equivalence sets" in out
        assert "metered operations:" in out

    def test_painter_dump(self, capsys):
        assert main(["inspect", "--app", "circuit", "--algorithm",
                     "tree_painter", "--pieces", "2",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "history items" in out

    def test_dot_output(self, capsys):
        assert main(["inspect", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestInspectZBuffer:
    def test_zbuffer_dump(self, capsys):
        from repro.cli import main
        assert main(["inspect", "--app", "circuit", "--algorithm",
                     "zbuffer", "--pieces", "2", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "interned access sets" in out


class TestAnalyze:
    def test_serial_analyze(self, capsys):
        assert main(["analyze", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "serial backend" in out
        assert "shard 0: fingerprint" in out
        assert "merge verified: 2 identical analyses" in out

    def test_parallel_profile(self, capsys):
        assert main(["analyze", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--shards", "3",
                     "--parallel", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "process backend, 2 workers" in out
        assert "merge verified: 3 identical analyses" in out
        # per-phase perf counters from the PhaseProfile
        assert "analyze.shard2" in out
        assert "verify" in out and "ship" in out
        # render() ends with a total footer and human-readable bytes
        profile_lines = [l for l in out.splitlines() if l.strip()]
        total = next(l for l in profile_lines if l.startswith("total"))
        assert "B" in total  # shipped volume rendered as B/KiB/MiB

    def test_trace_out_and_critical_path(self, tmp_path, capsys):
        from repro.obs import validate_trace
        import json
        trace = tmp_path / "stencil.json"
        assert main(["analyze", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--shards", "2",
                     "--trace-out", str(trace), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert f"trace written: {trace}" in out
        assert "critical path:" in out
        assert "analyze wall-clock" in out
        assert validate_trace(json.loads(trace.read_text())) == []

    def test_prof_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        assert main(["analyze", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--shards", "2",
                     "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["prof", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "task" in out  # per-category table includes task spans

    def test_thread_backend_forced(self, capsys):
        assert main(["analyze", "--app", "circuit", "--pieces", "2",
                     "--iterations", "1", "--shards", "2",
                     "--backend", "thread", "--algorithm", "warnock"]) == 0
        out = capsys.readouterr().out
        assert "thread backend" in out


class TestExplain:
    def test_explain_names_witnesses(self, capsys):
        assert main(["explain", "7", "--app", "stencil", "--pieces", "4",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "task 7 depends on" in out
        assert "edge 7 <-" in out
        assert "via eqset" in out

    def test_explain_edge_filter(self, capsys):
        assert main(["explain", "7", "--edge", "3:7", "--app", "stencil",
                     "--pieces", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "edge 7 <- 3" in out
        assert "edge 7 <- 2" not in out

    def test_explain_rejects_bad_edge(self, capsys):
        assert main(["explain", "7", "--edge", "nope", "--app",
                     "stencil"]) == 2
        assert main(["explain", "7", "--edge", "3:6", "--app",
                     "stencil"]) == 2
        assert main(["explain", "9999", "--app", "stencil"]) == 2

    def test_ledger_restored_after_explain(self):
        from repro.obs import provenance as prov
        before = prov.active_ledger()
        assert main(["explain", "0", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1"]) == 0
        assert prov.active_ledger() is before


class TestCensus:
    def test_census_human(self, capsys):
        assert main(["census", "--app", "stencil", "--pieces", "4",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "census (raycast)" in out
        assert "eqsets" in out
        assert "occlusion" in out

    def test_census_json_validates(self, capsys):
        import json

        from repro.obs.census import validate_census
        assert main(["census", "--app", "circuit", "--pieces", "2",
                     "--iterations", "1", "--json",
                     "--algorithm", "tree_painter"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_census(doc)
        assert doc["algorithm"] == "tree_painter"

    def test_census_diff_identical_and_differing(self, tmp_path, capsys):
        import json
        assert main(["census", "--app", "stencil", "--pieces", "2",
                     "--iterations", "1", "--json"]) == 0
        a = capsys.readouterr().out
        assert main(["census", "--app", "stencil", "--pieces", "2",
                     "--iterations", "2", "--json"]) == 0
        b = capsys.readouterr().out
        pa, pb = tmp_path / "a.json", tmp_path / "b.json"
        pa.write_text(a)
        pb.write_text(b)
        assert main(["census-diff", str(pa), str(pa)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["census-diff", str(pa), str(pb)]) == 1
        out = capsys.readouterr().out
        assert "differing leaves" in out and "tasks" in out

    def test_census_diff_rejects_bad_files(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["census-diff", str(bad), str(bad)]) == 2
        assert main(["census-diff", str(tmp_path / "missing.json"),
                     str(bad)]) == 2
