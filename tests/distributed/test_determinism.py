"""Differential determinism: the regression net for the parallel backends.

DCR requires every replica of the analysis to reach bit-identical
conclusions no matter how many replicas run or where they run.  These
tests pin that down differentially: for every coherence algorithm, the
same program is analyzed at shard counts {1, 2, 4, 8} on every backend,
and *every* resulting analysis fingerprint (dependence graph +
equivalence-set structure + metered refinement trace, SHA-256 over a
canonical encoding) must be one single value.  Any iteration-order or
cross-process nondeterminism an algorithm picks up in the future lands
here first.
"""

import pytest

from repro import ALGORITHMS
from repro.distributed import BACKENDS, ShardedRuntime

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree

SHARD_COUNTS = (1, 2, 4, 8)


def _fingerprints(algo: str, shards: int, backend: str) -> set[str]:
    tree, P, G = make_fig1_tree()
    with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                        algorithm=algo, backend=backend) as srt:
        reports = srt.analyze(fig1_stream(tree, P, G, 2))
    assert len(reports) == shards
    return {r.fingerprint for r in reports}


class TestDifferentialDeterminism:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_identical_across_shard_counts_and_backends(self, algo):
        """One program, one algorithm → one fingerprint, regardless of
        shard count (1/2/4/8) and execution backend."""
        seen: set[str] = set()
        for backend in BACKENDS:
            for shards in SHARD_COUNTS:
                seen |= _fingerprints(algo, shards, backend)
                assert len(seen) == 1, (
                    f"{algo} diverged at {shards} shards on the {backend} "
                    f"backend: {sorted(seen)}")

    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_application_stream_identical_across_backends(self, algo):
        """Same property on a real application stream (stencil), which
        exercises multi-field trees and reduction privileges."""
        from repro.apps import APPS
        from repro.runtime.task import TaskStream

        seen: set[str] = set()
        for backend in BACKENDS:
            app = APPS["stencil"](pieces=4)
            stream = TaskStream()
            stream.extend_from(app.init_stream())
            stream.extend_from(app.iteration_stream())
            with ShardedRuntime(app.tree, app.initial, shards=4,
                                algorithm=algo, backend=backend) as srt:
                seen |= {r.fingerprint for r in srt.analyze(stream)}
            assert len(seen) == 1, (algo, backend, sorted(seen))
