"""Differential harness: scan pruning preserves the transitive closure.

The precedence oracle lets every visibility algorithm skip history
entries that are already transitively ordered behind a collected
dependence.  Unlike the geometry fast path, this *does* change the
output — fewer direct edges, fewer intersection tests — so the contract
is weaker than bit-identity and these tests pin exactly what survives:

* the **transitive closure** of the dependence graph is identical with
  the oracle on and off (for every task, the same ancestor set);
* the analysis stays **sound** — every ``oracle_dependences`` pair is
  covered by a path (``missing_pairs`` empty) on both settings;
* the pruned graph is never *larger* (``edge_count`` on ≤ off);
* materialized **values** are unaffected;

for all five algorithms, on the plain runtime and sharded across every
backend (``REPRO_PRECEDENCE`` propagates through the environment into
forked workers, the same channel ``repro-cli analyze
--precedence-oracle`` uses).
"""

import os

import numpy as np
import pytest

from repro import ALGORITHMS, Runtime, oracle_dependences
from repro.distributed import BACKENDS, ShardedRuntime
from repro.runtime.order import ENV_DISABLE, ENV_ENABLE

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


@pytest.fixture(autouse=True)
def clean_precedence_env():
    """Tests control the oracle per-runtime (or per-env); none of it may
    leak into other tests' runtimes or forked workers."""
    for var in (ENV_DISABLE, ENV_ENABLE):
        os.environ.pop(var, None)
    yield
    for var in (ENV_DISABLE, ENV_ENABLE):
        os.environ.pop(var, None)


def _run_plain(algo: str, oracle_on: bool) -> Runtime:
    tree, P, G = make_fig1_tree()
    rt = Runtime(tree, fig1_initial(tree), algorithm=algo,
                 precedence_oracle=oracle_on)
    rt.replay(fig1_stream(tree, P, G, 2))
    return rt


def _closure(graph) -> dict[int, set[int]]:
    return {tid: graph.ancestors_of(tid) for tid in graph.task_ids}


class TestPlainRuntimeClosureEquality:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_closures_identical_and_sound(self, algo):
        tree, P, G = make_fig1_tree()
        want = oracle_dependences(list(fig1_stream(tree, P, G, 2)))

        off = _run_plain(algo, oracle_on=False)
        on = _run_plain(algo, oracle_on=True)
        assert off.order is None and on.order is not None

        assert _closure(off.graph) == _closure(on.graph), algo
        assert off.graph.missing_pairs(want) == []
        assert on.graph.missing_pairs(want) == []
        assert on.graph.edge_count() <= off.graph.edge_count()

    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_values_unaffected(self, algo):
        off = _run_plain(algo, oracle_on=False)
        on = _run_plain(algo, oracle_on=True)
        for field in ("up", "down"):
            np.testing.assert_array_equal(
                off.algorithm_for(field).read_root(),
                on.algorithm_for(field).read_root(),
                err_msg=f"{algo}:{field}")

    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_oracle_actually_pruned(self, algo):
        """A differential over a no-op path proves nothing: the running
        program must exercise the coverage test on every algorithm."""
        on = _run_plain(algo, oracle_on=True)
        assert on.order.hits + on.order.misses > 0, algo


def _sharded_closure(algo: str, backend: str):
    tree, P, G = make_fig1_tree()
    stream = fig1_stream(tree, P, G, 2)
    with ShardedRuntime(tree, fig1_initial(tree), shards=4,
                        algorithm=algo, backend=backend) as srt:
        reports = srt.analyze(stream)
        graph = srt.graph
        fingerprints = {r.fingerprint for r in reports}
        closure = _closure(graph)
        missing = graph.missing_pairs(oracle_dependences(list(stream)))
        edges = graph.edge_count()
    return fingerprints, closure, missing, edges


class TestShardedClosureEquality:
    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_closures_identical_across_backends(self, algo, backend):
        fp_off, closure_off, missing_off, edges_off = \
            _sharded_closure(algo, backend)
        assert len(fp_off) == 1, (algo, backend)
        assert missing_off == []

        # REPRO_PRECEDENCE reaches every shard's Runtime — including ones
        # constructed inside forked/spawned worker processes
        os.environ[ENV_ENABLE] = "1"
        fp_on, closure_on, missing_on, edges_on = \
            _sharded_closure(algo, backend)
        assert len(fp_on) == 1, (algo, backend)
        assert missing_on == []
        assert closure_on == closure_off, (algo, backend)
        assert edges_on <= edges_off, (algo, backend)
