"""Tests for the pluggable shard-analysis execution backends.

Each backend must (a) reproduce the sequential reference's execution
results through :class:`ShardedRuntime`, (b) reach the exact same
analysis fingerprints as the in-process serial backend, and (c) surface
the per-phase perf counters.  The process backend additionally ships
pickled task streams and structural deltas — those paths get targeted
coverage here.
"""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, MachineError,
                   RegionRequirement, RegionTree, TaskStream, reduce)
from repro.distributed import BACKENDS, ShardedRuntime, make_backend
from repro.distributed.backends import (ProcessBackend, decode_privilege,
                                        encode_privilege, encode_tasks)
from repro.distributed.verify import (DeterminismError, ShardReport,
                                      check_reports, diff_dependences,
                                      fingerprint_tokens)
from repro.runtime.executor import SequentialExecutor
from repro.runtime.tracing import signature_digest

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matches_reference_and_serial_fingerprints(self, backend):
        """All three backends execute fig1 to the same values and produce
        bit-identical per-shard analysis fingerprints."""
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        reference = SequentialExecutor(tree, fig1_initial(tree))
        reference.run_stream(stream)
        with ShardedRuntime(tree, fig1_initial(tree), shards=3,
                            backend=backend) as srt:
            reports = srt.execute(stream)
            assert [r.shard for r in reports] == [0, 1, 2]
            assert len({r.fingerprint for r in reports}) == 1
            assert srt.state_fingerprint() == reference.fingerprint()
            for field in ("up", "down"):
                assert np.array_equal(srt.gather_field(field),
                                      reference.field(field))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_incremental_streams_verify(self, backend):
        """Repeated execute() calls verify each stream's window
        separately (task-id bases advance in lockstep on every shard)."""
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                            backend=backend) as srt:
            first = srt.execute(fig1_stream(tree, P, G, 1))
            second = srt.execute(fig1_stream(tree, P, G, 1))
        # steady state differs from cold start — different fingerprints
        assert first[0].fingerprint != second[0].fingerprint
        assert len({r.fingerprint for r in second}) == 1

    def test_profile_phases_recorded(self):
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=3,
                            backend="process") as srt:
            srt.execute(fig1_stream(tree, P, G, 1))
            profile = srt.profile
        for phase in ("analyze", "verify", "execute",
                      "analyze.shard0", "analyze.shard1", "analyze.shard2"):
            assert phase in profile, phase
            assert profile.stat(phase).seconds >= 0
        assert profile.stat("analyze").calls == 1
        assert profile.stat("ship").bytes > 0
        assert "analyze" in profile.render()

    def test_in_process_backends_ship_nothing(self):
        tree, P, G = make_fig1_tree()
        for backend in ("serial", "thread"):
            with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                                backend=backend) as srt:
                srt.execute(fig1_stream(tree, P, G, 1))
                assert srt.profile.stat("ship").bytes == 0


class TestProcessBackend:
    def test_structure_delta_shipped(self):
        """Partitions created *after* the workers spawn are replayed on
        the worker-side tree replicas (uids align by creation order)."""
        tree = RegionTree(12, {"x": np.float64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                  for i in range(3)], disjoint=True, complete=True)
        with ShardedRuntime(tree, {"x": np.zeros(12)}, shards=3,
                            backend="process") as srt:
            def bump(arr):
                arr += 1.0
            stream = TaskStream()
            for i in range(3):
                stream.append(f"w[{i}]",
                              [RegionRequirement(P[i], "x", READ_WRITE)],
                              bump, point=i)
            srt.execute(stream)
            # now grow the tree mid-life: workers must learn Q
            Q = tree.root.create_partition(
                "Q", [IndexSpace.from_range(0, 6),
                      IndexSpace.from_range(6, 12)],
                disjoint=True, complete=True)
            stream2 = TaskStream()
            for i in range(2):
                stream2.append(f"q[{i}]",
                               [RegionRequirement(Q[i], "x", READ_WRITE)],
                               bump, point=i)
            reports = srt.execute(stream2)
            assert len({r.fingerprint for r in reports}) == 1
            assert np.array_equal(srt.gather_field("x"), np.full(12, 2.0))

    def test_max_workers_hosts_multiple_replicas(self):
        """Fewer workers than remote replicas: each worker hosts several
        shards and the merged reports still cover every shard."""
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=5,
                            backend="process", max_workers=2) as srt:
            assert len(srt.backend.handles) == 2
            hosted = sorted(s for handle in srt.backend.handles
                            for s in handle.shards)
            assert hosted == [1, 2, 3, 4]
            reports = srt.execute(fig1_stream(tree, P, G, 1))
        assert [r.shard for r in reports] == [0, 1, 2, 3, 4]
        assert len({r.fingerprint for r in reports}) == 1

    def test_remote_dump_matches_reference(self):
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                            backend="process") as srt:
            srt.execute(fig1_stream(tree, P, G, 1))
            backend = srt.backend
            assert backend.dump_dependences(1, 0, 6) == \
                backend.dump_dependences(0, 0, 6)

    def test_close_is_idempotent(self):
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=2,
                             backend="process")
        srt.execute(fig1_stream(tree, P, G, 1))
        srt.close()
        srt.close()
        assert srt.backend.handles == ()

    def test_replication_disabled_spawns_no_workers(self):
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=3,
                            backend="process",
                            replicate_analysis=False) as srt:
            srt.execute(fig1_stream(tree, P, G, 1))
            assert srt.backend.handles == ()
            assert srt.profile.stat("ship").bytes == 0


class TestEncoding:
    def test_privilege_roundtrip(self):
        for privilege in (READ, READ_WRITE, reduce("sum"), reduce("max")):
            desc = encode_privilege(privilege)
            back = decode_privilege(desc)
            assert back.kind == privilege.kind
            if privilege.is_reduce:
                assert back.redop.name == privilege.redop.name

    def test_tasks_encode_without_bodies(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 1)
        records = encode_tasks(stream)
        assert len(records) == len(stream)
        for (name, reqs, point), task in zip(records, stream):
            assert name == task.name and point == task.point
            assert all(isinstance(uid, int) for uid, _, _ in reqs)

    def test_signature_digest_process_stable(self):
        """Two identical streams share a digest; a privilege change does
        not (the digest is the cross-process stream identity)."""
        tree, P, G = make_fig1_tree()
        a = fig1_stream(tree, P, G, 1)
        b = fig1_stream(tree, P, G, 1)
        assert signature_digest(a) == signature_digest(b)
        c = TaskStream()
        for task in a:
            c.append(task.name,
                     [RegionRequirement(r.region, r.field, READ)
                      for r in task.requirements], task.body, task.point)
        assert signature_digest(a) != signature_digest(c)


class TestVerifyPrimitives:
    def test_fingerprint_tokens_type_tagged(self):
        assert fingerprint_tokens(1) != fingerprint_tokens("1")
        assert fingerprint_tokens(True) != fingerprint_tokens(1)
        assert fingerprint_tokens(None) != fingerprint_tokens(0)
        assert fingerprint_tokens((1, 2)) != fingerprint_tokens((12,))
        assert fingerprint_tokens(b"ab") == fingerprint_tokens(b"ab")

    def test_check_reports_builds_structured_diff(self):
        dumps = {0: [(0,), (0, 1)], 2: [(0,), (1,)]}
        reports = [ShardReport(0, "aaaa", 0.0),
                   ShardReport(1, "aaaa", 0.0),
                   ShardReport(2, "bbbb", 0.0)]
        with pytest.raises(DeterminismError) as info:
            check_reports(reports, lambda s: dumps[s], base=10)
        exc = info.value
        assert exc.mismatched_shards == (2,)
        assert len(exc.divergences) == 1
        d = exc.divergences[0]
        assert (d.task_id, d.shard) == (11, 2)
        assert "shard 0 -> [0, 1]" in str(d)

    def test_check_reports_happy_path_never_dumps(self):
        reports = [ShardReport(s, "same", 0.0) for s in range(4)]

        def explode(shard):
            raise AssertionError("dump called on the happy path")
        check_reports(reports, explode, base=0)

    def test_diff_dependences(self):
        diffs = diff_dependences([(1,), (2,), (3,)], 5,
                                 [(1,), (9,), (3,)], base=100)
        assert len(diffs) == 1
        assert diffs[0].task_id == 101 and diffs[0].shard == 5


class TestFactory:
    def test_unknown_backend_rejected(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(MachineError, match="unknown analysis backend"):
            ShardedRuntime(tree, fig1_initial(tree), shards=2,
                           backend="quantum")

    def test_instance_passthrough(self):
        tree, _, _ = make_fig1_tree()
        initial = fig1_initial(tree)
        backend = make_backend("serial", tree, initial, "raycast", 2)
        assert make_backend(backend, tree, initial, "raycast", 2) is backend

    def test_zero_replicas_rejected(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(MachineError):
            make_backend("serial", tree, fig1_initial(tree), "raycast", 0)

    def test_process_backend_repr_name(self):
        tree, _, _ = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                            backend="process") as srt:
            assert isinstance(srt.backend, ProcessBackend)
            assert "process" in repr(srt)
