"""Regression tests: ShardedRuntime teardown on failure paths.

A long-lived service keeps constructing and closing runtimes; any path
that leaks worker processes turns into a fork bomb over hours.  Two
historical hazards are pinned here:

* a constructor that validated initial values *after* spawning the
  process backend leaked orphans on bad input (there was no runtime
  object for the caller to close);
* an ``analyze()`` that raises mid-flight (reference replica fails while
  workers are already running the shipped stream) must still tear every
  worker down through the context-manager exit, and ``close()`` must
  stay idempotent afterwards.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.distributed import ShardedRuntime
from repro.errors import TaskError

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


def _assert_no_worker_children() -> None:
    """Every supervised worker joined: no live 'shard-worker' children.

    pytest itself may own unrelated children (e.g. coverage helpers), so
    the check joins and inspects rather than demanding an empty list.
    """
    leaked = []
    for child in mp.active_children():
        child.join(timeout=5)
        if child.is_alive():
            leaked.append(child)
    assert not leaked, f"orphaned worker processes: {leaked}"


class TestInitValidation:
    def test_bad_initial_shape_raises_without_spawning(self):
        tree, _, _ = make_fig1_tree()
        initial = fig1_initial(tree)
        initial["up"] = np.zeros(3, dtype=np.int64)  # wrong shape
        before = len(mp.active_children())
        with pytest.raises(TaskError, match="shape"):
            ShardedRuntime(tree, initial, shards=2, backend="process",
                           recv_timeout=10.0)
        _assert_no_worker_children()
        assert len(mp.active_children()) <= before

    def test_bad_initial_shape_serial_backend(self):
        tree, _, _ = make_fig1_tree()
        initial = fig1_initial(tree)
        initial["down"] = np.zeros((2, 12), dtype=np.int64)
        with pytest.raises(TaskError, match="shape"):
            ShardedRuntime(tree, initial, shards=2, backend="serial")


class TestMidFlightFailure:
    def _boom_after(self, runtime: ShardedRuntime, n: int):
        """Make the reference replica raise after ``n`` launches — a
        mid-flight analyze failure with workers already running."""
        reference = runtime.backend.reference
        real_launch = reference.launch
        state = {"count": 0}

        def launch(*args, **kwargs):
            state["count"] += 1
            if state["count"] > n:
                raise RuntimeError("reference replica failed mid-stream")
            return real_launch(*args, **kwargs)

        reference.launch = launch

    def test_exit_after_failed_analyze_joins_workers(self):
        tree, P, G = make_fig1_tree()
        with pytest.raises(RuntimeError, match="mid-stream"):
            with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                                algorithm="raycast", backend="process",
                                recv_timeout=10.0) as srt:
                procs = [h.proc for h in srt.backend.handles if h.remote]
                assert procs and all(p.is_alive() for p in procs)
                self._boom_after(srt, 2)
                srt.analyze(fig1_stream(tree, P, G, 1))
        for proc in procs:
            proc.join(timeout=5)
            assert not proc.is_alive(), "worker survived __exit__"
        _assert_no_worker_children()

    def test_close_idempotent_after_failed_analyze(self):
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=2,
                             algorithm="warnock", backend="process",
                             recv_timeout=10.0)
        try:
            self._boom_after(srt, 1)
            with pytest.raises(RuntimeError):
                srt.analyze(fig1_stream(tree, P, G, 1))
        finally:
            srt.close()
        srt.close()  # second close must be a silent no-op
        srt.close()
        _assert_no_worker_children()

    def test_serial_backend_close_idempotent(self):
        tree, _, _ = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=2,
                             backend="serial")
        srt.close()
        srt.close()
