"""Unit tests for the fault-injection primitives (no subprocesses).

FaultPlan draws must be deterministic, seed-sensitive and
incarnation-independent; RetryPolicy backoff and the fake clock drive the
supervision tests in test_recovery.py without any real sleeping.
"""

import pickle

import pytest

from repro.distributed.faults import (FAULT_KINDS, NO_FAULTS, FakeClock,
                                      FaultEvent, FaultPlan, RecoveryReport,
                                      RetryPolicy, WorkerCrashed, WorkerFault,
                                      WorkerHung)
from repro.errors import MachineError


class TestFaultPlan:
    def test_default_plan_never_fires(self):
        assert not NO_FAULTS.active
        for worker in range(4):
            for op in range(50):
                assert NO_FAULTS.draw(worker, 0, op) is None

    def test_draws_are_deterministic(self):
        plan = FaultPlan(seed=7, rate=0.3)
        a = [plan.draw(w, i, op)
             for w in range(3) for i in range(2) for op in range(20)]
        b = [plan.draw(w, i, op)
             for w in range(3) for i in range(2) for op in range(20)]
        assert a == b
        assert any(e is not None for e in a)

    def test_different_seeds_draw_differently(self):
        a = FaultPlan(seed=1, rate=0.3)
        b = FaultPlan(seed=2, rate=0.3)
        outcomes_a = [a.draw(0, 0, op) for op in range(64)]
        outcomes_b = [b.draw(0, 0, op) for op in range(64)]
        assert outcomes_a != outcomes_b

    def test_incarnations_draw_independently(self):
        """A respawned worker must not be doomed to the same faults."""
        plan = FaultPlan(seed=5, rate=0.5)
        first = [plan.draw(0, 0, op) is not None for op in range(64)]
        second = [plan.draw(0, 1, op) is not None for op in range(64)]
        assert first != second

    def test_rate_statistics_roughly_calibrated(self):
        plan = FaultPlan(seed=11, rate=0.25)
        n = 2000
        hits = sum(plan.draw(w, 0, op) is not None
                   for w in range(4) for op in range(n // 4))
        assert 0.15 * n < hits < 0.35 * n

    def test_explicit_events_match_exactly(self):
        event = FaultEvent("crash", worker=1, op=3, incarnation=2)
        plan = FaultPlan(events=(event,))
        assert plan.active
        assert plan.draw(1, 2, 3) is event
        assert plan.draw(1, 2, 4) is None
        assert plan.draw(1, 1, 3) is None
        assert plan.draw(0, 2, 3) is None

    def test_kinds_restriction(self):
        plan = FaultPlan(seed=3, rate=0.8, kinds=("hang",))
        kinds = {e.kind for w in range(4) for op in range(32)
                 if (e := plan.draw(w, 0, op)) is not None}
        assert kinds == {"hang"}

    def test_delay_and_slow_carry_seconds(self):
        plan = FaultPlan(seed=9, rate=1.0, kinds=("delay", "slow"))
        events = [plan.draw(0, 0, op) for op in range(16)]
        assert all(e is not None and e.seconds > 0 for e in events)

    def test_plans_pickle(self):
        plan = FaultPlan(seed=7, rate=0.1,
                         events=(FaultEvent("hang", 0, 2),))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert [clone.draw(0, 0, op) for op in range(32)] == \
            [plan.draw(0, 0, op) for op in range(32)]

    def test_validation(self):
        with pytest.raises(MachineError, match="outside"):
            FaultPlan(rate=1.5)
        with pytest.raises(MachineError, match="unknown fault kind"):
            FaultPlan(kinds=("explode",))
        with pytest.raises(MachineError, match="unknown fault kind"):
            FaultEvent("explode", 0, 0)


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        retry = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                            max_delay=0.5)
        assert retry.delay(0) == 0.0
        assert retry.delay(1) == pytest.approx(0.1)
        assert retry.delay(2) == pytest.approx(0.2)
        assert retry.delay(3) == pytest.approx(0.4)
        assert retry.delay(4) == pytest.approx(0.5)  # capped
        assert retry.delay(5) == pytest.approx(0.5)

    def test_defaults_are_bounded(self):
        retry = RetryPolicy()
        total = sum(retry.delay(k) for k in range(retry.max_retries + 1))
        assert total < 10.0

    def test_jitter_default_off_preserves_schedule(self):
        """jitter=0 must reproduce the historical pure-exponential
        schedule exactly, for any salt."""
        retry = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                            max_delay=0.5)
        for salt in (0, 1, 7):
            assert retry.delay(2, salt=salt) == pytest.approx(0.2)
            assert retry.delay(4, salt=salt) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        retry = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                            max_delay=0.5, jitter=0.5, seed=3)
        plain = RetryPolicy(max_retries=5, base_delay=0.1, multiplier=2.0,
                            max_delay=0.5)
        for salt in range(4):
            schedule = [retry.delay(k, salt=salt) for k in range(6)]
            again = [retry.delay(k, salt=salt) for k in range(6)]
            assert schedule == again  # same (policy, salt) -> same waits
            assert schedule[0] == 0.0
            for k in range(1, 6):
                base = plain.delay(k)
                assert base <= schedule[k] <= base * 1.5

    def test_jitter_desynchronizes_salts(self):
        """Two workers recovering simultaneously must not back off in
        lockstep — that is the whole point of the jitter."""
        retry = RetryPolicy(jitter=0.5, seed=1)
        a = [retry.delay(k, salt=0) for k in range(1, 3)]
        b = [retry.delay(k, salt=1) for k in range(1, 3)]
        assert a != b

    def test_jittered_schedule_pins(self):
        """Pin the exact jittered schedule through a FakeClock so any
        change to the draw is a visible diff, not a silent reshuffle."""
        retry = RetryPolicy(max_retries=3, base_delay=0.1, multiplier=2.0,
                            max_delay=2.0, jitter=0.5, seed=42)
        clock = FakeClock()
        for attempt in range(1, 4):
            clock.sleep(retry.delay(attempt, salt=2))
        assert clock.sleeps == [retry.delay(1, salt=2),
                                retry.delay(2, salt=2),
                                retry.delay(3, salt=2)]
        # frozen against the SHA-256 draw; update only deliberately
        assert clock.sleeps == pytest.approx(
            [0.1 * (1.0 + 0.5 * _frac(42, 2, 1)),
             0.2 * (1.0 + 0.5 * _frac(42, 2, 2)),
             0.4 * (1.0 + 0.5 * _frac(42, 2, 3))])

    def test_jitter_validation(self):
        with pytest.raises(MachineError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(MachineError):
            RetryPolicy(jitter=-0.1)


def _frac(seed: int, salt: int, attempt: int) -> float:
    import hashlib
    digest = hashlib.sha256(f"{seed}:{salt}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "little") / 2.0 ** 64


class TestFakeClock:
    def test_sleep_advances_without_blocking(self):
        clock = FakeClock()
        clock.sleep(2.5)
        clock.advance(1.0)
        assert clock.monotonic() == pytest.approx(3.5)
        assert clock.sleeps == [2.5]


class TestRecoveryReport:
    def test_delta_and_counters(self):
        before = RecoveryReport()
        report = RecoveryReport()
        report.record_fault("crash")
        report.record_fault("crash")
        report.record_fault("hang")
        report.retries = 3
        report.replayed_tasks = 12
        report.recovery_seconds = 1.5
        before2 = report.copy()
        report.record_fault("crash")
        report.retries = 4
        delta = report.delta(before2)
        assert delta.faults == {"crash": 1}
        assert delta.retries == 1
        assert delta.replayed_tasks == 0
        full = report.delta(before)
        assert full.total_faults == 4
        counters = full.counters()
        assert counters["fault.crash"] == 3
        assert counters["fault.hang"] == 1
        assert counters["retries"] == 4
        assert "respawns" not in counters  # zero counters are omitted

    def test_has_activity(self):
        report = RecoveryReport()
        assert not report.has_activity
        report.checkpoints = 5  # routine, not activity
        assert not report.has_activity
        report.record_fault("hang")
        assert report.has_activity

    def test_render_mentions_key_counters(self):
        report = RecoveryReport()
        report.record_fault("crash")
        report.retries = 2
        report.replayed_tasks = 8
        text = report.render()
        assert "crash:1" in text and "retries=2" in text
        assert "replayed=8" in text


class TestExceptionFamily:
    def test_kinds_and_hierarchy(self):
        assert issubclass(WorkerCrashed, WorkerFault)
        assert issubclass(WorkerFault, MachineError)
        assert WorkerCrashed.kind == "crash"
        assert WorkerHung.kind == "hang"
        assert set(FAULT_KINDS) >= {"crash", "hang", "corrupt"}
