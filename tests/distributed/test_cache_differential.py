"""Differential harness: the geometry fast path is observationally invisible.

Analysis fingerprints hash the dependence graph, the equivalence-set
structure tokens, *and* the cost-meter counter snapshot.  These tests run
the same program with the operation cache + batched kernel enabled and
disabled — for every coherence algorithm, plain and sharded across every
backend — and require bit-identical fingerprints.  Any cached result that
diverges from a fresh computation, or any batched verdict that differs
from the scalar path, or any stray meter count introduced by the fast
path, lands here.
"""

import os

import pytest

from repro import ALGORITHMS, Runtime
from repro.distributed import BACKENDS, ShardedRuntime
from repro.distributed.verify import analysis_fingerprint
from repro.geometry.fastpath import (ENV_DISABLE, geometry_cache,
                                     geometry_cache_disabled,
                                     reset_geometry_cache)

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


@pytest.fixture(autouse=True)
def clean_cache_env():
    """Each test starts from the env-default cache state and restores it
    (the env var must not leak into other tests' forked workers)."""
    os.environ.pop(ENV_DISABLE, None)
    reset_geometry_cache()
    yield
    os.environ.pop(ENV_DISABLE, None)
    reset_geometry_cache()


def _sharded_fingerprints(algo: str, backend: str, shards: int = 4) -> set:
    tree, P, G = make_fig1_tree()
    with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                        algorithm=algo, backend=backend) as srt:
        reports = srt.analyze(fig1_stream(tree, P, G, 2))
    return {r.fingerprint for r in reports}


class TestCacheDifferential:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_plain_runtime_bit_identical(self, algo):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        reset_geometry_cache(enabled=True)
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        rt.replay(stream)
        cached = analysis_fingerprint(rt)
        if algo != "zbuffer":  # zbuffer is per-element: no set algebra
            stats = geometry_cache().stats()
            assert stats["hits"] + stats["misses"] > 0, \
                "the fast path never ran — the differential proves nothing"
        with geometry_cache_disabled():
            rt2 = Runtime(tree, fig1_initial(tree), algorithm=algo)
            rt2.replay(stream)
            uncached = analysis_fingerprint(rt2)
        assert cached == uncached, algo

    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_sharded_bit_identical(self, algo, backend):
        cached = _sharded_fingerprints(algo, backend)
        assert len(cached) == 1, (algo, backend, sorted(cached))
        # REPRO_NO_GEOM_CACHE propagates into forked workers, so this
        # disables the fast path on every backend, not just in-process
        os.environ[ENV_DISABLE] = "1"
        reset_geometry_cache()
        uncached = _sharded_fingerprints(algo, backend)
        assert cached == uncached, (algo, backend)
