"""Chaos matrix: real SIGKILLs against the differential-determinism suite.

Unlike the cooperative fault injection in test_recovery.py (where the
worker kills *itself* at a scheduled request), these tests deliver a real
``SIGKILL`` from outside, at seeded random points between and during
analysis windows — the worker gets no chance to flush, reply, or clean
up.  For every algorithm × shard-count cell, the recovered run must
reproduce the exact per-window fingerprints of a fault-free serial run,
and the supervisor must have actually seen and repaired the kills.

Marked ``chaos`` so the matrix can run as its own CI job
(``pytest -m chaos`` / ``make chaos``); the default suite still runs it
unless deselected with ``-m 'not chaos'``.
"""

import os
import random
import signal

import pytest

from repro.distributed import ShardedRuntime

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree

pytestmark = pytest.mark.chaos

#: The paper's three headline algorithms (section 8's figures).
CHAOS_ALGORITHMS = ("raycast", "warnock", "tree_painter")
CHAOS_SHARDS = (2, 4, 8)
WINDOWS = 5


def _serial_fingerprints(algo: str) -> list[str]:
    tree, P, G = make_fig1_tree()
    with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                        algorithm=algo, backend="serial") as srt:
        return [srt.analyze(fig1_stream(tree, P, G, 1))[0].fingerprint
                for _ in range(WINDOWS)]


def _sigkill_run(algo: str, shards: int, seed: int) -> tuple:
    """Analyze WINDOWS fig1 streams, SIGKILLing one live worker at
    seeded random windows; returns (fingerprints, recovery copy)."""
    rng = random.Random(seed)
    kill_windows = sorted(rng.sample(range(WINDOWS), 2))
    tree, P, G = make_fig1_tree()
    kills = 0
    with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                        algorithm=algo, backend="process",
                        recv_timeout=10.0, checkpoint_interval=2) as srt:
        fingerprints = []
        for window in range(WINDOWS):
            if window in kill_windows:
                victims = [h for h in srt.backend.handles
                           if h.remote and h.proc is not None
                           and h.proc.is_alive()]
                if victims:
                    victim = rng.choice(victims)
                    os.kill(victim.proc.pid, signal.SIGKILL)
                    victim.proc.join(timeout=10)
                    kills += 1
            reports = srt.analyze(fig1_stream(tree, P, G, 1))
            assert len(reports) == shards
            assert len({r.fingerprint for r in reports}) == 1
            fingerprints.append(reports[0].fingerprint)
        recovery = srt.recovery.copy()
    return fingerprints, recovery, kills


class TestSigkillMatrix:
    @pytest.mark.parametrize("algo", CHAOS_ALGORITHMS)
    @pytest.mark.parametrize("shards", CHAOS_SHARDS)
    def test_sigkilled_worker_recovers_to_baseline(self, algo, shards):
        baseline = _serial_fingerprints(algo)
        fingerprints, recovery, kills = _sigkill_run(
            algo, shards, seed=1000 * shards + len(algo))
        assert kills == 2
        assert fingerprints == baseline, (
            f"{algo} x {shards} shards diverged after SIGKILL recovery")
        # the supervisor really saw the kills and repaired them
        assert recovery.faults.get("crash", 0) >= kills
        assert recovery.respawns >= kills
        assert recovery.replayed_streams >= 1
        assert recovery.workers_lost == 0

    def test_sigkill_mid_receive_detected(self):
        """Kill the worker while the supervisor is blocked waiting for
        its reply (not between windows): the poll loop's liveness probe
        must notice the death without waiting for the full timeout.  A
        ``slow`` fault pins the worker in its second analyze (op 1) for
        5 s so the SIGKILL reliably lands mid-request."""
        import threading
        import time as time_mod

        from repro.distributed import FaultEvent, FaultPlan

        plan = FaultPlan(events=(
            FaultEvent("slow", worker=0, op=1, seconds=5.0),))
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                            backend="process", recv_timeout=30.0,
                            faults=plan, checkpoint_interval=3) as srt:
            srt.analyze(fig1_stream(tree, P, G, 1))
            handle = srt.backend.handles[0]
            pid = handle.proc.pid

            def assassinate():
                time_mod.sleep(0.3)
                os.kill(pid, signal.SIGKILL)

            killer = threading.Thread(target=assassinate)
            killer.start()
            start = time_mod.monotonic()
            reports = srt.analyze(fig1_stream(tree, P, G, 1))
            elapsed = time_mod.monotonic() - start
            killer.join()
            assert len({r.fingerprint for r in reports}) == 1
            assert srt.recovery.faults.get("crash", 0) >= 1
            # detection came from the liveness probe: well under both the
            # 5s injected slowness and the 30s receive deadline
            assert elapsed < 4.0
