"""Differential harness: the columnar scan path is observationally invisible.

Mirror of ``test_cache_differential.py`` for the structure-of-arrays
histories: the same program analyzed with the columnar sweep enabled and
disabled — for every coherence algorithm, plain and sharded across every
backend — must produce bit-identical analysis fingerprints (dependence
graph, structure tokens, *and* meter counts).  Any vectorized
interference verdict, batched overlap answer, or bulk meter charge that
diverges from the object walk lands here.
"""

import os

import pytest

from repro import ALGORITHMS, Runtime
from repro.distributed import BACKENDS, ShardedRuntime
from repro.distributed.verify import analysis_fingerprint
from repro.visibility.history import (ENV_DISABLE, columnar_disabled,
                                      columnar_enabled,
                                      set_columnar_enabled)

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


@pytest.fixture(autouse=True)
def clean_columnar_env():
    """Each test starts from the env-default columnar state and restores
    it (the env var must not leak into other tests' forked workers)."""
    os.environ.pop(ENV_DISABLE, None)
    set_columnar_enabled(None)
    yield
    os.environ.pop(ENV_DISABLE, None)
    set_columnar_enabled(None)


def _plain_fingerprint(algo: str, oracle: bool = False) -> str:
    tree, P, G = make_fig1_tree()
    rt = Runtime(tree, fig1_initial(tree), algorithm=algo,
                 precedence_oracle=oracle)
    rt.replay(fig1_stream(tree, P, G, 2))
    return analysis_fingerprint(rt)


def _sharded_fingerprints(algo: str, backend: str, shards: int = 4) -> set:
    tree, P, G = make_fig1_tree()
    with ShardedRuntime(tree, fig1_initial(tree), shards=shards,
                        algorithm=algo, backend=backend) as srt:
        reports = srt.analyze(fig1_stream(tree, P, G, 2))
    return {r.fingerprint for r in reports}


class TestColumnarDifferential:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_plain_runtime_bit_identical(self, algo):
        assert columnar_enabled(), "differential needs the default on"
        on = _plain_fingerprint(algo)
        with columnar_disabled():
            off = _plain_fingerprint(algo)
        assert on == off, algo

    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_plain_runtime_bit_identical_with_oracle(self, algo):
        """The oracle-pruned scan batches its survivors — same bar."""
        on = _plain_fingerprint(algo, oracle=True)
        with columnar_disabled():
            off = _plain_fingerprint(algo, oracle=True)
        assert on == off, algo

    @pytest.mark.parametrize("backend", list(BACKENDS))
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_sharded_bit_identical(self, algo, backend):
        on = _sharded_fingerprints(algo, backend)
        assert len(on) == 1, (algo, backend, sorted(on))
        # REPRO_NO_COLUMNAR propagates into forked workers, so this
        # disables the columnar path on every backend, not just in-process
        os.environ[ENV_DISABLE] = "1"
        set_columnar_enabled(None)
        off = _sharded_fingerprints(algo, backend)
        assert on == off, (algo, backend)
