"""Supervision and recovery tests for the process backend.

The determinism contract makes recovery checkable end-to-end: whatever
faults are injected, the recovered run must reproduce the exact
fingerprints of a fault-free run.  Every test here asserts that, plus
the specific recovery machinery it exercises (timeout detection,
checkpoint restore, journal replay, adoption, in-process fallback).

Timeout-sensitive tests use a short real receive timeout (injected hangs
park the worker for an hour — only the supervisor's deadline gets us
out); backoff tests use crash faults with a fake clock so CI never
sleeps.
"""

import pytest

from repro.distributed import ShardedRuntime, make_backend
from repro.distributed.backends import ProcessBackend
from repro.distributed.faults import (FakeClock, FaultEvent, FaultPlan,
                                      RetryPolicy)
from repro.errors import MachineError

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree

#: Retry policy with tiny real delays (tests that use the real clock).
FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, multiplier=2.0,
                         max_delay=0.05)

#: A plan that crashes worker 0 on every request of every incarnation:
#: recovery can never succeed and the worker is declared lost.
ALWAYS_CRASH_W0 = FaultPlan(events=tuple(
    FaultEvent("crash", worker=0, op=op, incarnation=inc)
    for inc in range(12) for op in range(60)))


def run_windows(windows=4, iterations=1, **kwargs):
    """Analyze ``windows`` fig1 streams through one ShardedRuntime;
    returns (per-window fingerprints, recovery report, profile)."""
    tree, P, G = make_fig1_tree()
    srt = ShardedRuntime(tree, fig1_initial(tree), shards=4,
                         checkpoint_interval=2, **kwargs)
    with srt:
        fingerprints = []
        for _ in range(windows):
            reports = srt.analyze(fig1_stream(tree, P, G, iterations))
            assert len({r.fingerprint for r in reports}) == 1
            fingerprints.append(reports[0].fingerprint)
        recovery = srt.recovery.copy() if srt.recovery is not None else None
    return fingerprints, recovery, srt.profile


@pytest.fixture(scope="module")
def baseline():
    fingerprints, _, _ = run_windows(backend="serial")
    return fingerprints


class TestFaultRecovery:
    def test_fault_free_run_has_no_recovery_activity(self, baseline):
        fingerprints, recovery, _ = run_windows(backend="process",
                                                recv_timeout=10.0)
        assert fingerprints == baseline
        assert not recovery.has_activity
        assert recovery.checkpoints > 0  # routine checkpointing ran

    def test_crash_recovered_by_replay(self, baseline):
        plan = FaultPlan(events=(FaultEvent("crash", worker=0, op=1),))
        fingerprints, recovery, profile = run_windows(
            backend="process", faults=plan, recv_timeout=10.0,
            retry=FAST_RETRY)
        assert fingerprints == baseline
        assert recovery.faults == {"crash": 1}
        assert recovery.respawns == 1
        assert recovery.replayed_tasks > 0
        assert recovery.workers_lost == 0
        # the recovery surfaced into the profile as recover.* phases
        assert profile.stat("recover").calls == 1
        assert profile.stat("recover").seconds > 0
        assert profile.stat("recover.fault.crash").calls == 1
        assert profile.stat("recover.respawns").calls == 1

    def test_corrupt_reply_recovered(self, baseline):
        plan = FaultPlan(events=(FaultEvent("corrupt", worker=1, op=0),))
        fingerprints, recovery, _ = run_windows(
            backend="process", faults=plan, recv_timeout=10.0,
            retry=FAST_RETRY)
        assert fingerprints == baseline
        assert recovery.faults == {"corrupt": 1}
        assert recovery.respawns == 1

    def test_hang_detected_by_receive_timeout(self, baseline):
        """An injected hang parks the worker for an hour; only the
        supervised receive deadline can detect it."""
        plan = FaultPlan(events=(FaultEvent("hang", worker=0, op=2),))
        fingerprints, recovery, _ = run_windows(
            backend="process", faults=plan, recv_timeout=0.3,
            retry=FAST_RETRY)
        assert fingerprints == baseline
        assert recovery.faults == {"hang": 1}
        assert recovery.respawns == 1

    def test_dropped_reply_recovered_as_hang(self, baseline):
        plan = FaultPlan(events=(FaultEvent("drop", worker=0, op=1),))
        fingerprints, recovery, _ = run_windows(
            backend="process", faults=plan, recv_timeout=0.3,
            retry=FAST_RETRY)
        assert fingerprints == baseline
        assert recovery.faults == {"hang": 1}  # parent can't tell apart

    def test_delay_within_timeout_needs_no_recovery(self, baseline):
        plan = FaultPlan(events=(
            FaultEvent("delay", worker=0, op=1, seconds=0.05),))
        fingerprints, recovery, _ = run_windows(
            backend="process", faults=plan, recv_timeout=10.0)
        assert fingerprints == baseline
        assert not recovery.has_activity

    def test_checkpoint_bounds_replay(self, baseline):
        """A late crash replays from the last verified checkpoint, not
        from task 0: with 6 windows, checkpoints every 2 and a crash in
        the last window, the journal suffix is at most 2 windows deep."""
        serial, _, _ = run_windows(windows=6, backend="serial")
        plan = FaultPlan(events=(FaultEvent("crash", worker=0, op=5),))
        fingerprints, recovery, _ = run_windows(
            windows=6, backend="process", faults=plan,
            recv_timeout=10.0, retry=FAST_RETRY)
        assert fingerprints == serial
        assert recovery.restores == 1  # respawned from a checkpoint
        total = 6 * 12  # windows x tasks per fig1 window
        assert 0 < recovery.replayed_tasks < total
        assert recovery.checkpoints > 0

    def test_chaos_rate_plan_matches_baseline(self, baseline):
        fingerprints, recovery, _ = run_windows(
            backend="process", faults=FaultPlan(seed=13, rate=0.2),
            recv_timeout=0.5, retry=FAST_RETRY)
        assert fingerprints == baseline


class TestPermanentLoss:
    def test_lost_worker_falls_back_in_process(self, baseline):
        """Retries exhausted with no surviving worker: replicas move to
        an in-process host and the run completes, degraded."""
        fingerprints, recovery, _ = run_windows(
            backend="process", max_workers=1, faults=ALWAYS_CRASH_W0,
            recv_timeout=10.0, retry=FAST_RETRY)
        assert fingerprints == baseline
        assert recovery.workers_lost == 1
        assert recovery.local_fallbacks == 1
        assert recovery.retries == FAST_RETRY.max_retries + 1

    def test_lost_worker_adopted_by_survivor(self, baseline):
        """With a surviving worker, the lost worker's replicas are
        adopted remotely instead of falling back in-process."""
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=4,
                             backend="process", max_workers=2,
                             faults=ALWAYS_CRASH_W0, recv_timeout=10.0,
                             retry=FAST_RETRY, checkpoint_interval=2)
        with srt:
            fingerprints = [
                srt.analyze(fig1_stream(tree, P, G, 1))[0].fingerprint
                for _ in range(4)]
            recovery = srt.recovery.copy()
            backend = srt.backend
            assert len(backend.handles) == 1
            assert sorted(backend.handles[0].shards) == [1, 2, 3]
            assert not backend.degraded
        assert fingerprints == baseline
        assert recovery.adoptions == 1
        assert recovery.workers_lost == 1
        assert recovery.local_fallbacks == 0

    def test_degraded_backend_keeps_verifying(self, baseline):
        """After the fallback, later streams still analyze on every
        replica and verify (the local host serves dumps too)."""
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=4,
                             backend="process", max_workers=1,
                             faults=ALWAYS_CRASH_W0, recv_timeout=10.0,
                             retry=FAST_RETRY, checkpoint_interval=2)
        with srt:
            first = srt.analyze(fig1_stream(tree, P, G, 1))
            assert srt.backend.degraded
            second = srt.analyze(fig1_stream(tree, P, G, 1))
            assert len({r.fingerprint for r in second}) == 1
            assert srt.backend.dump_dependences(1, 0, 6) == \
                srt.backend.dump_dependences(0, 0, 6)
        assert [first[0].fingerprint, second[0].fingerprint] == baseline[:2]


class TestBackoff:
    def test_backoff_delays_follow_policy_without_sleeping(self):
        """Two consecutive crashes (incarnations 0 and 1) force recovery
        attempts 0 and 1; the fake clock records exactly the policy's
        attempt-1 delay and the test never really sleeps."""
        clock = FakeClock()
        retry = RetryPolicy(max_retries=3, base_delay=7.0, multiplier=3.0,
                            max_delay=100.0)
        plan = FaultPlan(events=(
            FaultEvent("crash", worker=0, op=1, incarnation=0),
            FaultEvent("crash", worker=0, op=0, incarnation=1),
        ))
        fingerprints, recovery, _ = run_windows(
            windows=2, backend="process", faults=plan, recv_timeout=10.0,
            retry=retry, clock=clock)
        serial, _, _ = run_windows(windows=2, backend="serial")
        assert fingerprints == serial
        assert recovery.retries == 2
        assert clock.sleeps == [retry.delay(1)]
        assert clock.sleeps == [7.0]

    def test_exhaustion_sleeps_every_backoff_step(self):
        clock = FakeClock()
        retry = RetryPolicy(max_retries=2, base_delay=1.0, multiplier=2.0,
                            max_delay=10.0)
        fingerprints, recovery, _ = run_windows(
            windows=2, backend="process", max_workers=1,
            faults=ALWAYS_CRASH_W0, recv_timeout=10.0, retry=retry,
            clock=clock)
        serial, _, _ = run_windows(windows=2, backend="serial")
        assert fingerprints == serial
        assert recovery.workers_lost == 1
        assert clock.sleeps == [retry.delay(1), retry.delay(2)]


class TestCheckpointRoundTrip:
    @pytest.mark.parametrize("algo", ["painter", "tree_painter", "warnock",
                                      "raycast", "zbuffer"])
    def test_pickled_runtime_analyzes_identically(self, algo):
        """The checkpoint contract, per algorithm: pickling a half-way
        analysis state and continuing on the clone must reach the same
        fingerprint as never pausing.  (Catches id()-keyed or otherwise
        pickle-unstable algorithm state before the chaos matrix does.)"""
        import pickle

        from repro.distributed.verify import analysis_fingerprint
        from repro.runtime.context import Runtime

        tree, P, G = make_fig1_tree()
        first = fig1_stream(tree, P, G, 1)
        second = fig1_stream(tree, P, G, 1)
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        for task in first:
            rt.launch(task.name, task.requirements, None, task.point)
        tree2, rt2 = pickle.loads(pickle.dumps((tree, rt)))
        regions2 = {r.uid: r for r in tree2.regions}
        for task in second:
            rt.launch(task.name, task.requirements, None, task.point)
            reqs2 = [type(req)(regions2[req.region.uid], req.field,
                               req.privilege) for req in task.requirements]
            rt2.launch(task.name, reqs2, None, task.point)
        total = len(first) + len(second)
        assert analysis_fingerprint(rt2, 0, total) == \
            analysis_fingerprint(rt, 0, total)


class TestLifecycle:
    def test_close_idempotent_after_recovery(self):
        tree, P, G = make_fig1_tree()
        plan = FaultPlan(events=(FaultEvent("crash", worker=0, op=1),))
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=3,
                             backend="process", faults=plan,
                             recv_timeout=10.0, retry=FAST_RETRY)
        srt.analyze(fig1_stream(tree, P, G, 1))
        srt.close()
        srt.close()
        assert srt.backend.handles == ()

    def test_del_safe_before_and_after_close(self):
        tree, _, _ = make_fig1_tree()
        backend = ProcessBackend(tree, fig1_initial(tree), "raycast", 3)
        backend.close()
        backend.__del__()  # double close through the finalizer: no raise
        backend2 = ProcessBackend(tree, fig1_initial(tree), "raycast", 3)
        backend2.__del__()  # finalizer without explicit close: no raise
        assert backend2._closed

    def test_serial_backend_has_no_recovery_report(self):
        tree, P, G = make_fig1_tree()
        with ShardedRuntime(tree, fig1_initial(tree), shards=2,
                            backend="serial") as srt:
            srt.analyze(fig1_stream(tree, P, G, 1))
            assert srt.recovery is None

    def test_active_faults_rejected_on_in_process_backends(self):
        tree, _, _ = make_fig1_tree()
        plan = FaultPlan(seed=1, rate=0.5)
        for backend in ("serial", "thread"):
            with pytest.raises(MachineError, match="process backend"):
                make_backend(backend, tree, fig1_initial(tree), "raycast",
                             2, faults=plan)
        # an inactive plan is fine anywhere
        backend = make_backend("serial", tree, fig1_initial(tree),
                               "raycast", 2, faults=FaultPlan())
        assert backend.recovery is None
