"""Tests for the executable control-replication model."""

import numpy as np
import pytest

from repro import (ALGORITHMS, READ, READ_WRITE, IndexSpace, MachineError,
                   RegionRequirement, RegionTree, TaskStream, reduce)
from repro.distributed import ShardedRuntime
from repro.runtime.executor import SequentialExecutor

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import (fig1_initial, fig1_stream, make_fig1_tree,
                            random_programs)


class TestReplicaDeterminism:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_all_algorithms_are_replica_deterministic(self, algo):
        """DCR's contract: every shard's analysis reaches identical
        conclusions.  This is a strong nondeterminism detector for the
        algorithms themselves (set/dict iteration order, uid leakage...)."""
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=3,
                             algorithm=algo)
        for _ in range(3):
            srt.execute(fig1_stream(tree, P, G, 1))  # raises on divergence

    def test_divergence_detected(self):
        """A deliberately shard-dependent sharding of the *analysis* is
        impossible through the public API, so fake a divergence by
        mutating one replica's graph record and re-running the merge."""
        from repro.distributed.verify import (DeterminismError, ShardReport,
                                              analysis_fingerprint,
                                              check_reports)
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=2)
        srt.execute(fig1_stream(tree, P, G, 1))
        # tamper with replica 1's recorded dependences
        backend = srt.backend
        backend._others[0].graph._deps[3] = frozenset()
        reports = [
            ShardReport(s, analysis_fingerprint(backend._runtime_of(s), 0, 6),
                        0.0)
            for s in range(2)]
        with pytest.raises(MachineError, match="not deterministic") as info:
            check_reports(
                reports,
                lambda shard: backend.dump_dependences(shard, 0, 6), 0)
        exc = info.value
        assert isinstance(exc, DeterminismError)
        assert exc.mismatched_shards == (1,)
        assert any(d.task_id == 3 and d.shard_deps == ()
                   for d in exc.divergences)


class TestShardedExecution:
    @pytest.mark.parametrize("shards", [1, 2, 3, 5])
    def test_matches_reference(self, shards):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        reference = SequentialExecutor(tree, fig1_initial(tree))
        reference.run_stream(stream)
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=shards)
        srt.execute(stream)
        for field in ("up", "down"):
            assert np.array_equal(srt.gather_field(field),
                                  reference.field(field)), (shards, field)

    def test_apps_match_reference(self):
        from repro.apps import CircuitApp
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=12)
        stream = TaskStream()
        stream.extend_from(app.init_stream())
        for _ in range(2):
            stream.extend_from(app.iteration_stream())
        reference = SequentialExecutor(app.tree, app.initial)
        reference.run_stream(stream)
        srt = ShardedRuntime(app.tree, app.initial, shards=4)
        srt.execute(stream)
        for field in app.tree.field_space.names:
            np.testing.assert_allclose(srt.gather_field(field),
                                       reference.field(field))

    def test_single_shard_never_communicates(self):
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=1)
        srt.execute(fig1_stream(tree, P, G, 3))
        assert srt.log.messages == 0 and srt.log.bytes == 0

    def test_bad_sharding_functor_detected(self):
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=2,
                             sharding=lambda task: 7)
        with pytest.raises(MachineError):
            srt.execute(fig1_stream(tree, P, G, 1))

    def test_shard_count_validated(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(MachineError):
            ShardedRuntime(tree, fig1_initial(tree), shards=0)


class TestCommunication:
    def test_ghost_exchange_messages(self):
        """Figure 1's loop moves exactly the ghost data between shards:
        piece i's t1 reduces into neighbours' down fields, so piece
        owners exchange the shared nodes every iteration."""
        tree, P, G = make_fig1_tree()
        srt = ShardedRuntime(tree, fig1_initial(tree), shards=3)
        srt.execute(fig1_stream(tree, P, G, 1))
        srt.log.reset()
        srt.execute(fig1_stream(tree, P, G, 1))
        assert srt.log.messages > 0
        # every pair entry moves whole float64 elements
        assert srt.log.bytes % 8 == 0
        # communication is between distinct shards only
        assert all(src != dst for src, dst in srt.log.by_pair)

    def test_disjoint_work_is_message_free(self):
        """Tasks that each touch only their own shard's piece never
        communicate after the initial writes."""
        tree = RegionTree(12, {"x": np.float64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                  for i in range(3)], disjoint=True, complete=True)
        srt = ShardedRuntime(tree, {"x": np.zeros(12)}, shards=3)

        def bump(arr):
            arr += 1.0
        stream = TaskStream()
        for i in range(3):
            stream.append(f"w[{i}]",
                          [RegionRequirement(P[i], "x", READ_WRITE)],
                          bump, point=i)
        srt.execute(stream)
        srt.log.reset()
        for _ in range(3):
            srt.execute(stream)
        assert srt.log.messages == 0

    def test_weak_scaling_communication_constant_per_piece(self):
        """Circuit's cross-piece wires are a fixed fraction, so bytes per
        piece per iteration stay roughly flat as the machine grows."""
        from repro.apps import CircuitApp
        per_piece = {}
        for pieces in (4, 8):
            app = CircuitApp(pieces=pieces, nodes_per_piece=16,
                             wires_per_piece=24, pct_external=0.25, seed=3)
            srt = ShardedRuntime(app.tree, app.initial, shards=pieces,
                                 verify_replicas=False)
            srt.execute(app.init_stream())
            srt.execute(app.iteration_stream())
            srt.log.reset()
            srt.execute(app.iteration_stream())
            per_piece[pieces] = srt.log.bytes / pieces
        ratio = per_piece[8] / per_piece[4]
        assert 0.4 < ratio < 2.5


class TestShardedProperty:
    """Random programs through the executable DCR model: replicated
    analyses must agree and the gathered distributed state must equal
    sequential execution, for every shard count."""

    @settings(max_examples=25,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_programs(), st.integers(1, 4))
    def test_random_programs_sharded(self, program, shards):
        tree, initial, stream = program
        # give tasks points so the sharding functor spreads them
        pointed = TaskStream()
        for k, task in enumerate(stream):
            pointed.append(task.name, task.requirements, task.body,
                           point=k)
        reference = SequentialExecutor(tree, initial)
        reference.run_stream(pointed)
        srt = ShardedRuntime(tree, initial, shards=shards)
        srt.execute(pointed)
        assert np.array_equal(srt.gather_field("x"),
                              reference.field("x"))
