"""Tests for the mesh/graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Extent, GeometryError, IndexSpace, Rect
from repro.apps.meshes import (block_ranges, factor_grid, random_circuit,
                               star_halo, strip_mesh, tile_rects)


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(12, 3) == [(0, 4), (4, 8), (8, 12)]

    def test_uneven_split_covers(self):
        ranges = block_ranges(10, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c and b > a

    def test_invalid(self):
        with pytest.raises(GeometryError):
            block_ranges(2, 3)
        with pytest.raises(GeometryError):
            block_ranges(5, 0)

    @given(st.integers(1, 100), st.integers(1, 20))
    def test_property_cover_disjoint(self, n, pieces):
        if n < pieces:
            return
        ranges = block_ranges(n, pieces)
        assert len(ranges) == pieces
        covered = [x for a, b in ranges for x in range(a, b)]
        assert covered == list(range(n))


class TestFactorGrid:
    @pytest.mark.parametrize("pieces,want", [
        (1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (6, (3, 2)),
        (12, (4, 3)), (512, (32, 16)), (7, (7, 1))])
    def test_most_square(self, pieces, want):
        assert factor_grid(pieces) == want

    @given(st.integers(1, 600))
    def test_product(self, pieces):
        px, py = factor_grid(pieces)
        assert px * py == pieces and px >= py


class TestTileRects:
    def test_covers_disjointly(self):
        extent = Extent((8, 12))
        rects = tile_rects(extent, 2, 3)
        assert len(rects) == 6
        spaces = [IndexSpace.from_rect(r, extent) for r in rects]
        union = IndexSpace.union_all(spaces)
        assert union.size == extent.volume
        assert sum(s.size for s in spaces) == extent.volume

    def test_divisibility_enforced(self):
        with pytest.raises(GeometryError):
            tile_rects(Extent((8, 12)), 3, 3)

    def test_requires_2d(self):
        with pytest.raises(GeometryError):
            tile_rects(Extent((8,)), 2, 2)


class TestStarHalo:
    def test_interior_tile(self):
        extent = Extent((12, 12))
        tile = Rect((4, 4), (7, 7))
        halo = star_halo(tile, 2, extent)
        tile_space = IndexSpace.from_rect(tile, extent)
        assert tile_space.issubset(halo)
        # star shape: has axis extensions but no corners
        assert extent.linearize(np.array([2, 5]))[0] in halo   # above
        assert extent.linearize(np.array([5, 9]))[0] in halo   # right
        assert extent.linearize(np.array([2, 2]))[0] not in halo  # corner
        assert halo.size == 16 + 4 * (2 * 4)

    def test_boundary_clipped(self):
        extent = Extent((8, 8))
        halo = star_halo(Rect((0, 0), (3, 3)), 2, extent)
        assert halo.size == 16 + 2 * (2 * 4)


class TestRandomCircuit:
    def test_shape(self):
        g = random_circuit(4, 10, 15, pct_external=0.3, seed=1)
        assert g.num_nodes == 40
        assert len(g.piece_nodes) == 4
        for i, wires in enumerate(g.wires):
            assert wires.shape == (15, 2)
            lo, hi = g.piece_nodes[i]
            # first endpoints always internal
            assert ((wires[:, 0] >= lo) & (wires[:, 0] < hi)).all()
            # no self loops
            assert (wires[:, 0] != wires[:, 1]).all()

    def test_ghosts_are_external(self):
        g = random_circuit(4, 10, 15, pct_external=0.5, seed=2)
        for i, ghost in enumerate(g.ghosts):
            lo, hi = g.piece_nodes[i]
            for n in ghost:
                assert n < lo or n >= hi

    def test_ghosts_only_neighbors(self):
        g = random_circuit(8, 10, 20, pct_external=0.5, seed=3)
        for i, ghost in enumerate(g.ghosts):
            for n in ghost:
                piece = n // 10
                assert piece in ((i - 1) % 8, (i + 1) % 8)

    def test_deterministic(self):
        a = random_circuit(3, 8, 10, seed=7)
        b = random_circuit(3, 8, 10, seed=7)
        for wa, wb in zip(a.wires, b.wires):
            assert np.array_equal(wa, wb)

    def test_single_piece_no_ghosts(self):
        g = random_circuit(1, 8, 10, seed=0)
        assert g.ghosts[0].is_empty

    def test_invalid(self):
        with pytest.raises(GeometryError):
            random_circuit(0, 8, 10)
        with pytest.raises(GeometryError):
            random_circuit(2, 1, 10)


class TestStripMesh:
    def test_owned_partition(self):
        m = strip_mesh(3, 4, 2)
        assert m.point_extent.shape == (13, 3)
        union = IndexSpace.union_all(m.owned)
        assert union.size == 13 * 3
        assert sum(s.size for s in m.owned) == 13 * 3  # disjoint

    def test_zone_views_alias(self):
        m = strip_mesh(3, 4, 2)
        # adjacent views share the boundary column
        assert m.zone_view[0].overlaps(m.zone_view[1])
        assert not m.owned[0].overlaps(m.owned[1])

    def test_ghosts_are_next_pieces_first_column(self):
        m = strip_mesh(3, 4, 2)
        for i in range(2):
            assert m.ghosts[i].issubset(m.owned[i + 1])
            assert m.ghosts[i].size == 3  # one column of rows+1 points
        assert m.ghosts[2].is_empty

    def test_zone_view_is_owned_plus_ghost(self):
        m = strip_mesh(4, 3, 3)
        for i in range(4):
            assert m.zone_view[i] == (m.owned[i] | m.ghosts[i])

    def test_single_piece(self):
        m = strip_mesh(1, 4, 4)
        assert m.owned[0].size == m.point_extent.volume
        assert m.ghosts[0].is_empty
