"""End-to-end tests of the three benchmark applications."""

import numpy as np
import pytest

from repro import Runtime, TaskStream
from repro.analysis import compare_algorithms, profile_graph
from repro.apps import APPS, CircuitApp, PennantApp, StencilApp

ALGOS = ["painter", "tree_painter", "warnock", "raycast"]


def full_stream(app, iterations: int) -> TaskStream:
    stream = TaskStream()
    stream.extend_from(app.init_stream())
    for _ in range(iterations):
        stream.extend_from(app.iteration_stream())
    return stream


class TestAppRegistry:
    def test_registry(self):
        assert set(APPS) == {"stencil", "circuit", "pennant"}

    @pytest.mark.parametrize("name", list(APPS))
    def test_common_interface(self, name):
        app = APPS[name](pieces=2)
        assert app.pieces == 2
        assert app.units_per_piece > 0
        assert len(app.init_stream()) > 0
        assert len(app.iteration_stream()) > 0
        assert app.setup_objects() > 0


class TestStencil:
    def test_partitions(self):
        app = StencilApp(pieces=4, tile=4)
        assert app.P.disjoint and app.P.complete
        assert app.H.is_aliased or app.pieces == 1
        assert app.tree.root.space.size == 4 * 16

    def test_matches_direct_numpy(self):
        """The runtime-executed stencil equals a plain NumPy evaluation of
        the same computation on the full grid."""
        app = StencilApp(pieces=4, tile=4)
        iterations = 3
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, iterations))
        want = app.reference_result(iterations)
        np.testing.assert_allclose(rt.read_field("out"), want["out"])
        np.testing.assert_allclose(rt.read_field("in"), want["in"])

    def test_all_algorithms_agree(self):
        app = StencilApp(pieces=4, tile=4)
        compare_algorithms(app.tree, app.initial, full_stream(app, 2),
                           exact=False)

    def test_parallelism_profile(self):
        """Each phase's tasks are mutually independent."""
        app = StencilApp(pieces=4, tile=4)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 2))
        profile = profile_graph(rt.graph)
        assert profile.max_width >= 4

    def test_cross_piece_dependence(self):
        """A tile's stencil task must depend on its neighbours' previous
        increment (halo coherence through a different partition)."""
        app = StencilApp(pieces=4, tile=4)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 2))
        # second iteration stencil tasks: ids 12..15 (4 init, 8 iter1)
        stencil2 = [t for t in rt.tasks if t.name.startswith("stencil")][4:]
        increments1 = {t.task_id for t in rt.tasks
                       if t.name.startswith("increment")}
        for t in stencil2:
            deps = rt.graph.ancestors_of(t.task_id)
            assert deps & increments1

    def test_single_piece(self):
        app = StencilApp(pieces=1, tile=4)
        compare_algorithms(app.tree, app.initial, full_stream(app, 2),
                           exact=False)


class TestCircuit:
    def test_partitions(self):
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=12)
        assert app.ALL.disjoint and app.ALL.complete
        assert app.P.disjoint and not app.P.complete   # nodes only
        assert app.W.disjoint and not app.W.complete   # wires only
        assert not app.G.complete
        # nodes and wires are distinct elements of one collection
        assert app.P[0].space.isdisjoint(app.W[0].space)

    def test_current_field_carries_dataflow(self):
        """The wire current field must induce the currents→distribute
        dependence (it used to live in app scratch, invisible to the
        analysis — a bug the parallel executor exposed)."""
        app = CircuitApp(pieces=3, nodes_per_piece=8, wires_per_piece=12)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 1))
        currents = {t.point: t.task_id for t in rt.tasks
                    if t.name.startswith("currents")}
        for t in rt.tasks:
            if t.name.startswith("distribute"):
                assert currents[t.point] in rt.graph.dependences_of(
                    t.task_id)

    def test_all_algorithms_agree(self):
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=12)
        compare_algorithms(app.tree, app.initial, full_stream(app, 3),
                           exact=False)

    def test_charge_conservation(self):
        """Wire currents move charge between nodes; voltages change but
        the physics stays deterministic across runs."""
        app = CircuitApp(pieces=3, nodes_per_piece=8, wires_per_piece=10,
                         seed=5)
        rt1 = Runtime(app.tree, app.initial, algorithm="raycast")
        rt1.replay(full_stream(app, 4))
        v1 = rt1.read_field("voltage")
        rt2 = Runtime(app.tree, app.initial, algorithm="warnock")
        rt2.replay(full_stream(app, 4))
        np.testing.assert_allclose(v1, rt2.read_field("voltage"))
        assert not np.allclose(v1, 0.0)

    def test_ghost_reductions_cross_pieces(self):
        """External wires must actually move charge across pieces: the
        update phase of piece i depends on neighbours' distribute phase."""
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=16,
                         pct_external=0.5, seed=1)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 1))
        updates = [t for t in rt.tasks if t.name.startswith("update")]
        distributes = {t.task_id: t.point for t in rt.tasks
                       if t.name.startswith("distribute")}
        crossing = 0
        for t in updates:
            for dep in rt.graph.ancestors_of(t.task_id):
                if dep in distributes and distributes[dep] != t.point:
                    crossing += 1
        assert crossing > 0

    def test_single_piece(self):
        app = CircuitApp(pieces=1, nodes_per_piece=8, wires_per_piece=12)
        compare_algorithms(app.tree, app.initial, full_stream(app, 2),
                           exact=False)


class TestPennant:
    def test_partitions(self):
        app = PennantApp(pieces=4, zones_x=3, zones_y=3)
        assert app.P.disjoint and app.P.complete
        assert app.Z.is_aliased and app.Z.complete

    def test_all_algorithms_agree(self):
        app = PennantApp(pieces=3, zones_x=3, zones_y=3)
        compare_algorithms(app.tree, app.initial, full_stream(app, 3),
                           exact=False)

    def test_multiple_reduction_operators(self):
        """Pennant uses distinct reduction operators (sum and min) — the
        property the paper calls out explicitly."""
        app = PennantApp(pieces=2, zones_x=3, zones_y=3)
        ops = set()
        for task in app.iteration_stream():
            for req in task.requirements:
                if req.privilege.is_reduce:
                    ops.add(req.privilege.redop.name)
        assert ops == {"sum", "min"}

    def test_dt_decreases_monotonically(self):
        app = PennantApp(pieces=3, zones_x=3, zones_y=3)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 1))
        dt1 = rt.read_field("dt").copy()
        rt.replay(app.iteration_stream())
        dt2 = rt.read_field("dt")
        assert (dt2 <= dt1 + 1e-12).all()
        assert np.isfinite(dt2).all()

    def test_global_dt_task_depends_on_all_pieces(self):
        app = PennantApp(pieces=4, zones_x=3, zones_y=3)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(full_stream(app, 1))
        hydro = [t for t in rt.tasks if t.name == "hydro_dt"][0]
        dt_tasks = {t.task_id for t in rt.tasks if t.name.startswith("dt[")}
        assert dt_tasks <= rt.graph.ancestors_of(hydro.task_id)

    def test_single_piece(self):
        app = PennantApp(pieces=1, zones_x=3, zones_y=3)
        compare_algorithms(app.tree, app.initial, full_stream(app, 2),
                           exact=False)
