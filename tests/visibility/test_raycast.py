"""Structural tests for ray casting (section 7, Figure 11)."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, RayCastAlgorithm,
                   RegionRequirement, RegionTree, Runtime, reduce)
from repro.visibility.eqset import BucketStore

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


def get_algo(rt, field="up") -> RayCastAlgorithm:
    algo = rt.algorithm_for(field)
    assert isinstance(algo, RayCastAlgorithm)
    return algo


class TestDominatingWrites:
    def test_write_coalesces_ghost_refinements(self):
        """Section 7: the first task of each loop writes P[i].up, which
        discards the ghost-induced refinements under P[i] — equivalence
        sets coalesce back to the P pieces."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, iterations=1))
        algo = get_algo(rt)
        after_one = algo.num_equivalence_sets()

        # the t2 phase reduced through G.up, refining P pieces; the next
        # t1 phase writes P[i].up and coalesces them back
        def t1_body(pup, gdown):
            pup += 1
            gdown += 2
        for i in range(3):
            rt.launch(f"t1[{i}]",
                      [RegionRequirement(P[i], "up", READ_WRITE),
                       RegionRequirement(G[i], "down", reduce("sum"))],
                      t1_body)
        # after the write phase, up has exactly the 3 P-piece sets
        assert algo.num_equivalence_sets() == 3
        assert algo.num_equivalence_sets() <= after_one
        algo.check_invariants()

    def test_write_history_is_single_entry(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")

        def w(arr):
            arr[:] = 5
        rt.launch("w", [RegionRequirement(P[1], "up", READ_WRITE)], w)
        algo = get_algo(rt)
        covering = [s for s in algo.store.all_sets()
                    if s.space.overlaps(P[1].space)]
        assert len(covering) == 1
        assert len(covering[0].history) == 1
        assert covering[0].history[0].task_id == 0

    def test_steady_state_set_count_bounded(self):
        """Ray casting's set count stabilizes across iterations instead of
        growing (contrast with Warnock's monotone refinement)."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        algo = get_algo(rt)
        counts = []
        for _ in range(4):
            rt.replay(fig1_stream(tree, P, G, iterations=1))
            counts.append(algo.num_equivalence_sets())
        assert len(set(counts)) == 1  # steady state from iteration 1 on
        algo.check_invariants()

    def test_raycast_fewer_sets_than_warnock(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=3)
        counts = {}
        for algo_name in ("warnock", "raycast"):
            rt = Runtime(tree, fig1_initial(tree), algorithm=algo_name)
            rt.replay(stream)
            counts[algo_name] = rt.algorithm_for(
                "up").num_equivalence_sets()
        assert counts["raycast"] <= counts["warnock"]


class TestBucketSelection:
    def test_uses_disjoint_complete_partition(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        algo = get_algo(rt)
        # P is the disjoint+complete partition of the tree
        assert algo.bucket_partition is P

    def test_partition_created_after_runtime_adopted_lazily(self):
        tree = RegionTree(16, {"x": np.int64})
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm="raycast")
        algo = rt.algorithm_for("x")
        assert algo.bucket_partition is None
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4) for i in range(4)],
            disjoint=True, complete=True)

        def w(arr):
            arr[:] = 1
        rt.launch("w", [RegionRequirement(P[0], "x", READ_WRITE)], w)
        assert algo.bucket_partition is P

    def test_kd_fallback_when_no_disjoint_complete(self):
        """Section 7.1: with no disjoint-and-complete partition the runtime
        builds a K-d tree instead."""
        tree = RegionTree(16, {"x": np.int64})
        part = tree.root.create_partition(
            "O", [IndexSpace.from_range(0, 10), IndexSpace.from_range(6, 16)])
        rt = Runtime(tree, {"x": np.arange(16, dtype=np.int64)},
                     algorithm="raycast")
        algo = rt.algorithm_for("x")
        assert algo.bucket_partition is None
        store = algo.store
        assert isinstance(store, BucketStore) and store._kd is not None

        def w(arr):
            arr[:] = 3
        rt.launch("a", [RegionRequirement(part[0], "x", READ_WRITE)], w)
        rt.launch("b", [RegionRequirement(part[1], "x", READ_WRITE)], w)
        out = rt.read_field("x")
        assert list(out) == [3] * 16
        algo.check_invariants()

    def test_rebucket_to_new_partition(self):
        tree = RegionTree(16, {"x": np.int64})
        P1 = tree.root.create_partition(
            "P1", [IndexSpace.from_range(0, 8), IndexSpace.from_range(8, 16)],
            disjoint=True, complete=True)
        rt = Runtime(tree, {"x": np.arange(16, dtype=np.int64)},
                     algorithm="raycast")
        algo = rt.algorithm_for("x")
        assert algo.bucket_partition is P1

        def w(arr):
            arr[:] = 1
        rt.launch("w", [RegionRequirement(P1[0], "x", READ_WRITE)], w)

        P2 = tree.root.create_partition(
            "P2", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                   for i in range(4)], disjoint=True, complete=True)
        algo.rebucket(P2)
        assert algo.bucket_partition is P2
        algo.check_invariants()

        rt.launch("w2", [RegionRequirement(P2[3], "x", READ_WRITE)], w)
        expected = [1] * 8 + list(range(8, 12)) + [1] * 4
        assert list(rt.read_field("x")) == expected

    def test_rebucket_to_kd(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, iterations=1))
        algo = get_algo(rt)
        before = rt.read_field("up")
        algo.rebucket(None)
        algo.check_invariants()
        assert np.array_equal(rt.read_field("up"), before)
