"""Columnar histories: the vectorized scan is observationally invisible.

The tentpole property: for any privilege mix (reads, writes, reductions
with distinct operators, collapsed summaries), any query space, and any
pre-collected dependence set, the columnar sweep and the object walk
produce the same dependences, the same meter totals, and the same
provenance edge/prune records.  Plus the scan-path regressions the
refactor's audit surfaced:

* the oracle-pruned scan must feed its post-coverage-mask survivors
  through ``batch_overlaps`` instead of scalar ``overlaps`` calls;
* entries already collected in ``deps`` at scan start must not reach the
  batched kernel at all.
"""

from contextlib import nullcontext

import numpy as np
import pytest
from hypothesis import given, strategies as st

import repro.visibility.history as hist_mod
from repro.geometry.index_space import IndexSpace
from repro.obs import provenance as prov
from repro.privileges import READ, READ_WRITE, reduce
from repro.runtime.order import OrderMaintainer, PrecedenceOracle
from repro.visibility.history import (ColumnarHistory, HistoryEntry,
                                      PrivilegeColumns, RegionValues,
                                      columnar_disabled, columnar_enabled,
                                      interference_mask, scan_dependences,
                                      set_columnar_enabled)
from repro.visibility.meter import CostMeter

from tests.conftest import index_spaces

PRIVILEGES = [READ, READ_WRITE, reduce("sum"), reduce("max")]


def make_entry(privilege, indices, task_id, collapsed=frozenset()):
    domain = IndexSpace.from_indices(indices)
    if privilege.is_read:
        values = None
    else:
        values = RegionValues(domain,
                              np.arange(domain.size, dtype=np.float64))
    return HistoryEntry(privilege, domain, values, task_id, collapsed)


def run_scan(entries, privilege, space, columnar, seed_deps=(),
             oracle=None):
    """One scan under a fresh meter and ledger; returns every observable."""
    history = ColumnarHistory(entries)
    deps = set(seed_deps)
    meter = CostMeter()
    led = prov.ProvenanceLedger(enabled=True)
    prev = prov.set_ledger(led)
    try:
        led.begin_access(10**6, "x", "test", privilege, space)
        with (nullcontext() if columnar else columnar_disabled()):
            scan_dependences(privilege, space, history, deps, meter,
                             oracle=oracle)
        led.end_access()
    finally:
        prov.set_ledger(prev)
    (record,) = led.snapshot()
    return deps, meter.snapshot(), record.edges, record.pruned


# ----------------------------------------------------------------------
# the equivalence property (satellite: hypothesis coverage)
# ----------------------------------------------------------------------
entry_specs = st.lists(
    st.tuples(st.integers(0, len(PRIVILEGES) - 1),
              st.lists(st.integers(0, 40), min_size=0, max_size=10),
              st.booleans(),   # collapsed summary?
              st.booleans()),  # reuse the previous task id?
    min_size=0, max_size=24)


def build_history(specs):
    entries = []
    for i, (pk, indices, collapsed, dup) in enumerate(specs):
        task_id = max(0, i - 1) if dup else i
        if collapsed and indices:
            entries.append(make_entry(
                READ_WRITE, indices, task_id,
                frozenset({1000 + 2 * i, 1001 + 2 * i})))
        else:
            entries.append(make_entry(PRIVILEGES[pk], indices, task_id))
    return entries


class TestColumnarEquivalence:
    @given(specs=entry_specs,
           pk=st.integers(0, len(PRIVILEGES) - 1),
           space=index_spaces(max_index=48, min_size=0, max_size=16),
           seed=st.lists(st.integers(0, 23), max_size=4))
    def test_scan_matches_object_walk(self, specs, pk, space, seed):
        entries = build_history(specs)
        privilege = PRIVILEGES[pk]
        on = run_scan(entries, privilege, space, columnar=True,
                      seed_deps=seed)
        off = run_scan(entries, privilege, space, columnar=False,
                       seed_deps=seed)
        assert on == off

    @given(specs=entry_specs,
           pk=st.integers(0, len(PRIVILEGES) - 1),
           space=index_spaces(max_index=48, min_size=0, max_size=16),
           seed=st.lists(st.integers(0, 23), max_size=4))
    def test_pruned_scan_matches_object_walk(self, specs, pk, space, seed):
        """The oracle path too (unlabelled oracle: coverage never hits,
        so its deps must equal the unpruned scan's order-insensitively)."""
        entries = build_history(specs)
        privilege = PRIVILEGES[pk]
        on = run_scan(entries, privilege, space, columnar=True,
                      seed_deps=seed,
                      oracle=PrecedenceOracle(OrderMaintainer()))
        off = run_scan(entries, privilege, space, columnar=False,
                       seed_deps=seed,
                       oracle=PrecedenceOracle(OrderMaintainer()))
        assert on == off

    def test_empty_history(self):
        space = IndexSpace.from_indices([1, 2, 3])
        for columnar in (True, False):
            deps, counts, edges, pruned = run_scan(
                [], READ_WRITE, space, columnar)
            assert deps == set()
            assert counts == {}
            assert edges == [] and pruned == []

    def test_single_entry(self):
        space = IndexSpace.from_indices([1, 2, 3])
        entry = make_entry(READ_WRITE, [2, 5], 7)
        for columnar in (True, False):
            deps, counts, edges, pruned = run_scan(
                [entry], READ, space, columnar)
            assert deps == {7}
            assert counts == {"entries_scanned": 1,
                              "intersection_tests": 1}
            assert len(edges) == 1 and pruned == []

    def test_single_disjoint_entry(self):
        space = IndexSpace.from_indices([10, 11])
        entry = make_entry(READ_WRITE, [2, 5], 7)
        for columnar in (True, False):
            deps, counts, edges, pruned = run_scan(
                [entry], READ, space, columnar)
            assert deps == set()
            assert counts == {"entries_scanned": 1,
                              "intersection_tests": 1}
            assert edges == [] and len(pruned) == 1

    def test_empty_query_space(self):
        space = IndexSpace.from_indices([])
        entries = [make_entry(READ_WRITE, [1, 2], i) for i in range(3)]
        on = run_scan(entries, READ, space, columnar=True)
        off = run_scan(entries, READ, space, columnar=False)
        assert on == off
        assert on[0] == set()


# ----------------------------------------------------------------------
# the container itself
# ----------------------------------------------------------------------
class TestColumnarHistory:
    def test_list_protocol_and_columns(self):
        entries = [make_entry(READ, [1], 0),
                   make_entry(reduce("sum"), [2, 3], 1),
                   make_entry(READ_WRITE, [4], 2,
                              frozenset({10, 11}))]
        hist = ColumnarHistory(entries)
        assert len(hist) == 3 and bool(hist)
        assert list(hist) == entries
        assert hist[1] is entries[1]
        assert hist[-1] is entries[2]
        assert hist == entries  # list equality
        assert hist.kinds.tolist() == [hist_mod.KIND_READ,
                                       hist_mod.KIND_REDUCE,
                                       hist_mod.KIND_WRITE]
        assert hist.task_ids.tolist() == [0, 1, 2]
        assert hist.collapsed_flags.tolist() == [False, False, True]
        assert hist.los.tolist() == [1, 2, 4]
        assert hist.his.tolist() == [1, 3, 4]

    def test_append_grows_and_reset_keeps_capacity(self):
        hist = ColumnarHistory()
        for i in range(50):
            hist.append(make_entry(READ_WRITE, [i], i))
        assert len(hist) == 50
        assert hist.task_ids.tolist() == list(range(50))
        hist.reset([make_entry(READ, [3], 99)])
        assert len(hist) == 1
        assert hist.task_ids.tolist() == [99]
        assert hist.kinds.tolist() == [hist_mod.KIND_READ]

    def test_pickle_roundtrip_rebuilds_columns(self):
        import pickle

        entries = [make_entry(reduce("sum"), [1, 2], 0),
                   make_entry(READ, [3], 1)]
        hist = ColumnarHistory(entries)
        clone = pickle.loads(pickle.dumps(hist))
        assert isinstance(clone, ColumnarHistory)
        assert len(clone) == 2
        assert clone.kinds.tolist() == hist.kinds.tolist()
        assert clone.task_ids.tolist() == hist.task_ids.tolist()
        # the rebuilt redop column must still match the live operator
        mask = interference_mask(reduce("sum"), clone.kinds, clone.redops)
        assert mask.tolist() == [False, True]

    def test_interference_mask_matches_scalar(self):
        hist = ColumnarHistory([make_entry(READ, [1], 0),
                                make_entry(READ_WRITE, [1], 1),
                                make_entry(reduce("sum"), [1], 2),
                                make_entry(reduce("max"), [1], 3)])
        for privilege in PRIVILEGES:
            mask = interference_mask(privilege, hist.kinds, hist.redops)
            expected = [privilege.interferes(e.privilege) for e in hist]
            assert mask.tolist() == expected, privilege

    def test_flag_plumbing(self):
        assert columnar_enabled()  # default on
        with columnar_disabled():
            assert not columnar_enabled()
        assert columnar_enabled()
        set_columnar_enabled(False)
        try:
            assert not columnar_enabled()
        finally:
            set_columnar_enabled(None)
        assert columnar_enabled()


# ----------------------------------------------------------------------
# regression: the oracle-pruned scan batches its survivors (satellite 1)
# ----------------------------------------------------------------------
def _spy_kernel(monkeypatch):
    calls = []
    real = hist_mod.batch_overlaps

    def spy(query, candidates, **kw):
        calls.append(len(candidates))
        return real(query, candidates, **kw)

    monkeypatch.setattr(hist_mod, "batch_overlaps", spy)
    return calls


def _spy_scalar(monkeypatch):
    calls = []
    real = IndexSpace.overlaps

    def spy(self, other):
        calls.append(1)
        return real(self, other)

    monkeypatch.setattr(IndexSpace, "overlaps", spy)
    return calls


class TestPrunedScanBatching:
    @pytest.mark.parametrize("columnar", (True, False))
    def test_survivors_go_through_the_kernel(self, monkeypatch, columnar):
        """With the oracle on, every surviving candidate's overlap answer
        must come from one ``batch_overlaps`` call — zero scalar
        ``overlaps`` calls (pre-fix: zero kernel calls, one scalar call
        per survivor)."""
        entries = [make_entry(READ_WRITE, [i, i + 1], i) for i in range(6)]
        history = ColumnarHistory(entries) if columnar else entries
        space = IndexSpace.from_indices([2, 3, 4])
        oracle = PrecedenceOracle(OrderMaintainer())  # nothing covered
        deps: set = set()
        kernel = _spy_kernel(monkeypatch)
        scalar = _spy_scalar(monkeypatch)
        ctx = nullcontext() if columnar else columnar_disabled()
        with ctx:
            scan_dependences(READ, space, history, deps, CostMeter(),
                             oracle=oracle)
        assert kernel == [6], "survivors must be batched in one kernel call"
        assert scalar == [], "no per-candidate scalar overlap tests"
        assert deps == {1, 2, 3, 4}

    def test_oracle_stats_unchanged_by_precompute(self):
        """The candidate precompute must not inflate the oracle's
        hit/miss statistics — only the loop's real coverage tests count."""
        entries = [make_entry(READ_WRITE, [i], i) for i in range(4)]
        space = IndexSpace.from_indices([0, 1, 2, 3])

        def run(history):
            oracle = PrecedenceOracle(OrderMaintainer())
            deps: set = set()
            scan_dependences(READ, space, history, deps, CostMeter(),
                             oracle=oracle)
            return oracle.hits + oracle.misses

        # the loop coverage-tests each of the 4 interfering entries once;
        # the precompute must add zero
        assert run(ColumnarHistory(entries)) == 4
        with columnar_disabled():
            assert run(list(entries)) == 4


# ----------------------------------------------------------------------
# regression: pre-collected deps never reach the kernel (satellite 2)
# ----------------------------------------------------------------------
class TestDepsAtStartMasking:
    @pytest.mark.parametrize("columnar", (True, False))
    def test_kernel_sees_only_untested_entries(self, monkeypatch, columnar):
        """Entries whose task is already a dependence at scan start are
        skipped by the loop, so precomputing their verdicts is pure
        waste — the kernel input must exclude them (pre-fix: all six
        interfering entries were batched)."""
        entries = [make_entry(READ_WRITE, [i, i + 1], i) for i in range(6)]
        history = ColumnarHistory(entries) if columnar else entries
        space = IndexSpace.from_indices([0, 1, 2, 3, 4, 5, 6])
        deps = {0, 1, 2, 3}
        kernel = _spy_kernel(monkeypatch)
        meter = CostMeter()
        ctx = nullcontext() if columnar else columnar_disabled()
        with ctx:
            scan_dependences(READ, space, history, deps, meter)
        assert kernel == [2], "pre-collected deps must be masked out"
        assert deps == {0, 1, 2, 3, 4, 5}
        # meter counts replay the unmasked control flow bit-identically
        assert meter.snapshot() == {"entries_scanned": 6,
                                    "intersection_tests": 2}

    def test_collapsed_summaries_still_tested(self, monkeypatch):
        """A summary whose max id is already a dependence still carries
        other collapsed ids, so it must stay in the kernel input."""
        summary = make_entry(READ_WRITE, [1, 2], 5, frozenset({3, 4, 5}))
        other = make_entry(READ_WRITE, [2, 3], 7)
        third = make_entry(READ_WRITE, [3, 4], 8)
        space = IndexSpace.from_indices([1, 2, 3, 4])
        deps = {5}
        kernel = _spy_kernel(monkeypatch)
        scan_dependences(READ, space,
                         ColumnarHistory([summary, other, third]), deps,
                         CostMeter())
        assert kernel == [3]
        assert deps == {3, 4, 5, 7, 8}


# ----------------------------------------------------------------------
# eqset-side columns
# ----------------------------------------------------------------------
class TestEqsetColumns:
    def test_equivalence_set_history_is_columnar(self):
        from repro.visibility.eqset import EquivalenceSet

        s = EquivalenceSet(IndexSpace.from_indices([0, 1, 2]))
        assert isinstance(s.history, PrivilegeColumns)
        s.record(READ_WRITE, np.zeros(3), 1)
        s.record(reduce("sum"), np.ones(3), 2)
        assert s.history.task_ids.tolist() == [1, 2]
        inside, outside = s.split(IndexSpace.from_indices([0]))
        assert outside is not None
        assert inside.history.task_ids.tolist() == [1, 2]
        assert outside.history.kinds.tolist() == s.history.kinds.tolist()

    def test_loose_set_history_is_columnar(self):
        from repro.visibility.eqset import LooseEquivalenceSet

        space = IndexSpace.from_indices([0, 1, 2, 3])
        s = LooseEquivalenceSet(space)
        assert isinstance(s.history, ColumnarHistory)
        s.record(make_entry(READ_WRITE, [0, 1, 2, 3], 1))
        s.record(make_entry(reduce("sum"), [1, 2], 2))
        assert s.history.task_ids.tolist() == [1, 2]
        assert s.history.los.tolist() == [0, 1]
        remainder = s.minus(IndexSpace.from_indices([0, 1]))
        assert remainder is not None
        assert isinstance(remainder.history, ColumnarHistory)
        assert remainder.history.task_ids.tolist() == [1, 2]
