"""Tests for the cost meter."""

from repro import CostMeter


class TestCostMeter:
    def test_count_accumulates(self):
        m = CostMeter()
        m.count("e")
        m.count("e", 4)
        assert m.counters["e"] == 5
        assert m.snapshot() == {"e": 5}

    def test_task_brackets(self):
        m = CostMeter()
        m.count("warmup", 10)
        m.touch(("obj", 1))
        m.begin_task()
        m.count("e", 3)
        m.touch(("obj", 2))
        cost = m.end_task()
        assert cost.counters == {"e": 3}
        assert cost.touches == frozenset([("obj", 2)])
        assert cost.total_ops == 3
        # lifetime counters keep everything
        assert m.counters["warmup"] == 10
        assert ("obj", 1) in m.touches

    def test_empty_task(self):
        m = CostMeter()
        m.begin_task()
        cost = m.end_task()
        assert cost.counters == {} and cost.touches == frozenset()
        assert cost.total_ops == 0

    def test_repeated_touch_dedup(self):
        m = CostMeter()
        m.begin_task()
        m.touch("x")
        m.touch("x")
        assert m.end_task().touches == frozenset(["x"])

    def test_reset(self):
        m = CostMeter()
        m.count("e")
        m.touch("x")
        m.reset()
        assert not m.counters and not m.touches

    def test_repr(self):
        m = CostMeter()
        m.count("entries_scanned", 7)
        assert "entries_scanned=7" in repr(m)

    def test_runtime_meter_sharing(self):
        """All per-field algorithm instances share the runtime's meter."""
        import numpy as np
        from repro import Runtime
        from tests.conftest import fig1_initial, make_fig1_tree
        tree, _, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        assert rt.algorithm_for("up").meter is rt.meter
        assert rt.algorithm_for("down").meter is rt.meter
