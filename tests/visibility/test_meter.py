"""Tests for the cost meter."""

from repro import CostMeter


class TestCostMeter:
    def test_count_accumulates(self):
        m = CostMeter()
        m.count("e")
        m.count("e", 4)
        assert m.counters["e"] == 5
        assert m.snapshot() == {"e": 5}

    def test_task_brackets(self):
        m = CostMeter()
        m.count("warmup", 10)
        m.touch(("obj", 1))
        m.begin_task()
        m.count("e", 3)
        m.touch(("obj", 2))
        cost = m.end_task()
        assert cost.counters == {"e": 3}
        assert cost.touches == frozenset([("obj", 2)])
        assert cost.total_ops == 3
        # lifetime counters keep everything
        assert m.counters["warmup"] == 10
        assert ("obj", 1) in m.touches

    def test_empty_task(self):
        m = CostMeter()
        m.begin_task()
        cost = m.end_task()
        assert cost.counters == {} and cost.touches == frozenset()
        assert cost.total_ops == 0

    def test_repeated_touch_dedup(self):
        m = CostMeter()
        m.begin_task()
        m.touch("x")
        m.touch("x")
        assert m.end_task().touches == frozenset(["x"])

    def test_reset(self):
        m = CostMeter()
        m.count("e")
        m.touch("x")
        m.reset()
        assert not m.counters and not m.touches

    def test_repr(self):
        m = CostMeter()
        m.count("entries_scanned", 7)
        assert "entries_scanned=7" in repr(m)

    def test_runtime_meter_sharing(self):
        """All per-field algorithm instances share the runtime's meter."""
        import numpy as np
        from repro import Runtime
        from tests.conftest import fig1_initial, make_fig1_tree
        tree, _, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        assert rt.algorithm_for("up").meter is rt.meter
        assert rt.algorithm_for("down").meter is rt.meter


class TestThreadSafety:
    """Regression tests for the lock added to CostMeter/PhaseProfile:
    before it, concurrent mutation lost updates (dict read-modify-write
    races) — 8 hammering threads must land exact totals."""

    THREADS = 8
    ROUNDS = 2000

    def _hammer(self, work):
        import threading
        barrier = threading.Barrier(self.THREADS)

        def run():
            barrier.wait()
            for _ in range(self.ROUNDS):
                work()

        threads = [threading.Thread(target=run)
                   for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_cost_meter_count_is_atomic(self):
        m = CostMeter()
        self._hammer(lambda: m.count("e"))
        assert m.counters["e"] == self.THREADS * self.ROUNDS

    def test_phase_profile_stat_and_add_time(self):
        from repro.visibility.meter import PhaseProfile
        p = PhaseProfile()

        def work():
            p.add_time("analyze", 0.001)
            p.stat("analyze").bytes += 0  # stat() must not duplicate
            p.add_count("retries")

        self._hammer(work)
        stat = p.stat("analyze")
        total = self.THREADS * self.ROUNDS
        assert stat.calls == total
        assert stat.seconds == __import__("pytest").approx(0.001 * total)
        assert p.stat("retries").calls == total

    def test_phase_profile_concurrent_merge(self):
        from repro.visibility.meter import PhaseProfile
        donor = PhaseProfile()
        donor.add_time("ship", 1.0)
        donor.add_bytes("ship", 10)
        target = PhaseProfile()
        self._hammer(lambda: target.merge(donor))
        total = self.THREADS * self.ROUNDS
        assert target.stat("ship").calls == total
        assert target.stat("ship").bytes == 10 * total


class TestInjectableClock:
    def test_phase_times_with_fake_clock(self):
        from repro.distributed.faults import FakeClock
        from repro.visibility.meter import PhaseProfile
        clock = FakeClock(100.0)
        p = PhaseProfile(clock=clock)
        with p.phase("analyze"):
            clock.advance(2.5)
        with p.phase("analyze"):
            clock.advance(0.5)
        stat = p.stat("analyze")
        assert stat.calls == 2
        assert stat.seconds == 3.0

    def test_default_clock_is_monotonic(self):
        from repro.visibility.meter import PhaseProfile
        p = PhaseProfile()
        with p.phase("x"):
            pass
        assert p.stat("x").seconds >= 0.0

    def test_phase_emits_obs_span(self):
        from repro.distributed.faults import FakeClock
        from repro.obs import tracer as obs
        from repro.visibility.meter import PhaseProfile
        tracer = obs.Tracer(clock=FakeClock(0.0))
        previous = obs.set_tracer(tracer)
        try:
            with PhaseProfile(clock=FakeClock(0.0)).phase("verify"):
                pass
        finally:
            obs.set_tracer(previous)
        (span,) = tracer.snapshot().spans
        assert (span.name, span.category) == ("verify", "phase")


class TestRenderAndPickle:
    def test_render_human_bytes_and_total_footer(self):
        from repro.visibility.meter import PhaseProfile
        p = PhaseProfile()
        p.add_time("analyze", 1.25, calls=3)
        p.add_bytes("ship", 4096)
        p.add_time("ship", 0.75)
        lines = p.render().splitlines()
        assert lines[0].split() == ["phase", "calls", "seconds", "bytes"]
        ship = next(l for l in lines if l.startswith("ship"))
        assert "4.0KiB" in ship
        total = lines[-1]
        assert total.startswith("total")
        assert "4" in total and "2.000000" in total and "4.0KiB" in total

    def test_human_bytes_units(self):
        from repro.visibility.meter import _human_bytes
        assert _human_bytes(0) == "0B"
        assert _human_bytes(1023) == "1023B"
        assert _human_bytes(1536) == "1.5KiB"
        assert _human_bytes(5 * 1024 * 1024) == "5.0MiB"
        assert _human_bytes(3 * 1024 ** 3) == "3.0GiB"

    def test_cost_meter_pickle_round_trip(self):
        import pickle
        m = CostMeter()
        m.count("e", 5)
        m.touch("x")
        clone = pickle.loads(pickle.dumps(m))
        assert clone.counters == {"e": 5}
        assert "x" in clone.touches
        clone.count("e")  # lock was rebuilt
        assert clone.counters["e"] == 6

    def test_phase_profile_pickle_round_trip(self):
        import pickle
        from repro.visibility.meter import PhaseProfile
        p = PhaseProfile()
        p.add_time("analyze", 1.0)
        p.add_bytes("ship", 2048)
        clone = pickle.loads(pickle.dumps(p))
        assert clone.stat("analyze").seconds == 1.0
        assert clone.stat("ship").bytes == 2048
        clone.add_time("analyze", 1.0)  # lock and clock were rebuilt
        assert clone.stat("analyze").calls == 2
