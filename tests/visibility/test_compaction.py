"""Tests for bounded-history compaction.

Fields that are reduced or read forever without an occluding write
(Pennant's ``dt``) would grow per-set histories without bound; compaction
collapses a long history into one summary write holding the blended
values and the collapsed task ids.  Values must be unchanged; dependence
scans must still reach every collapsed task (directly, via the summary's
id set).
"""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, RegionRequirement,
                   RegionTree, Runtime, oracle_dependences, TaskStream,
                   reduce)
from repro.runtime.executor import SequentialExecutor
from repro.visibility import eqset as eqset_mod


def reduce_forever_stream(tree, P, iterations):
    stream = TaskStream()
    for it in range(iterations):
        for i in range(len(P)):
            def body(arr, it=it):
                arr += it + 1
            stream.append(f"r{it}[{i}]",
                          [RegionRequirement(P[i], "x", reduce("sum"))],
                          body, point=i)
        stream.append(f"obs{it}",
                      [RegionRequirement(tree.root, "x", READ)], None)
    return stream


def make_tree():
    tree = RegionTree(16, {"x": np.int64})
    P = tree.root.create_partition(
        "P", [IndexSpace.from_range(i * 4, (i + 1) * 4) for i in range(4)],
        disjoint=True, complete=True)
    return tree, P


@pytest.mark.parametrize("algo", ["warnock", "raycast"])
class TestCompaction:
    def test_history_stays_bounded(self, algo):
        tree, P = make_tree()
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm=algo)
        iterations = 3 * eqset_mod.HISTORY_COMPACTION_LIMIT
        rt.replay(reduce_forever_stream(tree, P, iterations))
        for s in rt.algorithm_for("x").store.all_sets():
            assert len(s.history) <= eqset_mod.HISTORY_COMPACTION_LIMIT + 1

    def test_values_unchanged_across_compaction(self, algo):
        tree, P = make_tree()
        iterations = 2 * eqset_mod.HISTORY_COMPACTION_LIMIT
        stream = reduce_forever_stream(tree, P, iterations)
        reference = SequentialExecutor(tree,
                                       {"x": np.zeros(16, dtype=np.int64)})
        reference.run_stream(stream)
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm=algo)
        rt.replay(stream)
        assert np.array_equal(rt.read_field("x"), reference.field("x"))

    def test_dependences_stay_sound(self, algo):
        tree, P = make_tree()
        iterations = eqset_mod.HISTORY_COMPACTION_LIMIT + 8
        stream = reduce_forever_stream(tree, P, iterations)
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm=algo)
        rt.replay(stream)
        oracle = oracle_dependences(list(stream))
        assert rt.graph.missing_pairs(oracle) == []

    def test_summary_carries_collapsed_ids(self, algo):
        """A reader arriving after compaction must still depend on every
        collapsed reduction, not just on a representative."""
        tree, P = make_tree()
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm=algo)
        limit = eqset_mod.HISTORY_COMPACTION_LIMIT
        n = limit + 4

        def body(arr):
            arr += 1
        for k in range(n):
            rt.launch(f"r{k}", [RegionRequirement(P[0], "x",
                                                  reduce("sum"))], body,
                      point=0)
        reader = rt.launch("obs", [RegionRequirement(P[0], "x", READ)],
                           None)
        deps = rt.graph.dependences_of(reader.task_id)
        assert deps == set(range(n))


class TestCompactionUnits:
    def test_eqset_compact(self):
        from repro.visibility.eqset import EquivalenceSet
        s = EquivalenceSet(IndexSpace.from_range(0, 4))
        s.record(READ_WRITE, np.arange(4.0), 0)
        for k in range(1, 6):
            s.record(reduce("sum"), np.full(4, 1.0), k,
                     compaction_limit=None)
        s.compact()
        assert len(s.history) == 1
        summary = s.history[0]
        assert summary.privilege.is_write
        assert summary.collapsed_ids == frozenset(range(6))
        assert summary.task_id == 5
        assert np.array_equal(summary.values, np.arange(4.0) + 5.0)

    def test_loose_set_compact(self):
        from repro.visibility.eqset import LooseEquivalenceSet
        from repro.visibility.history import HistoryEntry, RegionValues
        space = IndexSpace.from_range(0, 4)
        s = LooseEquivalenceSet(space)
        s.record(HistoryEntry(READ_WRITE, space,
                              RegionValues(space, np.zeros(4)), 0))
        sub = IndexSpace.from_range(1, 3)
        for k in range(1, 5):
            s.record(HistoryEntry(reduce("sum"), sub,
                                  RegionValues(sub, np.full(2, 2.0)), k),
                     compaction_limit=None)
        s.compact()
        assert len(s.history) == 1
        summary = s.history[0]
        assert summary.domain == space
        assert summary.collapsed_ids == frozenset(range(5))
        assert list(summary.values.values) == [0.0, 8.0, 8.0, 0.0]

    def test_disabled_by_none(self):
        from repro.visibility.eqset import EquivalenceSet
        s = EquivalenceSet(IndexSpace.from_range(0, 2))
        s.record(READ_WRITE, np.zeros(2), 0)
        for k in range(1, 200):
            s.record(reduce("sum"), np.ones(2), k, compaction_limit=None)
        assert len(s.history) == 200
