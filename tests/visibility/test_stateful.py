"""Stateful property test: the runtime tracks the reference *continuously*.

A hypothesis rule-based state machine drives four runtimes (one per
algorithm), two :class:`ShardedRuntime` instances (2 and 4 shards, with
replica verification on), and the sequential reference executor through
an arbitrary interleaving of task launches, partition creations, and
observations; after *every* step the observable state must agree.  This
catches bugs that only appear under unusual interleavings (e.g. reading
between a reduction and the next write, or partitioning mid-stream) —
and, for the sharded runtimes, any step-granular divergence between the
distributed owner-map execution and sequential semantics.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro import (ALGORITHMS, READ, READ_WRITE, IndexSpace,
                   RegionRequirement, RegionTree, Runtime, TaskStream, reduce)
from repro.distributed import ShardedRuntime
from repro.runtime.executor import SequentialExecutor
from repro.runtime.task import Task

N = 24
SHARD_COUNTS = (2, 4)


class RuntimeVsReference(RuleBasedStateMachine):
    regions = Bundle("regions")

    @initialize(target=regions)
    def setup(self):
        self.tree = RegionTree(N, {"x": np.int64, "y": np.int64})
        initial = {"x": np.arange(N, dtype=np.int64),
                   "y": np.arange(N, dtype=np.int64) * 3}
        self.reference = SequentialExecutor(self.tree, initial)
        self.runtimes = {name: Runtime(self.tree, initial, algorithm=name)
                         for name in ALGORITHMS}
        # a sixth runtime with the precedence oracle on: its pruned graph
        # must keep the same transitive closure and values as raycast's
        self.runtimes["raycast+oracle"] = Runtime(
            self.tree, initial, algorithm="raycast",
            precedence_oracle=True)
        self.sharded = {shards: ShardedRuntime(self.tree, initial,
                                               shards=shards)
                        for shards in SHARD_COUNTS}
        self.counter = 0
        self.part_counter = 0
        return self.tree.root

    def _run_sharded(self, name, reqs, body):
        """Feed one task through every sharded runtime; the point spreads
        consecutive tasks across shards via the canonical functor."""
        for srt in self.sharded.values():
            stream = TaskStream()
            stream.append(name, reqs, body, point=self.counter)
            srt.execute(stream)  # verifies replica agreement per step

    # ------------------------------------------------------------------
    @rule(target=regions, region=regions,
          data=st.data())
    def create_partition(self, region, data):
        if region.space.size < 2 or len(region.partitions) >= 2:
            return region
        self.part_counter += 1
        k = data.draw(st.integers(1, 3))
        subs = []
        for _ in range(k):
            size = data.draw(st.integers(1, region.space.size))
            start = data.draw(st.integers(0, region.space.size - size))
            subs.append(IndexSpace(region.space.indices[start:start + size],
                                   trusted=True))
        part = region.create_partition(f"p{self.part_counter}", subs)
        return part.subregions[data.draw(st.integers(0, k - 1))]

    def _privilege_and_body(self, kind, seed):
        if kind == "read":
            return READ, None
        if kind == "write":
            def write_body(arr, seed=seed):
                arr[:] = arr * 2 + seed
            return READ_WRITE, write_body
        if kind == "sum":
            def sum_body(arr, seed=seed):
                arr += seed
            return reduce("sum"), sum_body

        def min_body(arr, seed=seed):
            np.minimum(arr, seed, out=arr)
        return reduce("min"), min_body

    @rule(region=regions,
          field=st.sampled_from(["x", "y"]),
          kind=st.sampled_from(["read", "write", "sum", "min"]))
    def launch(self, region, field, kind):
        self.counter += 1
        seed = self.counter
        privilege, body = self._privilege_and_body(kind, seed)
        reqs = [RegionRequirement(region, field, privilege)]
        self.reference.run(Task(self.counter, f"t{seed}", tuple(reqs), body))
        for rt in self.runtimes.values():
            rt.launch(f"t{seed}", reqs, body)
        self._run_sharded(f"t{seed}", reqs, body)

    @rule(region=regions,
          kind_x=st.sampled_from(["read", "write", "sum", "min"]),
          kind_y=st.sampled_from(["read", "write", "sum", "min"]))
    def launch_two_fields(self, region, kind_x, kind_y):
        """A task touching both fields of the same region at once."""
        self.counter += 1
        seed = self.counter
        px, bx = self._privilege_and_body(kind_x, seed)
        py, by = self._privilege_and_body(kind_y, seed + 1)

        def body(arr_x, arr_y):
            if bx is not None:
                bx(arr_x)
            if by is not None:
                by(arr_y)
        reqs = [RegionRequirement(region, "x", px),
                RegionRequirement(region, "y", py)]
        self.reference.run(Task(self.counter, f"m{seed}", tuple(reqs), body))
        for rt in self.runtimes.values():
            rt.launch(f"m{seed}", reqs, body)
        self._run_sharded(f"m{seed}", reqs, body)

    @rule(data=st.data(),
          field=st.sampled_from(["x", "y"]),
          kind=st.sampled_from(["read", "sum"]))
    def launch_multibucket(self, data, field, kind):
        """A task over a wide window straddling several pieces: drives the
        bucket store's multi-bucket carving (``_localize``) path."""
        if len(self.tree.root.partitions) >= 6:
            return
        size = data.draw(st.integers(N // 2, N))
        start = data.draw(st.integers(0, N - size))
        self.part_counter += 1
        part = self.tree.root.create_partition(
            f"w{self.part_counter}",
            [IndexSpace.from_range(start, start + size)])
        region = part.subregions[0]
        self.counter += 1
        seed = self.counter
        privilege, body = self._privilege_and_body(kind, seed)
        reqs = [RegionRequirement(region, field, privilege)]
        self.reference.run(Task(self.counter, f"w{seed}", tuple(reqs), body))
        for rt in self.runtimes.values():
            rt.launch(f"w{seed}", reqs, body)
        self._run_sharded(f"w{seed}", reqs, body)

    # ------------------------------------------------------------------
    @invariant()
    def all_agree_with_reference(self):
        if not hasattr(self, "reference"):
            return
        for field in ("x", "y"):
            want = self.reference.field(field)
            for name, rt in self.runtimes.items():
                got = rt.read_field(field)
                assert np.array_equal(got, want), (name, field, got, want)
            for shards, srt in self.sharded.items():
                got = srt.gather_field(field)
                assert np.array_equal(got, want), \
                    (f"{shards} shards", field, got, want)

    @invariant()
    def structural_invariants_hold(self):
        if not hasattr(self, "runtimes"):
            return
        for name in ("warnock", "raycast", "raycast+oracle"):
            for field in ("x", "y"):
                self.runtimes[name].algorithm_for(field).check_invariants()

    @invariant()
    def precedence_labels_and_closure_hold(self):
        """Order labels stay exact under arbitrary interleavings: the
        newest task's decoded ancestor bitmap equals the BFS closure,
        scan pruning preserves that closure relative to the unpruned
        raycast runtime, and levels respect every recorded edge."""
        if not hasattr(self, "runtimes"):
            return
        pruned = self.runtimes["raycast+oracle"].graph
        if len(pruned) == 0:
            return
        newest = pruned.task_ids[-1]
        bfs = pruned.ancestors_of(newest)
        assert pruned.order_maintainer.ancestors(newest) == bfs
        assert self.runtimes["raycast"].graph.ancestors_of(newest) == bfs
        levels = pruned.levels()
        for dep in pruned.dependences_of(newest):
            assert levels[dep] < levels[newest]


RuntimeVsReference.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20)
TestRuntimeVsReference = RuntimeVsReference.TestCase
