"""Regression tests for bugs found during development.

Each test pins the exact scenario that exposed a defect, so refactors
cannot silently reintroduce it.
"""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, RegionRequirement,
                   RegionTree, Runtime, reduce)


class TestSubregionPartitionBuckets:
    """Found by the stateful hypothesis machine: ray casting adopted a
    disjoint-and-complete partition of a *subregion* as its bucket
    structure.  Those buckets do not cover the root, so equivalence sets
    outside the subregion either fit no bucket (CoherenceError) or were
    lost from queries (silent value divergence)."""

    def make(self):
        tree = RegionTree(20, {"x": np.int64})
        # an aliased root partition (NOT disjoint+complete)...
        outer = tree.root.create_partition(
            "O", [IndexSpace.from_range(0, 12),
                  IndexSpace.from_range(8, 20)])
        # ...whose first subregion has a disjoint+complete partition
        inner = outer[0].create_partition(
            "I", [IndexSpace.from_range(0, 6), IndexSpace.from_range(6, 12)],
            disjoint=True, complete=True)
        return tree, outer, inner

    def test_subregion_partition_not_adopted(self):
        tree, outer, inner = self.make()
        rt = Runtime(tree, {"x": np.arange(20, dtype=np.int64)},
                     algorithm="raycast")
        algo = rt.algorithm_for("x")
        assert algo.bucket_partition is None  # K-d fallback, not inner

    def test_writes_outside_subregion_not_lost(self):
        tree, outer, inner = self.make()
        rt = Runtime(tree, {"x": np.zeros(20, dtype=np.int64)},
                     algorithm="raycast")

        def w(arr):
            arr[:] = 7
        # touch the inner partition first (the old trigger), then write
        # through the outer region that escapes it
        rt.launch("inner", [RegionRequirement(inner[0], "x", READ)], None)
        rt.launch("outer", [RegionRequirement(outer[1], "x", READ_WRITE)], w)
        out = rt.read_field("x")
        assert list(out[8:]) == [7] * 12
        assert list(out[:8]) == [0] * 8
        rt.algorithm_for("x").check_invariants()

    def test_partition_created_later_still_requires_root(self):
        tree = RegionTree(16, {"x": np.int64})
        sub_parent = tree.root.create_partition(
            "O", [IndexSpace.from_range(0, 8)])
        rt = Runtime(tree, {"x": np.zeros(16, dtype=np.int64)},
                     algorithm="raycast")
        # a disjoint+complete partition of the subregion appears later
        sub_parent[0].create_partition(
            "I", [IndexSpace.from_range(0, 4), IndexSpace.from_range(4, 8)],
            disjoint=True, complete=True)

        def w(arr):
            arr[:] = 3
        rt.launch("w", [RegionRequirement(tree.root, "x", READ_WRITE)], w)
        assert rt.algorithm_for("x").bucket_partition is None
        assert list(rt.read_field("x")) == [3] * 16


class TestBBoxRelocalizationChurn:
    """Single-bucket sets whose *bounding box* spans several buckets (2-D
    tiles in row-major order) were re-localized into themselves on every
    query, creating split/create churn that inverted the Warnock/raycast
    steady-state ordering."""

    def test_no_structural_churn_in_steady_state(self):
        from collections import Counter
        from repro.apps import StencilApp

        app = StencilApp(pieces=4, tile=4)
        rt = Runtime(app.tree, app.initial, algorithm="raycast")
        rt.replay(app.init_stream())
        rt.replay(app.iteration_stream())
        rt.replay(app.iteration_stream())
        before = Counter(rt.meter.counters)
        rt.replay(app.iteration_stream())
        delta = Counter(rt.meter.counters)
        delta.subtract(before)
        # the only structural activity allowed per steady iteration is the
        # dominating-write coalesce/create pair per written piece-field
        writes = 2 * app.pieces  # stencil out-write + increment in-write
        assert delta["eqsets_split"] == 0
        assert delta["eqsets_created"] == writes
        assert delta["eqsets_coalesced"] == writes


class TestAbortedDominatingWrite:
    """A task body raising after the dominating write (which happens at
    materialize time) used to leave an empty-history equivalence set —
    subsequent reads saw zeros instead of the pre-write values."""

    def test_values_survive_aborted_write(self):
        tree = RegionTree(8, {"x": np.int64})
        tree.root.create_partition(
            "P", [IndexSpace.from_range(0, 4), IndexSpace.from_range(4, 8)],
            disjoint=True, complete=True)
        rt = Runtime(tree, {"x": np.arange(8, dtype=np.int64)},
                     algorithm="raycast")
        part = tree.root.partition("P")

        def boom(arr):
            raise RuntimeError("injected")
        with pytest.raises(RuntimeError):
            rt.launch("bad", [RegionRequirement(part[0], "x", READ_WRITE)],
                      boom)
        assert list(rt.read_field("x")) == list(range(8))


class TestNeverWrittenFieldLocalization:
    """Pennant's dt field is reduced and read but never written: without
    localization to bucket granularity every piece's reductions pile into
    one root-covering set and each analysis scans all of them."""

    def test_reductions_localize_to_pieces(self):
        tree = RegionTree(16, {"dt": np.float64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                  for i in range(4)], disjoint=True, complete=True)
        rt = Runtime(tree, {"dt": np.full(16, np.inf)}, algorithm="raycast")

        def shrink(arr):
            np.minimum(arr, 1.0, out=arr)
        for _ in range(3):
            for i in range(4):
                rt.launch(f"dt[{i}]",
                          [RegionRequirement(P[i], "dt", reduce("min"))],
                          shrink, point=i)
            rt.launch("global", [RegionRequirement(tree.root, "dt", READ)],
                      None)
        algo = rt.algorithm_for("dt")
        assert algo.num_equivalence_sets() == 4
        # each piece-set's history holds only its own piece's entries
        # (plus restricted global reads): bounded per piece per iteration
        for s in algo.store.all_sets():
            assert len(s.history) <= 1 + 3 * 2
        assert list(rt.read_field("dt")) == [1.0] * 16
