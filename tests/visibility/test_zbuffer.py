"""Tests specific to the Z-buffer coherence algorithm (the extension).

The cross-algorithm batteries (equivalence, stateful, failure injection,
tracing, parallel execution) already cover the z-buffer through the
ALGORITHMS registry; this file pins its *distinguishing* property —
maximal dependence precision — and its structural details.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (READ, READ_WRITE, IndexSpace, RegionRequirement,
                   RegionTree, Runtime, oracle_dependences, reduce)
from repro.visibility.zbuffer import ZBufferAlgorithm

from tests.conftest import (fig1_initial, fig1_stream, make_fig1_tree,
                            random_programs)


class TestMaximalPrecision:
    """Every z-buffer edge is a true oracle pair (no conservative false
    positives — per-element tracking never over-approximates domains) and
    the occluded oracle pairs it prunes are always covered by a path."""

    @settings(max_examples=60,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_programs())
    def test_no_spurious_edges_and_sound(self, program):
        tree, initial, stream = program
        rt = Runtime(tree, initial, algorithm="zbuffer")
        rt.replay(stream)
        oracle = oracle_dependences(list(stream))
        got = {(d, t) for t in rt.graph.task_ids
               for d in rt.graph.dependences_of(t)}
        assert got <= oracle                       # zero false positives
        assert rt.graph.missing_pairs(oracle) == []  # full coverage

    def test_fig1_edges_exact_modulo_occlusion(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        rt = Runtime(tree, fig1_initial(tree), algorithm="zbuffer")
        rt.replay(stream)
        oracle = oracle_dependences(list(stream))
        got = {(d, t) for t in rt.graph.task_ids
               for d in rt.graph.dependences_of(t)}
        assert got <= oracle
        assert rt.graph.missing_pairs(oracle) == []
        # within one loop iteration nothing is occluded: iteration 1's
        # pairs appear verbatim
        first_iter = {(a, b) for a, b in oracle if b < 6}
        assert first_iter <= got


class TestStructure:
    def make(self, n=12):
        tree = RegionTree(n, {"x": np.int64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                  for i in range(n // 4)], disjoint=True, complete=True)
        rt = Runtime(tree, {"x": np.zeros(n, dtype=np.int64)},
                     algorithm="zbuffer")
        return tree, P, rt

    def test_interning_shares_sets(self):
        """Region-granular reads over many elements intern one set."""
        tree, P, rt = self.make()
        algo = rt.algorithm_for("x")
        assert isinstance(algo, ZBufferAlgorithm)
        before = algo.interned_sets()
        rt.launch("r", [RegionRequirement(tree.root, "x", READ)], None)
        assert algo.interned_sets() == before + 1  # one set for all 12

    def test_write_clears_tracking(self):
        tree, P, rt = self.make()
        algo = rt.algorithm_for("x")
        rt.launch("r", [RegionRequirement(P[0], "x", READ)], None)

        def w(arr):
            arr[:] = 1
        rt.launch("w", [RegionRequirement(P[0], "x", READ_WRITE)], w)
        # a writer after the write does NOT depend on the pre-write reader
        t = rt.launch("w2", [RegionRequirement(P[0], "x", READ_WRITE)], w)
        assert rt.graph.dependences_of(t.task_id) == {1}

    def test_mixed_operator_chain_precise(self):
        """sum, max, sum: the third depends on the second only via the
        oracle (different ops), and on the first NOT at all."""
        tree, P, rt = self.make()

        def add(arr):
            arr += 1

        def mx(arr):
            np.maximum(arr, 5, out=arr)
        rt.launch("s1", [RegionRequirement(P[0], "x", reduce("sum"))], add)
        rt.launch("m", [RegionRequirement(P[0], "x", reduce("max"))], mx)
        t = rt.launch("s2", [RegionRequirement(P[0], "x", reduce("sum"))],
                      add)
        assert rt.graph.dependences_of(1) == {0}
        assert rt.graph.dependences_of(t.task_id) == {1}

    def test_eager_reductions(self):
        """Unlike the lazy algorithms, the z-buffer folds immediately —
        observable through identical final values (the protocol hides the
        eagerness) but also through its internal canonical array."""
        tree, P, rt = self.make()

        def add(arr):
            arr += 7
        rt.launch("s", [RegionRequirement(P[0], "x", reduce("sum"))], add)
        algo = rt.algorithm_for("x")
        assert list(algo._values[:4]) == [7] * 4  # applied, not pending
        assert list(rt.read_field("x")[:4]) == [7] * 4

    def test_centralized_table_touch(self):
        """Every analysis touches the one canonical table — the
        distribution bottleneck the module docstring documents."""
        tree, P, rt = self.make()
        rt.meter.begin_task()
        rt.launch("r", [RegionRequirement(P[1], "x", READ)], None)
        cost = rt.meter.end_task()
        assert ("zbuffer_table", "x") in cost.touches
