"""Structural tests for Warnock's algorithm (section 6, Figures 9/10)."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, CoherenceError, IndexSpace,
                   RegionRequirement, Runtime, WarnockAlgorithm, reduce)
from repro.visibility.eqset import EquivalenceSet, RefinementTreeStore

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


class TestEquivalenceSetObject:
    def test_split_partitions_domain(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 10))
        s.record(READ_WRITE, np.arange(10), 0)
        inside, outside = s.split(IndexSpace.from_range(3, 7))
        assert list(inside.space) == [3, 4, 5, 6]
        assert list(outside.space) == [0, 1, 2, 7, 8, 9]
        assert list(inside.history[0].values) == [3, 4, 5, 6]
        assert list(outside.history[0].values) == [0, 1, 2, 7, 8, 9]

    def test_split_contained_returns_none_remainder(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 4))
        inside, outside = s.split(IndexSpace.from_range(0, 10))
        assert inside is s and outside is None

    def test_split_requires_overlap(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 4))
        with pytest.raises(CoherenceError):
            s.split(IndexSpace.from_range(10, 12))

    def test_write_clears_history(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 3))
        s.record(READ_WRITE, np.zeros(3), 0)
        s.record(reduce("sum"), np.ones(3), 1)
        s.record(READ, None, 2)
        assert len(s.history) == 3
        s.record(READ_WRITE, np.full(3, 7.0), 3)
        assert len(s.history) == 1
        assert s.history[0].task_id == 3

    def test_misaligned_values_rejected(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 3))
        with pytest.raises(CoherenceError):
            s.record(READ_WRITE, np.zeros(2), 0)

    def test_empty_space_rejected(self):
        with pytest.raises(CoherenceError):
            EquivalenceSet(IndexSpace.empty())

    def test_paint_folds_reductions(self):
        s = EquivalenceSet(IndexSpace.from_range(0, 3))
        s.record(READ_WRITE, np.array([1.0, 2.0, 3.0]), 0)
        s.record(reduce("sum"), np.array([10.0, 10.0, 10.0]), 1)
        assert list(s.paint(np.float64)) == [11.0, 12.0, 13.0]


class TestRefinementStore:
    def make(self, n=16):
        root = EquivalenceSet(IndexSpace.from_range(0, n))
        root.record(READ_WRITE, np.arange(n, dtype=np.int64), -1)
        return RefinementTreeStore(root)

    def test_locate_whole(self):
        store = self.make()
        sets = store.locate(IndexSpace.from_range(0, 16))
        assert len(sets) == 1
        store.check_invariants(IndexSpace.from_range(0, 16))

    def test_locate_refines(self):
        store = self.make()
        sets = store.locate(IndexSpace.from_range(4, 8))
        assert len(sets) == 1 and list(sets[0].space) == [4, 5, 6, 7]
        assert len(store.all_sets()) == 2
        store.check_invariants(IndexSpace.from_range(0, 16))

    def test_monotone_refinement_only(self):
        store = self.make()
        store.locate(IndexSpace.from_range(0, 8))
        store.locate(IndexSpace.from_range(4, 12))
        store.locate(IndexSpace.from_range(0, 8))  # repeat: no new splits
        assert len(store.all_sets()) == 4  # [0,4) [4,8) [8,12) [12,16)
        store.check_invariants(IndexSpace.from_range(0, 16))

    def test_memoization_returns_same_sets(self):
        store = self.make()
        first = store.locate(IndexSpace.from_range(4, 8), region_uid=7)
        second = store.locate(IndexSpace.from_range(4, 8), region_uid=7)
        assert [s.uid for s in first] == [s.uid for s in second]

    def test_memo_survives_later_refinement(self):
        store = self.make()
        store.locate(IndexSpace.from_range(0, 8), region_uid=1)
        # an overlapping query splits the memoized leaf
        store.locate(IndexSpace.from_range(6, 10), region_uid=2)
        sets = store.locate(IndexSpace.from_range(0, 8), region_uid=1)
        covered = IndexSpace.union_all([s.space for s in sets])
        assert covered == IndexSpace.from_range(0, 8)

    def test_tree_depth(self):
        store = self.make()
        for i in range(0, 16, 2):
            store.locate(IndexSpace.from_range(i, i + 2))
        assert store.tree_depth() >= 2


class TestWarnockOnFig1:
    def test_fig10_eqset_refinement(self):
        """Figure 10: after one loop iteration, the equivalence sets of the
        up field are the P pieces refined by their ghost overlaps, and the
        second iteration adds no further refinements."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="warnock")
        rt.replay(fig1_stream(tree, P, G, iterations=1))
        algo = rt.algorithm_for("up")
        assert isinstance(algo, WarnockAlgorithm)
        count_after_one = algo.num_equivalence_sets()
        algo.check_invariants()

        # every equivalence set is contained in exactly one P piece
        for s in algo.store.all_sets():
            assert sum(s.space.issubset(p.space) for p in P) == 1

        rt.replay(fig1_stream(tree, P, G, iterations=1))
        assert algo.num_equivalence_sets() == count_after_one
        algo.check_invariants()

    def test_eqsets_never_coalesce(self):
        """Warnock only refines — set count is monotone nondecreasing."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="warnock")
        counts = []
        algo = rt.algorithm_for("up")
        for _ in range(3):
            rt.replay(fig1_stream(tree, P, G, iterations=1))
            counts.append(algo.num_equivalence_sets())
        assert counts == sorted(counts)

    def test_invariants_under_overlapping_partitions(self):
        tree = RegionTreeFactory.overlapping()
        rt = Runtime(tree, {"x": np.zeros(20, dtype=np.int64)},
                     algorithm="warnock")
        part = tree.root.partition("S")

        def w(arr):
            arr[:] = 1
        rt.launch("a", [RegionRequirement(part[0], "x", READ_WRITE)], w)
        rt.launch("b", [RegionRequirement(part[1], "x", READ_WRITE)], w)
        algo = rt.algorithm_for("x")
        algo.check_invariants()


class RegionTreeFactory:
    @staticmethod
    def overlapping():
        from repro import RegionTree
        tree = RegionTree(20, {"x": np.int64})
        tree.root.create_partition(
            "S", [IndexSpace.from_indices(list(range(0, 20, 2))),
                  IndexSpace.from_indices(list(range(0, 20, 3)))])
        return tree
