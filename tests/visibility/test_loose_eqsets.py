"""Unit tests for the ray-casting loose equivalence sets and bucket store."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, CoherenceError, IndexSpace, RegionTree,
                   reduce)
from repro.visibility.base import INITIAL_TASK_ID
from repro.visibility.eqset import BucketStore, LooseEquivalenceSet
from repro.visibility.history import HistoryEntry, RegionValues


def entry(privilege, indices, values, task_id):
    space = IndexSpace.from_indices(indices)
    rv = None if values is None else RegionValues(
        space, np.asarray(values, dtype=np.float64))
    return HistoryEntry(privilege, space, rv, task_id)


class TestLooseEquivalenceSet:
    def make(self, lo=0, hi=8):
        s = LooseEquivalenceSet(IndexSpace.from_range(lo, hi))
        s.record(entry(READ_WRITE, range(lo, hi), np.arange(lo, hi), -1))
        return s

    def test_empty_space_rejected(self):
        with pytest.raises(CoherenceError):
            LooseEquivalenceSet(IndexSpace.empty())

    def test_record_guards(self):
        s = self.make()
        with pytest.raises(CoherenceError):   # escapes the set
            s.record(entry(READ, [9], None, 1))
        with pytest.raises(CoherenceError):   # partial write
            s.record(entry(READ_WRITE, [1, 2], [0, 0], 1))

    def test_write_occludes_history(self):
        s = self.make()
        s.record(entry(reduce("sum"), [1, 2], [5, 5], 1))
        s.record(entry(READ, [0, 1], None, 2))
        assert len(s.history) == 3
        s.record(entry(READ_WRITE, range(8), np.zeros(8), 3))
        assert len(s.history) == 1
        assert s.history[0].task_id == 3

    def test_paint_blends_subdomain_entries(self):
        s = self.make()
        s.record(entry(reduce("sum"), [2, 3], [10, 10], 1))
        painted = s.paint(IndexSpace.from_range(0, 8), np.float64)
        assert list(painted.values) == [0, 1, 12, 13, 4, 5, 6, 7]

    def test_paint_restricted_window(self):
        s = self.make()
        painted = s.paint(IndexSpace.from_indices([3, 5, 99]), np.float64)
        assert list(painted.domain) == [3, 5]
        assert list(painted.values) == [3, 5]

    def test_minus_restricts_entries(self):
        s = self.make()
        s.record(entry(reduce("sum"), [1, 6], [10, 20], 1))
        rest = s.minus(IndexSpace.from_range(0, 4))
        assert rest is not None
        assert list(rest.space) == [4, 5, 6, 7]
        # the reduction entry survives only at index 6
        red = [e for e in rest.history if e.privilege.is_reduce]
        assert len(red) == 1 and list(red[0].domain) == [6]

    def test_minus_contained_is_none(self):
        s = self.make()
        assert s.minus(IndexSpace.from_range(0, 100)) is None

    def test_minus_drops_disjoint_entries(self):
        s = self.make()
        s.record(entry(READ, [0], None, 1))
        rest = s.minus(IndexSpace.from_range(0, 1))
        assert rest is not None
        assert all(not e.privilege.is_read for e in rest.history)


def make_store(pieces=4, size=16):
    tree = RegionTree(size, {"x": np.float64})
    P = tree.root.create_partition(
        "P", [IndexSpace.from_range(i * size // pieces,
                                    (i + 1) * size // pieces)
              for i in range(pieces)], disjoint=True, complete=True)
    root = LooseEquivalenceSet(tree.root.space)
    root.record(HistoryEntry(
        READ_WRITE, tree.root.space,
        RegionValues(tree.root.space, np.zeros(size)), INITIAL_TASK_ID))
    return tree, P, BucketStore(root, P)


class TestBucketStoreLocalization:
    def test_first_touch_carves_only_queried_buckets(self):
        tree, P, store = make_store()
        out = store.overlapping(P[1].space, P[1].uid)
        assert len(out) == 1
        assert out[0].space == P[1].space
        # the untouched remainder stays one multi-bucket set
        sizes = sorted(s.space.size for s in store.all_sets())
        assert sizes == [4, 12]

    def test_progressive_localization(self):
        tree, P, store = make_store()
        for i in range(4):
            store.overlapping(P[i].space, P[i].uid)
        assert store.num_sets() == 4
        store.check_invariants(tree.root.space)

    def test_root_query_localizes_everything(self):
        tree, P, store = make_store()
        out = store.overlapping(tree.root.space, tree.root.uid)
        assert len(out) == 4
        store.check_invariants(tree.root.space)

    def test_localization_preserves_values(self):
        tree, P, store = make_store()
        sets = store.overlapping(P[2].space, P[2].uid)
        painted = sets[0].paint(P[2].space, np.float64)
        assert list(painted.values) == [0.0] * 4

    def test_memo_stable_when_sets_unchanged(self):
        tree, P, store = make_store()
        a = store.overlapping(P[0].space, P[0].uid)
        b = store.overlapping(P[0].space, P[0].uid)
        assert [s.uid for s in a] == [s.uid for s in b]

    def test_memo_invalidated_by_dominating_write(self):
        tree, P, store = make_store()
        first = store.overlapping(P[0].space, P[0].uid)
        fresh = store.dominate_write(P[0].space, first, P[0].uid)
        again = store.overlapping(P[0].space, P[0].uid)
        assert again == [fresh]
        store.check_invariants(tree.root.space)

    def test_dominating_write_trims_straddlers(self):
        tree, P, store = make_store()
        # write a region straddling two buckets
        straddle = IndexSpace.from_range(2, 6)
        sets = store.overlapping(straddle, None)
        fresh = store.dominate_write(straddle, sets, None)
        assert fresh.space == straddle
        store.check_invariants(tree.root.space)

    def test_single_bucket_sets_not_relocalized(self):
        """Sets whose bbox spans several buckets but whose contents live in
        one bucket must not churn (the 2-D tile case)."""
        tree = RegionTree(16, {"x": np.float64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_indices([0, 1, 8, 9]),
                  IndexSpace.from_indices([2, 3, 10, 11]),
                  IndexSpace.from_indices([4, 5, 12, 13]),
                  IndexSpace.from_indices([6, 7, 14, 15])],
            disjoint=True, complete=True)
        root = LooseEquivalenceSet(tree.root.space)
        root.record(HistoryEntry(
            READ_WRITE, tree.root.space,
            RegionValues(tree.root.space, np.zeros(16)), INITIAL_TASK_ID))
        store = BucketStore(root, P)
        first = store.overlapping(P[0].space, P[0].uid)
        uids = {s.uid for s in store.all_sets()}
        store.overlapping(P[0].space, None)  # bypass memo: no churn allowed
        assert {s.uid for s in store.all_sets()} == uids


class TestBucketStoreEdges:
    def test_insert_outside_buckets_raises(self):
        """The partition is complete, so a set fitting no bucket can only
        mean a stale bucket list; the store must fail loudly."""
        tree, P, store = make_store()
        stray = LooseEquivalenceSet(IndexSpace.from_range(100, 104))
        with pytest.raises(CoherenceError, match="fits no bucket"):
            store._index_insert(stray)

    def test_stale_bucket_list_detected(self):
        """Simulate rebucketing mid-flight: the bucket regions no longer
        cover a live set's space."""
        tree, P, store = make_store()
        store._set_bucket_regions([P[0]])  # stale: only the first bucket
        with pytest.raises(CoherenceError, match="fits no bucket"):
            store._index_insert(LooseEquivalenceSet(P[2].space))

    def test_localize_remainder_keeps_restricted_history(self):
        """Carving one bucket out of a multi-bucket set must re-index the
        remainder's history to the remainder's domain."""
        tree, P, store = make_store()  # 4 buckets of 4 elements over 16
        root_set = store.all_sets()[0]
        dom = IndexSpace.from_indices([1, 14])  # rides buckets 0 and 3
        root_set.record(HistoryEntry(
            reduce("sum"), dom,
            RegionValues(dom, np.array([10.0, 20.0])), 5))
        out = store.overlapping(P[0].space, P[0].uid)  # carve bucket 0
        store.check_invariants(tree.root.space)
        # the carved piece kept only the index-1 part of the reduction
        carved_red = [e for e in out[0].history if e.privilege.is_reduce]
        assert len(carved_red) == 1
        assert list(carved_red[0].domain) == [1]
        # the remainder spans buckets 1..3 and kept the index-14 part
        rem = next(s for s in store.all_sets() if s.space.size == 12)
        assert list(rem.space) == list(range(4, 16))
        rem_red = [e for e in rem.history if e.privilege.is_reduce]
        assert len(rem_red) == 1
        assert list(rem_red[0].domain) == [14]
        painted = rem.paint(IndexSpace.from_range(12, 16), np.float64)
        assert list(painted.values) == [0.0, 0.0, 20.0, 0.0]

    def test_localize_carves_only_touched_buckets(self):
        """A query straddling two of four buckets carves exactly those two
        and leaves one remainder set for the rest."""
        tree, P, store = make_store()
        straddle = IndexSpace.from_range(2, 6)  # buckets 0 and 1
        out = store.overlapping(straddle, None)
        assert sorted(s.space.size for s in out) == [4, 4]
        sizes = sorted(s.space.size for s in store.all_sets())
        assert sizes == [4, 4, 8]
        store.check_invariants(tree.root.space)
