"""The central correctness battery: every algorithm == the reference.

Section 3.1 defines coherence via the blending function ``B`` applied in
global-clock order — which is exactly what the sequential reference
executor computes.  These tests replay scripted and randomly generated task
streams through all four algorithm implementations and require

1. bit-exact final field values (integer dtypes), and
2. dependence soundness: every oracle interference pair covered by a path
   in the reported dependence graph.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro import (ALGORITHMS, READ, READ_WRITE, IndexSpace,
                   RegionRequirement, RegionTree, Runtime, TaskStream,
                   oracle_dependences, reduce)
from repro.analysis import compare_algorithms
from repro.runtime.dependence import schedule_levels

from tests.conftest import (fig1_initial, fig1_stream, make_fig1_tree,
                            random_multifield_programs, random_programs)

ALL = list(ALGORITHMS)


class TestFig1Program:
    """The running example of the paper (Figures 1 and 5)."""

    def test_all_algorithms_match_reference(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=3)
        compare_algorithms(tree, fig1_initial(tree), stream)

    @pytest.mark.parametrize("algo", ALL)
    def test_fig5_parallel_schedule(self, algo):
        """Section 3.2: tasks t0–2, t3–5, t6–8 form three parallel waves."""
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=1)
        # add the second loop iteration's first phase: tasks t6-t8
        def t1_body(pup, gdown):
            pup += 1
            gdown += 2
        for i in range(3):
            stream.append(f"t1b[{i}]",
                          [RegionRequirement(P[i], "up", READ_WRITE),
                           RegionRequirement(G[i], "down", reduce("sum"))],
                          t1_body)
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        rt.replay(stream)
        waves = schedule_levels(rt.graph)
        assert waves == [[0, 1, 2], [3, 4, 5], [6, 7, 8]]

    @pytest.mark.parametrize("algo", ALL)
    def test_fig5_t6_dependences(self, algo):
        """t6 depends on t3–5 (reads values reduced through the ghost
        partition); t3 depends on t0–2 — section 3.2's worked example."""
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=2)
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        rt.replay(stream)
        # t6 = first t1 of iteration 2 (rw P[0].up, reduce G[0].down)
        t6_deps = rt.graph.ancestors_of(6)
        assert {3, 4, 5} <= t6_deps
        t3_deps = rt.graph.ancestors_of(3)
        assert {0, 1, 2} <= t3_deps

    def test_oracle_matches_paper_narrative(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=1)
        oracle = oracle_dependences(list(stream))
        # within each phase no dependences
        for phase in ([0, 1, 2], [3, 4, 5]):
            for a in phase:
                for b in phase:
                    assert (a, b) not in oracle
        # t2 phase reads/writes data produced by t1 phase
        assert any((a, b) in oracle for a in (0, 1, 2) for b in (3, 4, 5))


class TestScriptedCases:
    """Hand-written cases covering specific interleavings."""

    def make_tree(self, n=16):
        tree = RegionTree(n, {"x": np.int64})
        quarters = tree.root.create_partition(
            "Q", [IndexSpace.from_range(i * (n // 4), (i + 1) * (n // 4))
                  for i in range(4)], disjoint=True, complete=True)
        return tree, quarters

    def run(self, tree, stream):
        initial = {"x": np.arange(tree.root.space.size, dtype=np.int64)}
        return compare_algorithms(tree, initial, stream)

    def test_write_then_read_root(self):
        tree, Q = self.make_tree()
        stream = TaskStream()

        def bump(arr):
            arr += 100
        stream.append("w", [RegionRequirement(Q[1], "x", READ_WRITE)], bump)
        stream.append("r", [RegionRequirement(tree.root, "x", READ)], None)
        runs = self.run(tree, stream)
        for run in runs.values():
            assert run.graph.dependences_of(1) == {0}

    def test_reduction_folded_across_write(self):
        """Lazy reductions must fold onto the latest write, not the initial
        values."""
        tree, Q = self.make_tree()
        stream = TaskStream()

        def write7(arr):
            arr[:] = 7

        def add3(arr):
            arr += 3
        stream.append("w", [RegionRequirement(Q[0], "x", READ_WRITE)], write7)
        stream.append("r+", [RegionRequirement(Q[0], "x", reduce("sum"))],
                      add3)
        stream.append("obs", [RegionRequirement(Q[0], "x", READ)], None)
        runs = self.run(tree, stream)
        rt = runs["raycast"].runtime
        assert list(rt.read_field("x")[:4]) == [10, 10, 10, 10]

    def test_two_reductions_then_read(self):
        tree, Q = self.make_tree()
        stream = TaskStream()

        def add(k):
            def body(arr):
                arr += k
            return body
        stream.append("r1", [RegionRequirement(Q[0], "x", reduce("sum"))],
                      add(5))
        stream.append("r2", [RegionRequirement(Q[0], "x", reduce("sum"))],
                      add(7))
        stream.append("obs", [RegionRequirement(tree.root, "x", READ)], None)
        runs = self.run(tree, stream)
        for run in runs.values():
            # the reductions commute: no dependence between them
            assert run.graph.dependences_of(1) == set()
            assert run.graph.dependences_of(2) == {0, 1}

    def test_different_reduction_ops_serialize(self):
        tree, Q = self.make_tree()
        stream = TaskStream()

        def add(arr):
            arr += 5

        def mx(arr):
            np.maximum(arr, 9, out=arr)
        stream.append("sum", [RegionRequirement(Q[0], "x", reduce("sum"))],
                      add)
        stream.append("max", [RegionRequirement(Q[0], "x", reduce("max"))],
                      mx)
        stream.append("obs", [RegionRequirement(tree.root, "x", READ)], None)
        runs = self.run(tree, stream)
        for run in runs.values():
            assert run.graph.dependences_of(1) == {0}

    def test_write_after_read_dependence(self):
        tree, Q = self.make_tree()
        stream = TaskStream()

        def write1(arr):
            arr[:] = 1
        stream.append("rd", [RegionRequirement(Q[2], "x", READ)], None)
        stream.append("wr", [RegionRequirement(Q[2], "x", READ_WRITE)],
                      write1)
        runs = self.run(tree, stream)
        for name, run in runs.items():
            assert run.graph.dependences_of(1) == {0}, name

    def test_partial_overlap_write_chain(self):
        """Writes through overlapping, dynamically-built regions."""
        tree = RegionTree(12, {"x": np.int64})
        a = IndexSpace.from_range(0, 8)
        b = IndexSpace.from_range(4, 12)
        over = tree.root.create_partition("O", [a, b])
        stream = TaskStream()

        def writer(v):
            def body(arr):
                arr[:] = v
            return body
        stream.append("w1", [RegionRequirement(over[0], "x", READ_WRITE)],
                      writer(1))
        stream.append("w2", [RegionRequirement(over[1], "x", READ_WRITE)],
                      writer(2))
        stream.append("obs", [RegionRequirement(tree.root, "x", READ)], None)
        runs = self.run(tree, stream)
        rt = runs["warnock"].runtime
        assert list(rt.read_field("x")) == [1] * 4 + [2] * 8
        for run in runs.values():
            assert run.graph.dependences_of(1) == {0}

    def test_sparse_aliased_regions(self):
        tree = RegionTree(20, {"x": np.int64})
        evens = IndexSpace.from_indices(list(range(0, 20, 2)))
        threes = IndexSpace.from_indices(list(range(0, 20, 3)))
        part = tree.root.create_partition("S", [evens, threes])
        stream = TaskStream()

        def w(arr):
            arr[:] = -1

        def add(arr):
            arr += 10
        stream.append("w", [RegionRequirement(part[0], "x", READ_WRITE)], w)
        stream.append("a", [RegionRequirement(part[1], "x", reduce("sum"))],
                      add)
        stream.append("obs", [RegionRequirement(tree.root, "x", READ)], None)
        self.run(tree, stream)

    def test_deep_tree_access(self):
        tree, Q = self.make_tree(16)
        sub = Q[0].create_partition(
            "S", [IndexSpace.from_range(0, 2), IndexSpace.from_range(2, 4)],
            disjoint=True, complete=True)
        stream = TaskStream()

        def w(arr):
            arr[:] = 5
        stream.append("deep", [RegionRequirement(sub[1], "x", READ_WRITE)], w)
        stream.append("shallow", [RegionRequirement(Q[0], "x", READ)], None)
        stream.append("root", [RegionRequirement(tree.root, "x", READ_WRITE)],
                      w)
        stream.append("deep2", [RegionRequirement(sub[0], "x", READ)], None)
        runs = self.run(tree, stream)
        for name, run in runs.items():
            assert run.graph.dependences_of(1) == {0}, name
            assert run.graph.dependences_of(3) == {2}, name


class TestRandomPrograms:
    @settings(max_examples=120,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_programs())
    def test_all_algorithms_agree(self, program):
        tree, initial, stream = program
        compare_algorithms(tree, initial, stream)

    @settings(max_examples=80,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_multifield_programs())
    def test_multifield_multirequirement_agree(self, program):
        """Tasks with several requirements over two fields, including the
        legal aliased combinations of section 4."""
        tree, initial, stream = program
        compare_algorithms(tree, initial, stream)
