"""Structural tests for the optimized painter (section 5.1, Figure 8)."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, RegionRequirement, Runtime,
                   TreePainterAlgorithm, reduce)
from repro.errors import CoherenceError
from repro.visibility.history import HistoryEntry
from repro.visibility.painter_tree import CompositeView

from tests.conftest import fig1_initial, make_fig1_tree


def launch_fig5(rt, P, G, count=9):
    """Launch the first `count` tasks of Figure 5."""
    def t1_body(pup, gdown):
        pup += 1
        gdown += 2

    def t2_body(pdown, gup):
        pdown *= 2
        gup += 3

    launches = []
    for i in range(3):
        launches.append(("t1", i, t1_body, "up", "down"))
    for i in range(3):
        launches.append(("t2", i, t2_body, "down", "up"))
    for i in range(3):
        launches.append(("t1", i, t1_body, "up", "down"))
    for name, i, body, pf, gf in launches[:count]:
        rt.launch(f"{name}[{i}]",
                  [RegionRequirement(P[i], pf, READ_WRITE),
                   RegionRequirement(G[i], gf, reduce("sum"))], body)
    return rt


class TestFig8Narrative:
    """Figure 8: the region tree state evolves exactly as the paper shows
    for the up field."""

    def _algo(self, rt) -> TreePainterAlgorithm:
        algo = rt.algorithm_for("up")
        assert isinstance(algo, TreePainterAlgorithm)
        return algo

    def test_after_t0_2_no_views(self):
        """Figure 8(a): tasks recorded at P.up[i]; P is disjoint so no
        composite view is created."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        launch_fig5(rt, P, G, count=3)
        algo = self._algo(rt)
        for i in range(3):
            entries = algo.node_entries(P[i])
            assert len(entries) == 1
            assert isinstance(entries[0], HistoryEntry)
            assert entries[0].task_id == i
        # root holds only the initial write — no composite views yet
        root_entries = algo.node_entries(tree.root)
        assert not any(isinstance(e, CompositeView) for e in root_entries)

    def test_t3_creates_composite_view_of_P(self):
        """Figure 8(b): t3 (reduce through G.up[1]) interferes with the
        read-write history under P.up, so a composite view V0 of the P
        subtree is appended at the root and P's histories are cleared."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        launch_fig5(rt, P, G, count=4)
        algo = self._algo(rt)
        root_views = [e for e in algo.node_entries(tree.root)
                      if isinstance(e, CompositeView)]
        assert len(root_views) == 1
        v0 = root_views[0]
        captured_tasks = {item.task_id
                          for _, items in v0.captured for item in items
                          if isinstance(item, HistoryEntry)}
        assert captured_tasks == {0, 1, 2}
        # P subtree is now closed for the up field
        for i in range(3):
            assert algo.node_entries(P[i]) == []
        # t3 itself recorded at G.up[0] (paper indexes from 1)
        g_entries = algo.node_entries(G[0])
        assert [e.task_id for e in g_entries] == [3]

    def test_t4_t5_no_more_views(self):
        """t4/t5 use the same reduction privilege as t3: aliased G
        subregions do not interfere, so no further views are created."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        launch_fig5(rt, P, G, count=6)
        algo = self._algo(rt)
        root_views = [e for e in algo.node_entries(tree.root)
                      if isinstance(e, CompositeView)]
        assert len(root_views) == 1

    def test_t6_creates_second_view_of_G(self):
        """Figure 8(c): t6 (rw on P.up[1]) interferes with the reductions
        in the G subtree, creating composite view V1 of G.up."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        launch_fig5(rt, P, G, count=7)
        algo = self._algo(rt)
        root_views = [e for e in algo.node_entries(tree.root)
                      if isinstance(e, CompositeView)]
        assert len(root_views) == 2
        v1 = root_views[1]
        captured_tasks = {item.task_id
                          for _, items in v1.captured for item in items
                          if isinstance(item, HistoryEntry)}
        assert captured_tasks == {3, 4, 5}

    def test_counts_stay_consistent(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        launch_fig5(rt, P, G, count=9)
        algo = self._algo(rt)

        def raw_items(region):
            total = len(algo.node_entries(region))
            for part in region.partitions.values():
                for sub in part.subregions:
                    total += raw_items(sub)
            return total
        assert algo.total_items() == raw_items(tree.root)


class TestOcclusion:
    def test_write_clears_own_subhistory(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        algo = rt.algorithm_for("up")

        def w(arr):
            arr[:] = 1
        for _ in range(5):
            rt.launch("w", [RegionRequirement(P[0], "up", READ_WRITE)], w)
        # repeated writes to the same region occlude each other
        assert len(algo.node_entries(P[0])) == 1

    def test_view_occludes_fully_overwritten_items(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        algo = rt.algorithm_for("up")

        def w(arr):
            arr[:] = 2
        # write the whole root through P (hoists nothing yet)...
        for i in range(3):
            rt.launch("w", [RegionRequirement(P[i], "up", READ_WRITE)], w)
        # a root-level write occludes the initial entry and views
        rt.launch("big", [RegionRequirement(tree.root, "up", READ_WRITE)], w)
        entries = algo.node_entries(tree.root)
        assert len(entries) == 1
        assert isinstance(entries[0], HistoryEntry)
        assert entries[0].task_id == 3


class TestGuards:
    def test_foreign_region_rejected(self):
        tree, P, G = make_fig1_tree()
        other_tree, P2, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="tree_painter")
        algo = rt.algorithm_for("up")
        with pytest.raises(CoherenceError):
            algo.materialize(READ, P2[0])
