"""Tests for RegionValues, HistoryEntry, and the blending kernel."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import READ, READ_WRITE, CoherenceError, IndexSpace, reduce
from repro.reductions import SUM
from repro.visibility.history import (HistoryEntry, RegionValues, paint_entry,
                                      scan_dependences)


def rv(indices, values):
    return RegionValues(IndexSpace.from_indices(indices),
                        np.asarray(values, dtype=np.int64))


def as_dict(r: RegionValues) -> dict[int, int]:
    return {int(i): int(v) for i, v in zip(r.domain.indices, r.values)}


class TestRegionValues:
    def test_shape_validated(self):
        with pytest.raises(CoherenceError):
            RegionValues(IndexSpace.from_indices([1, 2]), np.zeros(3))

    def test_filled(self):
        r = RegionValues.filled(IndexSpace.from_indices([3, 7]), 5, np.int64)
        assert as_dict(r) == {3: 5, 7: 5}

    def test_restrict(self):
        r = rv([1, 2, 3], [10, 20, 30])
        out = r.restrict(IndexSpace.from_indices([2, 3, 9]))
        assert as_dict(out) == {2: 20, 3: 30}

    def test_restrict_full_is_shared(self):
        r = rv([1, 2], [10, 20])
        assert r.restrict(IndexSpace.from_indices([1, 2, 3])) is r

    def test_subtract(self):
        r = rv([1, 2, 3], [10, 20, 30])
        assert as_dict(r.subtract(IndexSpace.from_indices([2]))) == \
            {1: 10, 3: 30}

    def test_overlay(self):
        a = rv([1, 2, 3], [10, 20, 30])
        b = rv([2, 4], [99, 40])
        assert as_dict(a.overlay(b)) == {1: 10, 2: 99, 3: 30, 4: 40}
        assert a.overlay(rv([], [])) is a
        assert rv([], []).overlay(b) is b

    def test_fold_in(self):
        a = rv([1, 2, 3], [10, 20, 30])
        b = rv([2, 3, 9], [1, 2, 3])
        assert as_dict(a.fold_in(SUM, b)) == {1: 10, 2: 21, 3: 32}

    def test_fold_in_disjoint_noop(self):
        a = rv([1], [10])
        assert a.fold_in(SUM, rv([5], [1])) is a

    def test_write_onto(self):
        a = rv([1, 2, 3], [10, 20, 30])
        b = rv([2, 9], [77, 88])
        assert as_dict(a.write_onto(b)) == {1: 10, 2: 77, 3: 30}

    def test_gather_into(self):
        target = IndexSpace.from_indices([1, 2, 3, 4])
        out = np.zeros(4, dtype=np.int64)
        rv([2, 4], [20, 40]).gather_into(target, out)
        assert list(out) == [0, 20, 0, 40]

    @given(st.dictionaries(st.integers(0, 30), st.integers(-100, 100),
                           max_size=10),
           st.dictionaries(st.integers(0, 30), st.integers(-100, 100),
                           max_size=10))
    def test_overlay_model(self, da, db):
        a = rv(sorted(da), [da[k] for k in sorted(da)])
        b = rv(sorted(db), [db[k] for k in sorted(db)])
        assert as_dict(a.overlay(b)) == {**da, **db}


class TestHistoryEntry:
    def test_read_entries_carry_no_values(self):
        space = IndexSpace.from_indices([1])
        with pytest.raises(CoherenceError):
            HistoryEntry(READ, space, rv([1], [5]), 0)
        entry = HistoryEntry(READ, space, None, 0)
        assert not entry.is_visible

    def test_visible_entries_need_aligned_values(self):
        space = IndexSpace.from_indices([1, 2])
        with pytest.raises(CoherenceError):
            HistoryEntry(READ_WRITE, space, None, 0)
        with pytest.raises(CoherenceError):
            HistoryEntry(READ_WRITE, space, rv([1], [5]), 0)

    def test_restricted(self):
        entry = HistoryEntry(READ_WRITE, IndexSpace.from_indices([1, 2, 3]),
                             rv([1, 2, 3], [10, 20, 30]), 4)
        sub = entry.restricted(IndexSpace.from_indices([2, 5]))
        assert sub is not None and as_dict(sub.values) == {2: 20}
        assert entry.restricted(IndexSpace.from_indices([9])) is None
        assert entry.restricted(IndexSpace.from_indices([1, 2, 3, 4])) is entry


class TestPaintEntry:
    def test_write_opaque(self):
        cur = rv([1, 2], [0, 0])
        entry = HistoryEntry(READ_WRITE, IndexSpace.from_indices([2, 3]),
                             rv([2, 3], [9, 9]), 0)
        assert as_dict(paint_entry(cur, entry)) == {1: 0, 2: 9}

    def test_reduce_translucent(self):
        cur = rv([1, 2], [5, 5])
        entry = HistoryEntry(reduce("sum"), IndexSpace.from_indices([2]),
                             rv([2], [3]), 0)
        assert as_dict(paint_entry(cur, entry)) == {1: 5, 2: 8}

    def test_read_transparent(self):
        cur = rv([1], [5])
        entry = HistoryEntry(READ, IndexSpace.from_indices([1]), None, 0)
        assert paint_entry(cur, entry) is cur

    def test_disjoint_noop(self):
        cur = rv([1], [5])
        entry = HistoryEntry(READ_WRITE, IndexSpace.from_indices([9]),
                             rv([9], [7]), 0)
        assert paint_entry(cur, entry) is cur


class TestScanDependences:
    def test_interference_and_overlap_required(self):
        entries = [
            HistoryEntry(READ_WRITE, IndexSpace.from_indices([1, 2]),
                         rv([1, 2], [0, 0]), 0),
            HistoryEntry(READ, IndexSpace.from_indices([1]), None, 1),
            HistoryEntry(READ_WRITE, IndexSpace.from_indices([8]),
                         rv([8], [0]), 2),
        ]
        deps: set[int] = set()
        scan_dependences(READ, IndexSpace.from_indices([1]), entries, deps)
        # depends on the write (0); not on the read (read/read);
        # not on the disjoint write (2)
        assert deps == {0}

    def test_same_reduction_no_dep(self):
        entries = [HistoryEntry(reduce("sum"), IndexSpace.from_indices([1]),
                                rv([1], [3]), 0)]
        deps: set[int] = set()
        scan_dependences(reduce("sum"), IndexSpace.from_indices([1]),
                         entries, deps)
        assert deps == set()
        scan_dependences(reduce("max"), IndexSpace.from_indices([1]),
                         entries, deps)
        assert deps == {0}
