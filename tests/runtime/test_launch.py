"""Tests for index launches with projection functors."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, Runtime, TaskError, reduce)
from repro.runtime.launch import (IndexLaunchSpec, ProjectedRequirement,
                                  identity_projection, partition_projection)

from tests.conftest import fig1_initial, make_fig1_tree


class TestProjections:
    def test_identity(self):
        tree, P, _ = make_fig1_tree()
        proj = identity_projection(tree.root)
        assert proj(0) is tree.root and proj(7) is tree.root

    def test_partition_default(self):
        tree, P, _ = make_fig1_tree()
        proj = partition_projection(P)
        assert proj(1) is P[1]

    def test_partition_with_index_map(self):
        tree, P, _ = make_fig1_tree()
        proj = partition_projection(P, lambda i: (i + 1) % 3)
        assert proj(2) is P[0]

    def test_projected_requirement_at(self):
        tree, P, _ = make_fig1_tree()
        pr = ProjectedRequirement(partition_projection(P), "up", READ)
        req = pr.at(2)
        assert req.region is P[2] and req.field == "up"


class TestIndexLaunchSpec:
    def test_requires_requirements(self):
        with pytest.raises(TaskError):
            IndexLaunchSpec("empty", [])

    def test_fig1_as_spec(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def t1(p, g):
            p += 1
            g += 2
        spec = IndexLaunchSpec(
            "t1",
            [ProjectedRequirement(partition_projection(P), "up",
                                  READ_WRITE),
             ProjectedRequirement(partition_projection(G), "down",
                                  reduce("sum"))],
            body_factory=lambda i: t1)
        tasks = spec.launch(rt, range(3))
        assert [t.name for t in tasks] == ["t1[0]", "t1[1]", "t1[2]"]
        assert [t.point for t in tasks] == [0, 1, 2]
        up = rt.read_field("up")
        assert list(up) == [i + 1 for i in range(12)]

    def test_ring_shift_projection(self):
        """A neighbour-exchange pattern: each point reads its right
        neighbour's piece — the projection functor shape Legion uses for
        explicit ghost exchanges."""
        tree, P, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def w(arr):
            arr[:] = 5
        # write all pieces, then read the shifted pieces: each read must
        # depend on the shifted write
        writes = IndexLaunchSpec(
            "w", [ProjectedRequirement(partition_projection(P), "up",
                                       READ_WRITE)],
            body_factory=lambda i: w).launch(rt, range(3))
        reads = IndexLaunchSpec(
            "r", [ProjectedRequirement(
                partition_projection(P, lambda i: (i + 1) % 3), "up",
                READ)]).launch(rt, range(3))
        for read in reads:
            want_writer = writes[(read.point + 1) % 3].task_id
            assert rt.graph.dependences_of(read.task_id) == {want_writer}

    def test_broadcast_argument(self):
        """An identity-projected read of the root is shared by all
        points, serializing against nothing but writers."""
        tree, P, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        spec = IndexLaunchSpec(
            "observe",
            [ProjectedRequirement(identity_projection(tree.root), "up",
                                  READ)])
        tasks = spec.launch(rt, range(3))
        for t in tasks:
            assert rt.graph.dependences_of(t.task_id) == set()

    def test_bodiless(self):
        tree, P, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        spec = IndexLaunchSpec(
            "noop", [ProjectedRequirement(partition_projection(P), "up",
                                          READ)])
        tasks = spec.launch(rt, range(3))
        assert all(t.body is None for t in tasks)
