"""Property suite for the order-maintenance precedence oracle.

The central claims under test, mirroring the module contract of
``repro.runtime.order``:

* **Exactness** — ``OrderMaintainer.precedes(a, b)`` agrees with the
  brute-force BFS answer ``a in graph.ancestors_of(b)`` on arbitrary
  random DAGs and on the graphs produced by running random task streams
  through the real runtime.
* **No traversal** — a ``precedes`` query costs a constant number of
  label-store lookups (at most two ``dict.get`` calls) and zero BFS
  walks, independent of graph size; the oracle's ``comparisons`` counter
  stays exactly equal to ``queries``.
* **Scaling** — the soundness-harness helpers (``missing_pairs`` /
  ``contains_transitively``) stop issuing per-pair BFS traversals once
  labels are available: a 2k-task check performs zero ``ancestors_of``
  calls, where the BFS fallback performs one per distinct later task.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Runtime
from repro.obs.metrics import MetricsRegistry
from repro.runtime.dependence import DependenceGraph
from repro.runtime.order import (ENV_DISABLE, ENV_ENABLE, OrderMaintainer,
                                 PrecedenceOracle, differential_enabled,
                                 order_maintenance_enabled,
                                 scan_pruning_enabled)
from repro.visibility.base import INITIAL_TASK_ID

from tests.conftest import random_programs


# ----------------------------------------------------------------------
# strategies and helpers
# ----------------------------------------------------------------------
@st.composite
def random_dags(draw, max_tasks: int = 28):
    """Dependence lists of a random DAG in program order: task ``t``
    depends on a random subset of ``0..t-1``."""
    n = draw(st.integers(1, max_tasks))
    edges: list[list[int]] = []
    for t in range(n):
        upper = min(4, t)
        k = draw(st.integers(0, upper))
        deps = draw(st.sets(st.integers(0, t - 1), min_size=k, max_size=k)) \
            if t else set()
        edges.append(sorted(deps))
    return edges


def build_graph(edges, **kwargs) -> DependenceGraph:
    g = DependenceGraph(**kwargs)
    for tid, deps in enumerate(edges):
        g.add_task(tid, deps)
    return g


class CountingGraph(DependenceGraph):
    """DependenceGraph that counts BFS traversals (the operation the
    label fast path exists to eliminate)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.bfs_calls = 0

    def ancestors_of(self, task_id: int) -> set[int]:
        self.bfs_calls += 1
        return super().ancestors_of(task_id)


class CountingLabelStore(dict):
    """Label dict instrumented to count lookups — the *only* data
    structure a query is allowed to touch."""

    gets = 0

    def get(self, key, default=None):
        CountingLabelStore.gets += 1
        return super().get(key, default)


# ----------------------------------------------------------------------
# exactness: labels agree with brute-force BFS
# ----------------------------------------------------------------------
class TestExactness:
    @given(random_dags())
    def test_precedes_matches_bfs_on_random_dags(self, edges):
        g = build_graph(edges, maintain_labels=True)
        om = g.order_maintainer
        assert om is not None
        n = len(edges)
        for b in range(n):
            bfs_ancestors = g.ancestors_of(b)
            for a in range(n):
                want = a in bfs_ancestors
                assert om.precedes(a, b) is want, (a, b, edges)
            # the decoded bitmap is the whole ancestor set at once
            assert om.ancestors(b) == bfs_ancestors

    @given(random_dags())
    def test_label_invariants(self, edges):
        g = build_graph(edges, maintain_labels=True)
        om = g.order_maintainer
        levels = g.levels()
        for tid, deps in enumerate(edges):
            label = om.label(tid)
            assert label.index == tid
            assert label.level == levels[tid]
            ancestors = g.ancestors_of(tid)
            assert label.low == min(ancestors | {tid})
            # reach includes the task's own bit
            assert (label.reach >> tid) & 1

    @given(random_programs())
    @settings(max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    def test_runtime_labels_match_bfs(self, program):
        """Labels assigned during real launches (through every coherence
        algorithm's reported dependences) decode to the BFS closure."""
        tree, initial, stream = program
        rt = Runtime(tree, initial, algorithm="raycast",
                     precedence_oracle=True)
        rt.replay(stream)
        om = rt.graph.order_maintainer
        assert om is not None and rt.order is not None
        for tid in rt.graph.task_ids:
            assert om.ancestors(tid) == rt.graph.ancestors_of(tid)

    def test_unlabelled_and_negative_ids(self):
        om = OrderMaintainer()
        om.assign(0, [])
        assert om.precedes(0, 5) is None       # unlabelled target: fall back
        assert om.precedes(5, 0) is False      # unlabelled source: exact no
        assert om.precedes(INITIAL_TASK_ID, 0) is False
        assert om.reach_mask(INITIAL_TASK_ID) == 0
        assert om.ancestors(7) is None
        assert om.precedes(0, 0) is False      # strict order: irreflexive


# ----------------------------------------------------------------------
# the no-traversal proof: constant lookups per query, zero BFS
# ----------------------------------------------------------------------
class TestNoTraversal:
    @pytest.mark.parametrize("n", [8, 64, 512])
    def test_constant_lookups_per_query(self, n):
        """Cost per query must not grow with the graph: at most two label
        lookups (source + target), never a walk over the structure."""
        om = OrderMaintainer()
        om._labels = CountingLabelStore()
        for t in range(n):
            om.assign(t, [t - 1] if t else [])
        CountingLabelStore.gets = 0
        queries = 0
        for a in range(0, n, 7):
            for b in range(0, n, 5):
                om.precedes(a, b)
                queries += 1
        assert CountingLabelStore.gets <= 2 * queries

    def test_oracle_never_walks_the_graph(self):
        g = CountingGraph(maintain_labels=True)
        for t in range(200):
            g.add_task(t, [t - 1] if t else [])
        oracle = PrecedenceOracle(g.order_maintainer)
        for a in range(0, 200, 3):
            for b in range(0, 200, 3):
                oracle.precedes(a, b)
        assert g.bfs_calls == 0
        assert oracle.comparisons == oracle.queries > 0

    def test_soundness_check_scaling_2k_chain(self):
        """The 2k-task soundness check: zero BFS with labels, one BFS per
        distinct later task without — and measurably faster wall-clock."""
        n = 2048
        chain = [[t - 1] if t else [] for t in range(n)]
        pairs = [(0, j) for j in range(1, n)]

        labelled = CountingGraph(maintain_labels=True)
        for t, deps in enumerate(chain):
            labelled.add_task(t, deps)
        t0 = time.perf_counter()
        assert labelled.missing_pairs(pairs) == []
        labelled_seconds = time.perf_counter() - t0
        assert labelled.bfs_calls == 0

        plain = CountingGraph(maintain_labels=False)
        for t, deps in enumerate(chain):
            plain.add_task(t, deps)
        t0 = time.perf_counter()
        assert plain.missing_pairs(pairs) == []
        plain_seconds = time.perf_counter() - t0
        assert plain.bfs_calls == n - 1

        # On a 2k chain the BFS path does ~n²/2 node visits versus the
        # label path's n bit tests; any sane machine shows the gap.
        assert labelled_seconds < plain_seconds


# ----------------------------------------------------------------------
# the PrecedenceOracle front-end
# ----------------------------------------------------------------------
class TestPrecedenceOracle:
    def _diamond_oracle(self):
        g = build_graph([[], [0], [0], [1, 2]], maintain_labels=True)
        return PrecedenceOracle(g.order_maintainer)

    def test_covered_counts_hits_and_misses(self):
        oracle = self._diamond_oracle()
        mask = oracle.reach_mask(3)
        assert oracle.covered(mask, 0) and oracle.covered(mask, 3)
        assert not oracle.covered(mask, 4)
        assert not oracle.covered(mask, INITIAL_TASK_ID)
        assert oracle.hits == 2 and oracle.misses == 2

    def test_transitive_reduce_diamond(self):
        oracle = self._diamond_oracle()
        kept, dropped = oracle.transitive_reduce({0, 1, 2, 3})
        assert kept == {3}
        assert sorted(dropped) == [0, 1, 2]

    def test_transitive_reduce_keeps_incomparable(self):
        oracle = self._diamond_oracle()
        kept, dropped = oracle.transitive_reduce({1, 2})
        assert kept == {1, 2} and dropped == []

    def test_transitive_reduce_short_circuits(self):
        oracle = self._diamond_oracle()
        assert oracle.transitive_reduce(set()) == (set(), [])
        assert oracle.transitive_reduce({2}) == ({2}, [])

    def test_transitive_reduce_ignores_unlabelled(self):
        oracle = self._diamond_oracle()
        kept, dropped = oracle.transitive_reduce({3, 99})
        assert kept == {3, 99} and dropped == []

    @given(random_dags())
    @settings(max_examples=30)
    def test_transitive_reduce_preserves_closure(self, edges):
        """Dropping covered deps never changes the transitive closure:
        the closure of (kept ∪ their ancestors) equals the original."""
        g = build_graph(edges, maintain_labels=True)
        oracle = PrecedenceOracle(g.order_maintainer)
        deps = set(range(0, len(edges), 2))
        kept, dropped = oracle.transitive_reduce(set(deps))

        def closure(ids):
            out = set(ids)
            for t in ids:
                out |= g.ancestors_of(t)
            return out

        assert closure(deps) == closure(kept)
        assert kept.isdisjoint(dropped)
        assert kept | set(dropped) == deps

    def test_stats_and_publish(self):
        oracle = self._diamond_oracle()
        oracle.precedes(0, 3)
        oracle.covered(oracle.reach_mask(3), 1)
        registry = MetricsRegistry()
        oracle.publish_to(registry)
        snap = registry.snapshot()
        assert snap["order.labels"] == 4
        assert snap["order.queries"] == 1
        assert snap["order.hits"] == 1
        assert "PrecedenceOracle" in repr(oracle)


# ----------------------------------------------------------------------
# environment knobs and graph integration
# ----------------------------------------------------------------------
class TestConfiguration:
    def test_env_flags(self, monkeypatch):
        monkeypatch.delenv(ENV_DISABLE, raising=False)
        monkeypatch.delenv(ENV_ENABLE, raising=False)
        assert order_maintenance_enabled()
        assert not scan_pruning_enabled(None)
        assert scan_pruning_enabled(True)
        assert not scan_pruning_enabled(False)
        assert not differential_enabled()

        monkeypatch.setenv(ENV_ENABLE, "1")
        assert scan_pruning_enabled(None)

        monkeypatch.setenv(ENV_DISABLE, "1")
        assert not order_maintenance_enabled()
        assert not scan_pruning_enabled(True)  # escape hatch wins

    def test_disable_env_reaches_graphs_and_runtimes(self, monkeypatch,
                                                     fig1):
        monkeypatch.setenv(ENV_DISABLE, "1")
        g = DependenceGraph()
        g.add_task(0, [])
        assert g.order_maintainer is None
        tree, P, G = fig1
        from tests.conftest import fig1_initial
        rt = Runtime(tree, fig1_initial(tree), algorithm="painter",
                     precedence_oracle=True)
        assert rt.order is None

    def test_negative_ids_degrade_to_bfs(self):
        g = DependenceGraph(maintain_labels=True)
        g.add_task(-1, [])
        assert g.order_maintainer is None
        g.add_task(0, [])
        g.add_task(1, [0])
        # helpers still answer correctly via the BFS fallback
        assert g.contains_transitively([(0, 1)])
        assert g.missing_pairs([(1, 0)]) == [(1, 0)]

    @given(random_dags())
    @settings(max_examples=25)
    def test_helpers_agree_with_and_without_labels(self, edges):
        with_labels = build_graph(edges, maintain_labels=True)
        without = build_graph(edges, maintain_labels=False)
        n = len(edges)
        pairs = [(a, b) for a in range(n) for b in range(n) if a != b]
        assert with_labels.missing_pairs(pairs) == without.missing_pairs(pairs)
        covered = [p for p in pairs if p not in set(without.missing_pairs(pairs))]
        if covered:
            assert with_labels.contains_transitively(covered)

    @given(random_dags())
    @settings(max_examples=25)
    def test_differential_mode_passes_on_correct_labels(self, edges):
        g = build_graph(edges, maintain_labels=True, differential=True)
        n = len(edges)
        pairs = [(a, b) for a in range(n) for b in range(n) if a != b]
        g.missing_pairs(pairs)  # must not raise

    def test_differential_mode_catches_corrupt_labels(self):
        g = build_graph([[], [0], [1]], maintain_labels=True,
                        differential=True)
        # sabotage: claim task 0 does not reach task 2
        label = g.order_maintainer.label(2)
        label.reach &= ~1
        with pytest.raises(AssertionError, match="precedence differential"):
            g.contains_transitively([(0, 2)])
