"""Tests for the Runtime context and the sequential reference executor."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, IndexSpace, RegionRequirement,
                   RegionTree, Runtime, SequentialExecutor, TaskError,
                   TaskStream, reduce)

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


class TestSequentialExecutor:
    def test_missing_initial_rejected(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            SequentialExecutor(tree, {"up": np.zeros(12, dtype=np.int64)})

    def test_bad_shape_rejected(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            SequentialExecutor(tree, {"up": np.zeros(5),
                                      "down": np.zeros(12)})

    def test_read_buffers_protected(self):
        tree, P, _ = make_fig1_tree()
        ex = SequentialExecutor(tree, fig1_initial(tree))
        stream = TaskStream()

        def evil(arr):
            arr[:] = 0
        stream.append("evil", [RegionRequirement(P[0], "up", READ)], evil)
        with pytest.raises(ValueError):
            ex.run_stream(stream)

    def test_reduction_applied_eagerly(self):
        tree, P, _ = make_fig1_tree()
        ex = SequentialExecutor(tree, fig1_initial(tree))
        stream = TaskStream()

        def add5(arr):
            arr += 5
        stream.append("r", [RegionRequirement(P[0], "up", reduce("sum"))],
                      add5)
        ex.run_stream(stream)
        assert list(ex.field("up")[:4]) == [5, 6, 7, 8]

    def test_fields_snapshot_isolated(self):
        tree, _, _ = make_fig1_tree()
        ex = SequentialExecutor(tree, fig1_initial(tree))
        snap = ex.fields()
        snap["up"][:] = -1
        assert ex.field("up")[0] == 0


class TestRuntime:
    def test_unknown_algorithm(self):
        tree, _, _ = make_fig1_tree()
        from repro import CoherenceError
        with pytest.raises(CoherenceError):
            Runtime(tree, fig1_initial(tree), algorithm="z-buffer")

    def test_initial_validation(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            Runtime(tree, {"up": np.zeros(12)})
        with pytest.raises(TaskError):
            Runtime(tree, {"up": np.zeros(3), "down": np.zeros(12)})

    def test_launch_records_graph(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        t = rt.launch("first", [RegionRequirement(P[0], "up", READ_WRITE)])
        assert t.task_id == 0
        assert rt.graph.dependences_of(0) == set()
        assert rt.tasks[0] is t

    def test_read_buffer_write_protected(self):
        tree, P, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def evil(arr):
            arr[:] = 0
        with pytest.raises(ValueError):
            rt.launch("evil", [RegionRequirement(P[0], "up", READ)], evil)

    def test_foreign_region_rejected(self):
        tree, _, _ = make_fig1_tree()
        other, P2, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        with pytest.raises(TaskError):
            rt.launch("x", [RegionRequirement(P2[0], "up", READ)])

    def test_interfering_args_rejected_at_launch(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        with pytest.raises(TaskError):
            rt.launch("bad", [RegionRequirement(P[0], "up", READ_WRITE),
                              RegionRequirement(G[0], "up", READ)])

    def test_index_launch(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def body_factory(i):
            def body(parr, garr):
                parr += i
                garr += 1
            return body
        tasks = rt.index_launch(
            "t1", P, "up", READ_WRITE,
            body_factory=body_factory,
            extra=lambda i: [RegionRequirement(G[i], "down", reduce("sum"))])
        assert len(tasks) == 3
        assert [t.name for t in tasks] == ["t1[0]", "t1[1]", "t1[2]"]
        up = rt.read_field("up")
        assert list(up[4:8]) == [5, 6, 7, 8]  # arange + i=1

    def test_cost_log(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), record_costs=True)
        rt.replay(fig1_stream(tree, P, G, iterations=1))
        assert len(rt.cost_log) == 6
        assert all(c.total_ops > 0 for c in rt.cost_log)
        assert all(c.touches for c in rt.cost_log)

    def test_replay_equals_manual_launches(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=2)
        rt1 = Runtime(tree, fig1_initial(tree))
        rt1.replay(stream)
        rt2 = Runtime(tree, fig1_initial(tree))
        for task in stream:
            rt2.launch(task.name, task.requirements, task.body)
        assert np.array_equal(rt1.read_field("up"), rt2.read_field("up"))
        assert np.array_equal(rt1.read_field("down"), rt2.read_field("down"))

    @pytest.mark.parametrize("algo", ["painter", "tree_painter", "warnock",
                                      "raycast"])
    def test_algorithm_for(self, algo):
        tree, _, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        assert rt.algorithm_for("up").name == algo
        assert rt.algorithm_name == algo
