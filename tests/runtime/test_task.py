"""Tests for tasks, region requirements, and the aliasing restriction."""

import numpy as np
import pytest

from repro import (READ, READ_WRITE, RegionRequirement, TaskError,
                   TaskStream, reduce)
from repro.runtime.task import Task, validate_requirements

from tests.conftest import make_fig1_tree


class TestRegionRequirement:
    def test_unknown_field_rejected(self):
        tree, P, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            RegionRequirement(P[0], "sideways", READ)

    def test_interferes(self):
        tree, P, G = make_fig1_tree()
        a = RegionRequirement(P[0], "up", READ_WRITE)
        assert a.interferes(RegionRequirement(G[0], "up", READ))  # overlap at 3
        assert not a.interferes(RegionRequirement(P[1], "up", READ_WRITE))
        assert not a.interferes(RegionRequirement(P[0], "down", READ_WRITE))
        b = RegionRequirement(P[0], "up", READ)
        assert not b.interferes(RegionRequirement(G[0], "up", READ))


class TestTaskValidation:
    def test_requires_requirements(self):
        with pytest.raises(TaskError):
            Task(0, "empty", ())

    def test_aliased_interfering_args_rejected(self):
        """Paper section 4: region arguments must be disjoint unless both
        read or both reduce with the same operator."""
        tree, P, G = make_fig1_tree()
        with pytest.raises(TaskError):
            validate_requirements([
                RegionRequirement(P[0], "up", READ_WRITE),
                RegionRequirement(G[0], "up", READ)])

    def test_aliased_reads_allowed(self):
        tree, P, G = make_fig1_tree()
        validate_requirements([
            RegionRequirement(P[0], "up", READ),
            RegionRequirement(G[0], "up", READ)])

    def test_aliased_same_reductions_allowed(self):
        tree, P, G = make_fig1_tree()
        validate_requirements([
            RegionRequirement(P[0], "up", reduce("sum")),
            RegionRequirement(G[0], "up", reduce("sum"))])

    def test_aliased_different_reductions_rejected(self):
        tree, P, G = make_fig1_tree()
        with pytest.raises(TaskError):
            validate_requirements([
                RegionRequirement(P[0], "up", reduce("sum")),
                RegionRequirement(G[0], "up", reduce("max"))])

    def test_different_fields_always_allowed(self):
        tree, P, G = make_fig1_tree()
        validate_requirements([
            RegionRequirement(P[0], "up", READ_WRITE),
            RegionRequirement(G[0], "down", READ_WRITE)])

    def test_mixed_trees_rejected(self):
        tree1, P1, _ = make_fig1_tree()
        tree2, P2, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            validate_requirements([
                RegionRequirement(P1[0], "up", READ),
                RegionRequirement(P2[1], "up", READ)])


class TestTaskStream:
    def test_dense_ids(self):
        tree, P, _ = make_fig1_tree()
        stream = TaskStream()
        t0 = stream.append("a", [RegionRequirement(P[0], "up", READ)])
        t1 = stream.append("b", [RegionRequirement(P[1], "up", READ)])
        assert (t0.task_id, t1.task_id) == (0, 1)
        assert len(stream) == 2
        assert stream[1] is t1
        assert [t.name for t in stream] == ["a", "b"]

    def test_extend_from_renumbers(self):
        tree, P, _ = make_fig1_tree()
        a, b = TaskStream(), TaskStream()
        a.append("x", [RegionRequirement(P[0], "up", READ)])
        b.append("y", [RegionRequirement(P[1], "up", READ)])
        a.extend_from(b)
        assert [t.task_id for t in a] == [0, 1]
        assert a[1].name == "y"


class TestFieldGroups:
    def test_for_fields_expands(self):
        tree, P, _ = make_fig1_tree()
        reqs = RegionRequirement.for_fields(P[0], ("up", "down"), READ_WRITE)
        assert [r.field for r in reqs] == ["up", "down"]
        assert all(r.region is P[0] for r in reqs)
        validate_requirements(reqs)

    def test_for_fields_empty_rejected(self):
        tree, P, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            RegionRequirement.for_fields(P[0], (), READ_WRITE)

    def test_for_fields_in_launch(self):
        import numpy as np
        from repro import Runtime
        from tests.conftest import fig1_initial
        tree, P, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def body(up, down):
            up += 1
            down[:] = up
        rt.launch("both", RegionRequirement.for_fields(
            P[0], ("up", "down"), READ_WRITE), body)
        assert list(rt.read_field("down")[:4]) == [1, 2, 3, 4]
