"""Tests for dependence graphs, the oracle, and schedule metrics."""

import pytest

from repro import (READ, READ_WRITE, DependenceGraph, RegionRequirement,
                   TaskStream, oracle_dependences, reduce)
from repro.analysis import profile_graph
from repro.runtime.dependence import schedule_levels

from tests.conftest import make_fig1_tree


def diamond() -> DependenceGraph:
    g = DependenceGraph()
    g.add_task(0, [])
    g.add_task(1, [0])
    g.add_task(2, [0])
    g.add_task(3, [1, 2])
    return g


class TestDependenceGraph:
    def test_add_and_query(self):
        g = diamond()
        assert g.dependences_of(3) == {1, 2}
        assert g.task_ids == [0, 1, 2, 3]
        assert len(g) == 4
        assert g.edge_count() == 4

    def test_forward_dependence_rejected(self):
        g = DependenceGraph()
        g.add_task(0, [])
        with pytest.raises(ValueError):
            g.add_task(1, [2])
        with pytest.raises(ValueError):
            g.add_task(1, [1])

    def test_unknown_dependence_rejected(self):
        g = DependenceGraph()
        g.add_task(5, [])
        with pytest.raises(ValueError):
            g.add_task(6, [4])

    def test_levels_and_critical_path(self):
        g = diamond()
        assert g.levels() == {0: 0, 1: 1, 2: 1, 3: 2}
        assert g.critical_path_length() == 3
        assert g.max_width() == 2
        assert schedule_levels(g) == [[0], [1, 2], [3]]

    def test_empty_graph(self):
        g = DependenceGraph()
        assert g.critical_path_length() == 0
        assert g.max_width() == 0
        assert schedule_levels(g) == []

    def test_ancestors(self):
        g = diamond()
        assert g.ancestors_of(3) == {0, 1, 2}
        assert g.ancestors_of(0) == set()

    def test_transitive_containment(self):
        g = DependenceGraph()
        g.add_task(0, [])
        g.add_task(1, [0])
        g.add_task(2, [1])
        # (0, 2) holds only transitively
        assert g.contains_transitively([(0, 2)])
        assert g.missing_pairs([(0, 2)]) == []
        g2 = DependenceGraph()
        g2.add_task(0, [])
        g2.add_task(1, [])
        assert not g2.contains_transitively([(0, 1)])
        assert g2.missing_pairs([(0, 1)]) == [(0, 1)]

    def test_profile(self):
        p = profile_graph(diamond())
        assert p.tasks == 4 and p.edges == 4
        assert p.critical_path == 3 and p.max_width == 2
        assert p.avg_parallelism == pytest.approx(4 / 3)
        assert "4 tasks" in str(p)


class TestOracle:
    def test_read_read_not_dependent(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ)])
        s.append("b", [RegionRequirement(P[0], "up", READ)])
        assert oracle_dependences(list(s)) == set()

    def test_write_chains(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("b", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("c", [RegionRequirement(P[1], "up", READ_WRITE)])
        assert oracle_dependences(list(s)) == {(0, 1)}

    def test_cross_partition_overlap(self):
        tree, P, G = make_fig1_tree()
        s = TaskStream()
        s.append("w", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("g", [RegionRequirement(G[0], "up", reduce("sum"))])
        # G[0] = {3,4} overlaps P[0] = {0..3}
        assert oracle_dependences(list(s)) == {(0, 1)}

    def test_field_isolation(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("b", [RegionRequirement(P[0], "down", READ_WRITE)])
        assert oracle_dependences(list(s)) == set()
