"""Tests for dependence graphs, the oracle, and schedule metrics."""

import pytest
from hypothesis import given, settings

from repro import (READ, READ_WRITE, DependenceGraph, RegionRequirement,
                   Runtime, TaskStream, oracle_dependences, reduce)
from repro.analysis import profile_graph
from repro.runtime.dependence import schedule_levels

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree
from tests.runtime.test_order import random_dags


def diamond() -> DependenceGraph:
    g = DependenceGraph()
    g.add_task(0, [])
    g.add_task(1, [0])
    g.add_task(2, [0])
    g.add_task(3, [1, 2])
    return g


class TestDependenceGraph:
    def test_add_and_query(self):
        g = diamond()
        assert g.dependences_of(3) == {1, 2}
        assert g.task_ids == [0, 1, 2, 3]
        assert len(g) == 4
        assert g.edge_count() == 4

    def test_forward_dependence_rejected(self):
        g = DependenceGraph()
        g.add_task(0, [])
        with pytest.raises(ValueError):
            g.add_task(1, [2])
        with pytest.raises(ValueError):
            g.add_task(1, [1])

    def test_unknown_dependence_rejected(self):
        g = DependenceGraph()
        g.add_task(5, [])
        with pytest.raises(ValueError):
            g.add_task(6, [4])

    def test_levels_and_critical_path(self):
        g = diamond()
        assert g.levels() == {0: 0, 1: 1, 2: 1, 3: 2}
        assert g.critical_path_length() == 3
        assert g.max_width() == 2
        assert schedule_levels(g) == [[0], [1, 2], [3]]

    def test_empty_graph(self):
        g = DependenceGraph()
        assert g.critical_path_length() == 0
        assert g.max_width() == 0
        assert schedule_levels(g) == []

    def test_ancestors(self):
        g = diamond()
        assert g.ancestors_of(3) == {0, 1, 2}
        assert g.ancestors_of(0) == set()

    def test_transitive_containment(self):
        g = DependenceGraph()
        g.add_task(0, [])
        g.add_task(1, [0])
        g.add_task(2, [1])
        # (0, 2) holds only transitively
        assert g.contains_transitively([(0, 2)])
        assert g.missing_pairs([(0, 2)]) == []
        g2 = DependenceGraph()
        g2.add_task(0, [])
        g2.add_task(1, [])
        assert not g2.contains_transitively([(0, 1)])
        assert g2.missing_pairs([(0, 1)]) == [(0, 1)]

    def test_profile(self):
        p = profile_graph(diamond())
        assert p.tasks == 4 and p.edges == 4
        assert p.critical_path == 3 and p.max_width == 2
        assert p.avg_parallelism == pytest.approx(4 / 3)
        assert "4 tasks" in str(p)

    @given(random_dags())
    @settings(max_examples=40)
    def test_levels_respect_every_edge(self, edges):
        """A task's level strictly exceeds each dependence's level, and
        equals exactly 1 + the deepest one (longest path, not hop
        count)."""
        g = DependenceGraph()
        for tid, deps in enumerate(edges):
            g.add_task(tid, deps)
        levels = g.levels()
        for tid, deps in enumerate(edges):
            for d in deps:
                assert levels[d] < levels[tid]
            want = 0 if not deps else 1 + max(levels[d] for d in deps)
            assert levels[tid] == want


class CountingLevelsGraph(DependenceGraph):
    """Counts full longest-path passes — the unit the cache memoizes."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.computes = 0

    def _compute_levels(self):
        self.computes += 1
        return super()._compute_levels()


class TestLevelsCache:
    def test_consumers_share_one_pass(self):
        g = CountingLevelsGraph()
        for tid, deps in enumerate([[], [0], [0], [1, 2]]):
            g.add_task(tid, deps)
        g.levels()
        g.critical_path_length()
        g.max_width()
        schedule_levels(g)
        assert g.computes == 1

    def test_add_task_invalidates(self):
        g = CountingLevelsGraph()
        g.add_task(0, [])
        assert g.levels() == {0: 0}
        g.add_task(1, [0])
        assert g.levels() == {0: 0, 1: 1}
        assert g.computes == 2
        # repeated queries after mutation still cost one pass
        g.critical_path_length()
        g.max_width()
        assert g.computes == 2


class TestTransitivePruning:
    """The precedence oracle drops direct edges but never paths."""

    def test_edge_count_shrinks_closure_does_not(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        plain = Runtime(tree, fig1_initial(tree), algorithm="painter")
        plain.replay(stream)
        pruned = Runtime(tree, fig1_initial(tree), algorithm="painter",
                         precedence_oracle=True)
        pruned.replay(stream)
        assert pruned.graph.edge_count() < plain.graph.edge_count()
        want = oracle_dependences(list(stream))
        assert pruned.graph.missing_pairs(want) == []
        for tid in plain.graph.task_ids:
            assert pruned.graph.ancestors_of(tid) == \
                plain.graph.ancestors_of(tid)


class TestOracle:
    def test_read_read_not_dependent(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ)])
        s.append("b", [RegionRequirement(P[0], "up", READ)])
        assert oracle_dependences(list(s)) == set()

    def test_write_chains(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("b", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("c", [RegionRequirement(P[1], "up", READ_WRITE)])
        assert oracle_dependences(list(s)) == {(0, 1)}

    def test_cross_partition_overlap(self):
        tree, P, G = make_fig1_tree()
        s = TaskStream()
        s.append("w", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("g", [RegionRequirement(G[0], "up", reduce("sum"))])
        # G[0] = {3,4} overlaps P[0] = {0..3}
        assert oracle_dependences(list(s)) == {(0, 1)}

    def test_field_isolation(self):
        tree, P, _ = make_fig1_tree()
        s = TaskStream()
        s.append("a", [RegionRequirement(P[0], "up", READ_WRITE)])
        s.append("b", [RegionRequirement(P[0], "down", READ_WRITE)])
        assert oracle_dependences(list(s)) == set()
