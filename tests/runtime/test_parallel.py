"""Tests for the parallel executor: any dependence-respecting schedule must
match sequential execution."""

import threading
import time

import numpy as np
import pytest

from repro import (ALGORITHMS, READ_WRITE, DependenceGraph, IndexSpace,
                   RegionRequirement, RegionTree, Runtime, TaskError,
                   TaskStream, reduce)
from repro.runtime.executor import SequentialExecutor
from repro.runtime.parallel import ExecutionLog, ParallelExecutor

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import (fig1_initial, fig1_stream, make_fig1_tree,
                            random_programs)


def analyzed(tree, initial, stream, algorithm="raycast"):
    """Run the analysis (bodies stripped — dependences are value
    independent) and return the stream's tasks plus the graph."""
    rt = Runtime(tree, initial, algorithm=algorithm)
    for task in stream:
        rt.launch(task.name, task.requirements, None, task.point)
    return list(stream), rt.graph


class TestParallelCorrectness:
    @pytest.mark.parametrize("algo", list(ALGORITHMS))
    def test_matches_sequential_fig1(self, algo):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=3)
        tasks, graph = analyzed(tree, fig1_initial(tree), stream, algo)

        reference = SequentialExecutor(tree, fig1_initial(tree))
        reference.run_stream(stream)

        for _ in range(5):  # shake several schedules
            px = ParallelExecutor(tree, fig1_initial(tree), max_workers=4)
            px.run(tasks, graph)
            for field in ("up", "down"):
                assert np.array_equal(px.field(field),
                                      reference.field(field)), (algo, field)

    def test_matches_sequential_on_apps(self):
        from repro.apps import CircuitApp
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=12)
        stream = TaskStream()
        stream.extend_from(app.init_stream())
        for _ in range(2):
            stream.extend_from(app.iteration_stream())
        tasks, graph = analyzed(app.tree, app.initial, stream)
        reference = SequentialExecutor(app.tree, app.initial)
        reference.run_stream(stream)
        px = ParallelExecutor(app.tree, app.initial, max_workers=4)
        px.run(tasks, graph)
        for field in app.tree.field_space.names:
            np.testing.assert_allclose(px.field(field),
                                       reference.field(field))

    def test_parallelism_actually_happens(self):
        """Independent slow tasks must overlap in time."""
        tree = RegionTree(16, {"x": np.int64})
        P = tree.root.create_partition(
            "P", [IndexSpace.from_range(i * 4, (i + 1) * 4)
                  for i in range(4)], disjoint=True, complete=True)
        barrier = threading.Barrier(4, timeout=10)
        stream = TaskStream()

        def body(arr):
            barrier.wait()  # deadlocks unless all 4 run concurrently
            arr += 1
        for i in range(4):
            stream.append(f"t[{i}]",
                          [RegionRequirement(P[i], "x", READ_WRITE)], body)
        tasks, graph = analyzed(tree, {"x": np.zeros(16, dtype=np.int64)},
                                stream)
        px = ParallelExecutor(tree, {"x": np.zeros(16, dtype=np.int64)},
                              max_workers=4)
        log = ExecutionLog()
        px.run(tasks, graph, log)
        assert log.max_in_flight == 4
        assert list(px.field("x")) == [1] * 16

    def test_dependences_respected(self):
        """A chain of writes must execute in order even with many workers."""
        tree = RegionTree(4, {"x": np.int64})
        part = tree.root.create_partition("P", [tree.root.space])
        stream = TaskStream()
        for k in range(8):
            def body(arr, k=k):
                arr[:] = arr * 10 + k
            stream.append(f"w{k}",
                          [RegionRequirement(part[0], "x", READ_WRITE)],
                          body)
        tasks, graph = analyzed(tree, {"x": np.zeros(4, dtype=np.int64)},
                                stream)
        px = ParallelExecutor(tree, {"x": np.zeros(4, dtype=np.int64)},
                              max_workers=8)
        px.run(tasks, graph)
        assert list(px.field("x")) == [1234567] * 4

    def test_body_exception_propagates(self):
        tree = RegionTree(4, {"x": np.int64})
        part = tree.root.create_partition("P", [tree.root.space])
        stream = TaskStream()

        def boom(arr):
            raise ValueError("injected")
        stream.append("bad", [RegionRequirement(part[0], "x", READ_WRITE)],
                      boom)
        tasks, graph = analyzed(tree, {"x": np.zeros(4, dtype=np.int64)},
                                stream)
        px = ParallelExecutor(tree, {"x": np.zeros(4, dtype=np.int64)})
        with pytest.raises(ValueError, match="injected"):
            px.run(tasks, graph)


class TestParallelValidation:
    def test_graph_task_mismatch(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 1)
        tasks, graph = analyzed(tree, fig1_initial(tree), stream)
        px = ParallelExecutor(tree, fig1_initial(tree))
        with pytest.raises(TaskError):
            px.run(tasks[:-1], graph)

    def test_initial_validation(self):
        tree, _, _ = make_fig1_tree()
        with pytest.raises(TaskError):
            ParallelExecutor(tree, {"up": np.zeros(12)})
        with pytest.raises(TaskError):
            ParallelExecutor(tree, fig1_initial(tree), max_workers=0)

    def test_empty_run(self):
        tree, _, _ = make_fig1_tree()
        px = ParallelExecutor(tree, fig1_initial(tree))
        px.run([], DependenceGraph())
        assert np.array_equal(px.field("up"), np.arange(12))

    def test_execution_log(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 2)
        tasks, graph = analyzed(tree, fig1_initial(tree), stream)
        log = ExecutionLog()
        px = ParallelExecutor(tree, fig1_initial(tree), max_workers=3)
        px.run(tasks, graph, log)
        assert sorted(log.finish_order) == [t.task_id for t in tasks]
        assert len(log.start_order) == len(tasks)
        assert log.max_in_flight >= 1


class TestParallelProperty:
    """Any dependence-respecting schedule of a random program must match
    sequential execution (the executable definition of graph soundness)."""

    @settings(max_examples=20,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_programs(), st.sampled_from(["raycast", "warnock",
                                               "zbuffer"]))
    def test_random_programs_parallel(self, program, algo):
        tree, initial, stream = program
        tasks, graph = analyzed(tree, initial, stream, algorithm=algo)
        reference = SequentialExecutor(tree, initial)
        reference.run_stream(stream)
        px = ParallelExecutor(tree, initial, max_workers=4)
        px.run(tasks, graph)
        assert np.array_equal(px.field("x"), reference.field("x"))
