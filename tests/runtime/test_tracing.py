"""Tests for dynamic tracing (the Legion-tracing extension)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (ALGORITHMS, READ_WRITE, Runtime, TaskError, TaskStream,
                   RegionRequirement, reduce)
from repro.runtime.tracing import trace_signature

from tests.conftest import (fig1_initial, fig1_stream, make_fig1_tree,
                            random_trees)


def make_setup():
    tree, P, G = make_fig1_tree()
    return tree, P, G, fig1_stream(tree, P, G, iterations=1)


class TestSignature:
    def test_identical_streams_same_signature(self):
        tree, P, G = make_fig1_tree()
        a = fig1_stream(tree, P, G, 1)
        b = fig1_stream(tree, P, G, 1)
        assert trace_signature(a) == trace_signature(b)

    def test_different_privilege_changes_signature(self):
        tree, P, G = make_fig1_tree()
        a, b = TaskStream(), TaskStream()
        a.append("t", [RegionRequirement(P[0], "up", READ_WRITE)])
        b.append("t", [RegionRequirement(P[0], "up", reduce("sum"))])
        assert trace_signature(a) != trace_signature(b)

    def test_different_region_changes_signature(self):
        tree, P, G = make_fig1_tree()
        a, b = TaskStream(), TaskStream()
        a.append("t", [RegionRequirement(P[0], "up", READ_WRITE)])
        b.append("t", [RegionRequirement(P[1], "up", READ_WRITE)])
        assert trace_signature(a) != trace_signature(b)

    def test_different_point_changes_signature(self):
        """Launch points are part of the observable shape: sharded
        runtimes route tasks by point, so two streams differing only in
        points must not share a signature."""
        tree, P, G = make_fig1_tree()
        a, b = TaskStream(), TaskStream()
        a.append("t", [RegionRequirement(P[0], "up", READ_WRITE)], point=0)
        b.append("t", [RegionRequirement(P[0], "up", READ_WRITE)], point=1)
        assert trace_signature(a) != trace_signature(b)


@pytest.mark.parametrize("algo", list(ALGORITHMS))
class TestTracedExecution:
    def test_traced_equals_untraced(self, algo):
        tree, P, G, stream = make_setup()
        plain = Runtime(tree, fig1_initial(tree), algorithm=algo)
        traced = Runtime(tree, fig1_initial(tree), algorithm=algo)
        for _ in range(4):
            plain.replay(stream)
            traced.execute_trace("loop", stream)
        for field in ("up", "down"):
            assert np.array_equal(plain.read_field(field),
                                  traced.read_field(field)), (algo, field)

    def test_traced_graph_covers_oracle(self, algo):
        """Whatever the algorithm, the traced graph must stay sound."""
        from repro import TaskStream, oracle_dependences
        tree, P, G, stream = make_setup()
        traced = Runtime(tree, fig1_initial(tree), algorithm=algo)
        full = TaskStream()
        for _ in range(4):
            traced.execute_trace("loop", stream)
            full.extend_from(stream)
        oracle = oracle_dependences(list(full))
        assert traced.graph.missing_pairs(oracle) == []

    def test_traced_dependences_match(self, algo):
        if algo == "painter":
            pytest.skip("the naive painter's dependence sets grow every "
                        "iteration (nothing is pruned), so its templates "
                        "are not stationary — soundness is covered by "
                        "test_traced_graph_covers_oracle")
        tree, P, G, stream = make_setup()
        plain = Runtime(tree, fig1_initial(tree), algorithm=algo)
        traced = Runtime(tree, fig1_initial(tree), algorithm=algo)
        for _ in range(4):
            plain.replay(stream)
            traced.execute_trace("loop", stream)
        for tid in plain.graph.task_ids:
            assert plain.graph.dependences_of(tid) == \
                traced.graph.dependences_of(tid), (algo, tid)

    def test_replay_skips_dependence_work(self, algo):
        tree, P, G, stream = make_setup()
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        rt.execute_trace("loop", stream)   # untraced (arms capture)
        rt.execute_trace("loop", stream)   # capture
        rt.execute_trace("loop", stream)   # first replay, warm
        before = rt.meter.counters["intersection_tests"]
        rt.execute_trace("loop", stream)
        traced_cost = rt.meter.counters["intersection_tests"] - before

        rt2 = Runtime(tree, fig1_initial(tree), algorithm=algo)
        for _ in range(3):
            rt2.replay(stream)
        before = rt2.meter.counters["intersection_tests"]
        rt2.replay(stream)
        plain_cost = rt2.meter.counters["intersection_tests"] - before
        assert traced_cost <= plain_cost

    def test_trace_counters(self, algo):
        tree, P, G, stream = make_setup()
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        for _ in range(4):
            rt.execute_trace("loop", stream)
        assert rt.meter.counters["traces_captured"] == 1
        assert rt.meter.counters["traces_replayed"] == 2
        assert rt.tracer.trace("loop").replays == 2

    def test_validated_replay(self, algo):
        """validate=True replays with full analysis and cross-checks the
        memoized template — for a steady loop it must pass on every
        algorithm with stationary templates, and must *fail loudly* for
        the naive painter (whose dependence sets grow forever)."""
        tree, P, G, stream = make_setup()
        rt = Runtime(tree, fig1_initial(tree), algorithm=algo)
        rt.execute_trace("loop", stream)
        rt.execute_trace("loop", stream)
        if algo == "painter":
            with pytest.raises(TaskError, match="idempotency"):
                rt.execute_trace("loop", stream, validate=True)
        else:
            rt.execute_trace("loop", stream, validate=True)
            assert rt.meter.counters["traces_validated"] == 1


class TestTraceManagement:
    def test_signature_change_restarts_protocol(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        stream = fig1_stream(tree, P, G, 1)
        rt.execute_trace("loop", stream)   # arm
        rt.execute_trace("loop", stream)   # capture
        # a structurally different stream under the same name
        other = TaskStream()

        def w(arr):
            arr[:] = 1
        other.append("odd", [RegionRequirement(P[0], "up", READ_WRITE)], w)
        rt.execute_trace("loop", other)    # shape change: untraced, re-arm
        assert rt.meter.counters["traces_captured"] == 1
        rt.execute_trace("loop", other)    # recapture with the new shape
        assert rt.meter.counters["traces_captured"] == 2
        assert "traces_replayed" not in rt.meter.counters

    def test_point_change_does_not_replay_foreign_template(self):
        """Regression: two streams identical except for their launch
        points used to share a signature, so the second replayed the
        first's memoized template — even though the point drives shard
        assignment in ``ShardedRuntime``.  A point change must restart
        the trace protocol like any other shape change."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))

        def make(points):
            s = TaskStream()

            def w(arr):
                arr[:] = 1
            for p in points:
                s.append("t", [RegionRequirement(P[0], "up", READ_WRITE)],
                         w, point=p)
            return s

        a, b = make((0, 1)), make((2, 3))
        rt.execute_trace("loop", a)       # arm
        rt.execute_trace("loop", a)       # capture
        assert rt.meter.counters["traces_captured"] == 1
        rt.execute_trace("loop", b)       # different points: re-arm
        assert "traces_replayed" not in rt.meter.counters
        assert rt.meter.counters["traces_captured"] == 1
        rt.execute_trace("loop", b)       # recapture with the new points
        assert rt.meter.counters["traces_captured"] == 2
        assert "traces_replayed" not in rt.meter.counters

    def test_empty_stream_capture_and_replay(self):
        """An empty stream is a legal (degenerate) trace: arm, capture,
        and replay all run, launch nothing, and never divide-by-zero on
        the rebase base."""
        tree, _, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        empty = TaskStream()
        assert rt.execute_trace("none", empty) == []     # arm
        assert rt.execute_trace("none", empty) == []     # capture
        assert rt.tracer.trace("none").relative_deps == []
        assert rt.execute_trace("none", empty) == []     # replay
        assert rt.execute_trace("none", empty, validate=True) == []
        assert rt.meter.counters["traces_captured"] == 1
        assert rt.meter.counters["traces_replayed"] == 1
        assert rt.meter.counters["traces_validated"] == 1
        assert len(rt.tasks) == 0

    def test_shape_change_mid_loop_rearms_and_recaptures(self):
        """A shape change mid-loop drops the stale template; returning to
        the original shape must re-arm from scratch (the old capture is
        gone, not resurrected)."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        loop = fig1_stream(tree, P, G, 1)
        other = TaskStream()

        def w(arr):
            arr[:] = 7
        other.append("odd", [RegionRequirement(P[0], "up", READ_WRITE)], w)

        rt.execute_trace("loop", loop)    # arm A
        rt.execute_trace("loop", loop)    # capture A
        rt.execute_trace("loop", loop)    # replay A
        rt.execute_trace("loop", other)   # shape B: untraced, re-arm
        with pytest.raises(TaskError):
            rt.tracer.trace("loop")       # stale template dropped
        rt.execute_trace("loop", loop)    # back to shape A: untraced again
        assert rt.meter.counters["traces_captured"] == 1
        rt.execute_trace("loop", loop)    # recapture A
        assert rt.meter.counters["traces_captured"] == 2
        rt.execute_trace("loop", loop)    # replay the fresh template
        assert rt.meter.counters["traces_replayed"] == 2

    def test_validate_catches_corrupted_template(self):
        """validate=True recomputes the analysis and must reject a
        template whose memoized offsets no longer match."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        loop = fig1_stream(tree, P, G, 1)
        rt.execute_trace("loop", loop)
        rt.execute_trace("loop", loop)
        trace = rt.tracer.trace("loop")
        # corrupt one task's dependence offsets
        trace.relative_deps[-1] = (-999,)
        with pytest.raises(TaskError, match="failed validation"):
            rt.execute_trace("loop", loop, validate=True)

    def test_unknown_trace_lookup(self):
        tree, _, _ = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        from repro.runtime.tracing import TraceRecorder
        recorder = TraceRecorder(rt)
        with pytest.raises(TaskError):
            recorder.trace("missing")

    def test_multiple_named_traces(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree))
        s1 = fig1_stream(tree, P, G, 1)
        for _ in range(3):
            rt.execute_trace("one", s1)
        rt.execute_trace("two", s1)
        rt.execute_trace("two", s1)
        assert rt.tracer.names == ("one", "two")
        assert rt.tracer.trace("one").replays == 1
        assert rt.tracer.trace("two").replays == 0

    def test_cross_trace_dependences_rebase(self):
        """Dependences reaching before the trace (previous iteration) are
        re-based correctly on replay."""
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        stream = fig1_stream(tree, P, G, 1)
        rt.execute_trace("loop", stream)   # iter 0: untraced, arm
        rt.execute_trace("loop", stream)   # iter 1: capture (deps → iter 0)
        rt.execute_trace("loop", stream)   # iter 2: replay (deps → iter 1)
        # first task of the replayed iteration (id 12) depends on the t2
        # phase of the captured iteration (ids 9..11), plus possibly the
        # previous same-piece write (id 6)
        deps = rt.graph.dependences_of(12)
        assert {9, 10, 11} <= deps <= {6, 9, 10, 11}


class InternalOpRuntime(Runtime):
    """A runtime whose internal operations consume task ids (Legion-style
    refinement/mapping operations), so ids are *not* ``len(tasks)``-aligned.
    Ids come from the :attr:`Runtime.next_task_id` allocation authority."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._consumed = 0

    @property
    def next_task_id(self) -> int:
        return len(self._tasks) + self._consumed

    def internal_op(self) -> None:
        """Consume one task id for an internal (non-task) operation."""
        self.graph.add_task(self.next_task_id, set())
        self._consumed += 1


class TestCaptureRebaseRegression:
    """Regression: ``TraceRecorder`` used to rebase dependence offsets
    from ``len(rt.tasks)``, silently recording shifted templates whenever
    task ids are not dense and index-aligned.  The base must be the first
    launched task's *actual* id (capture/validate) and
    ``rt.next_task_id`` (replay)."""

    def test_intra_trace_offsets_survive_id_gaps(self):
        tree, P, G, stream = make_setup()
        gappy = InternalOpRuntime(tree, fig1_initial(tree),
                                  algorithm="raycast")
        plain = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        for rt in (gappy, plain):
            rt.execute_trace("loop", stream)      # arm
        gappy.internal_op()                       # id gap before the capture
        for rt in (gappy, plain):
            rt.execute_trace("loop", stream)      # capture
        # Offsets into the trace itself must be 0-based at the first task
        # regardless of gaps (pre-fix they came out shifted by the gap).
        # Offsets reaching *before* the trace are id-distances and
        # legitimately include the gap, so only same-trace offsets are
        # compared here.
        def intra(trace):
            return [tuple(o for o in offs if o >= 0)
                    for offs in trace.relative_deps]
        assert intra(gappy.tracer.trace("loop")) == \
            intra(plain.tracer.trace("loop"))

    def test_replay_rebases_through_interleaved_gaps(self):
        """Replayed and untraced launches interleave before the capture,
        and the id gap changes again between capture and replay — the
        memoized offsets must still resolve to the right tasks."""
        tree, P, G, loop = make_setup()
        other = TaskStream()

        def bump(arr):
            arr += 1
        other.append("other", [RegionRequirement(P[0], "up", READ_WRITE)],
                     bump)

        rt = InternalOpRuntime(tree, fig1_initial(tree), algorithm="raycast")
        ref = Runtime(tree, fig1_initial(tree), algorithm="raycast")

        def both(name, stream):
            rt.execute_trace(name, stream)
            ref.replay(stream)

        both("other", other)   # arm "other"
        both("other", other)   # capture "other"
        both("other", other)   # replayed launches before the loop trace
        # Each loop iteration is preceded by one id-consuming internal
        # operation — the same intervening context every time, so the
        # trace's idempotency assumption holds, but ids are never
        # len(tasks)-aligned and the memoized base must track actual ids.
        for _ in range(3):     # arm, capture, replay
            rt.internal_op()
            both("loop", loop)

        # map the gapped runtime's ids through program order and compare
        # the whole dependence graph against the dense reference
        order = {t.task_id: k for k, t in enumerate(rt.tasks)}
        assert len(rt.tasks) == len(ref.tasks)
        for k, task in enumerate(rt.tasks):
            got = {order.get(d, -1)
                   for d in rt.graph.dependences_of(task.task_id)}
            assert got == set(ref.graph.dependences_of(k)), (k, task.name)
        for field in ("up", "down"):
            assert np.array_equal(rt.read_field(field),
                                  ref.read_field(field))


class TestTracingProperty:
    """Random steady loops: traced execution must always preserve values
    and dependence *soundness*.

    Exact template stationarity is a property of the program, not the
    algorithm: a reduction recorded at an ancestor region is never
    occluded by a child's write, so its dependence set keeps growing and
    the capture-time template under-approximates later iterations' direct
    edges — while remaining covered through the previous iteration's
    tasks.  (That is precisely the idempotency caveat of Legion tracing;
    ``validate=True`` detects such programs.)  Hence the universal claims
    checked here are value equality and transitive oracle coverage.
    """

    @settings(max_examples=25,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(random_trees(), st.data())
    def test_random_steady_loops(self, tree, data):
        from repro import oracle_dependences

        regions = list(tree.walk())
        field = tree.field_space.names[0]
        n_tasks = data.draw(st.integers(1, 6))
        stream = TaskStream()
        privs = [READ_WRITE, reduce("sum"), reduce("max")]
        for t in range(n_tasks):
            region = regions[data.draw(st.integers(0, len(regions) - 1))]
            privilege = privs[data.draw(st.integers(0, 2))]
            if privilege.is_write:
                def body(arr, t=t):
                    arr[:] = arr + t + 1
            else:
                def body(arr, t=t):
                    arr += t
            stream.append(f"t{t}", [RegionRequirement(region, field,
                                                      privilege)], body)
        initial = {field: np.arange(tree.root.space.size, dtype=np.int64)}
        ITER = 4
        full = TaskStream()
        for _ in range(ITER):
            full.extend_from(stream)
        oracle = oracle_dependences(list(full))
        for algo in ("tree_painter", "warnock", "raycast", "zbuffer"):
            plain = Runtime(tree, initial, algorithm=algo)
            traced = Runtime(tree, initial, algorithm=algo)
            for _ in range(ITER):
                plain.replay(stream)
                traced.execute_trace("loop", stream)
            assert np.array_equal(plain.read_field(field),
                                  traced.read_field(field)), algo
            assert traced.graph.missing_pairs(oracle) == [], algo
