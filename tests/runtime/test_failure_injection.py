"""Failure injection: a task body that raises must not corrupt coherence.

The runtime commits a task's effects only after its body completes, so an
aborting body must leave every algorithm's state *observably unchanged*:
subsequent reads see the pre-failure values, and subsequent tasks analyze
against the pre-failure history.  (Materialize-time structural changes —
refinements, hoisted composite views, dominating-write reshaping — may
remain, but they are value-preserving.)
"""

import numpy as np
import pytest

from repro import (ALGORITHMS, READ, READ_WRITE, IndexSpace,
                   RegionRequirement, RegionTree, Runtime, reduce)


class BodyFailed(RuntimeError):
    pass


def boom(*buffers):
    raise BodyFailed("injected")


@pytest.fixture(params=list(ALGORITHMS))
def runtime(request):
    tree = RegionTree(16, {"x": np.int64})
    tree.root.create_partition(
        "P", [IndexSpace.from_range(i * 4, (i + 1) * 4) for i in range(4)],
        disjoint=True, complete=True)
    rt = Runtime(tree, {"x": np.arange(16, dtype=np.int64)},
                 algorithm=request.param)
    return rt


def piece(rt, i):
    return rt.tree.root.partition("P")[i]


class TestAbortedBodies:
    def test_aborted_write_preserves_values(self, runtime):
        before = runtime.read_field("x")
        with pytest.raises(BodyFailed):
            runtime.launch("bad",
                           [RegionRequirement(piece(runtime, 1), "x",
                                              READ_WRITE)], boom)
        assert np.array_equal(runtime.read_field("x"), before)

    def test_aborted_reduction_preserves_values(self, runtime):
        before = runtime.read_field("x")
        with pytest.raises(BodyFailed):
            runtime.launch("bad",
                           [RegionRequirement(piece(runtime, 2), "x",
                                              reduce("sum"))], boom)
        assert np.array_equal(runtime.read_field("x"), before)

    def test_aborted_task_not_recorded(self, runtime):
        with pytest.raises(BodyFailed):
            runtime.launch("bad",
                           [RegionRequirement(piece(runtime, 0), "x",
                                              READ_WRITE)], boom)
        assert len(runtime.tasks) == 0
        assert len(runtime.graph) == 0

    def test_runtime_usable_after_failure(self, runtime):
        with pytest.raises(BodyFailed):
            runtime.launch("bad",
                           [RegionRequirement(piece(runtime, 0), "x",
                                              READ_WRITE)], boom)

        def write9(arr):
            arr[:] = 9
        task = runtime.launch(
            "good", [RegionRequirement(piece(runtime, 0), "x", READ_WRITE)],
            write9)
        assert task.task_id == 0
        out = runtime.read_field("x")
        assert list(out[:4]) == [9] * 4
        assert list(out[4:]) == list(range(4, 16))

    def test_task_ids_stay_dense_after_failure(self, runtime):
        def ok(arr):
            arr += 1
        runtime.launch("a", [RegionRequirement(piece(runtime, 0), "x",
                                               READ_WRITE)], ok)
        with pytest.raises(BodyFailed):
            runtime.launch("bad", [RegionRequirement(piece(runtime, 1), "x",
                                                     READ_WRITE)], boom)
        t = runtime.launch("b", [RegionRequirement(piece(runtime, 1), "x",
                                                   READ_WRITE)], ok)
        assert t.task_id == 1
        assert [x.task_id for x in runtime.tasks] == [0, 1]

    def test_mid_stream_failure_coherent_with_reference(self, runtime):
        """Run a stream with one failing task; the surviving prefix+suffix
        must equal the same stream executed eagerly without the failure."""
        def add(k):
            def body(arr):
                arr += k
            return body
        runtime.launch("w0", [RegionRequirement(piece(runtime, 0), "x",
                                                READ_WRITE)], add(10))
        with pytest.raises(BodyFailed):
            runtime.launch("bad", [RegionRequirement(piece(runtime, 0), "x",
                                                     reduce("sum"))], boom)
        runtime.launch("w1", [RegionRequirement(piece(runtime, 0), "x",
                                                reduce("sum"))], add(100))
        out = runtime.read_field("x")
        assert list(out[:4]) == [110, 111, 112, 113]
