"""Tests for privileges and the interference relation (section 4)."""

import pytest

from repro import READ, READ_WRITE, Privilege, PrivilegeError, interferes, \
    reduce
from repro.privileges import PrivilegeKind
from repro.reductions import SUM


class TestConstruction:
    def test_constants(self):
        assert READ.is_read and not READ.is_write and not READ.is_reduce
        assert READ_WRITE.is_write and not READ_WRITE.is_read

    def test_reduce_factory(self):
        r = reduce("sum")
        assert r.is_reduce and r.redop is SUM
        assert reduce(SUM).redop is SUM

    def test_reduce_requires_operator(self):
        with pytest.raises(PrivilegeError):
            Privilege(PrivilegeKind.REDUCE)

    def test_non_reduce_rejects_operator(self):
        with pytest.raises(PrivilegeError):
            Privilege(PrivilegeKind.READ, SUM)

    def test_repr(self):
        assert repr(READ) == "read"
        assert repr(READ_WRITE) == "read-write"
        assert repr(reduce("sum")) == "reduce(sum)"


class TestInterference:
    """Section 4: the only non-interfering combinations are read/read and
    reduce_f/reduce_f with the same operator."""

    def test_read_read_ok(self):
        assert not interferes(READ, READ)

    def test_same_reduction_ok(self):
        assert not interferes(reduce("sum"), reduce("sum"))

    def test_different_reductions_interfere(self):
        assert interferes(reduce("sum"), reduce("max"))

    @pytest.mark.parametrize("other", [READ, reduce("sum"), READ_WRITE])
    def test_write_interferes_with_everything(self, other):
        assert interferes(READ_WRITE, other)
        assert interferes(other, READ_WRITE)

    def test_read_vs_reduce_interferes(self):
        assert interferes(READ, reduce("sum"))
        assert interferes(reduce("sum"), READ)

    def test_symmetry(self):
        privs = [READ, READ_WRITE, reduce("sum"), reduce("max")]
        for a in privs:
            for b in privs:
                assert interferes(a, b) == interferes(b, a)
