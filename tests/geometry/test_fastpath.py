"""Tests for the geometry fast path: interning, caching, batched tests."""

import pickle

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geometry import IndexSpace
from repro.geometry.fastpath import (ENV_DISABLE, GeometryCache,
                                     batch_overlaps, geometry_cache,
                                     geometry_cache_disabled,
                                     reset_geometry_cache)
from repro.obs import MetricsRegistry

from tests.conftest import index_spaces


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts (and leaves behind) a pristine enabled cache."""
    reset_geometry_cache(enabled=True)
    yield
    reset_geometry_cache()


def spaces(*ranges):
    return [IndexSpace.from_range(a, b) for a, b in ranges]


class TestInterning:
    def test_equal_content_shares_uid(self):
        cache = geometry_cache()
        a = IndexSpace.from_indices([1, 5, 9])
        b = IndexSpace.from_indices([9, 5, 1, 5])
        assert a is not b
        assert cache.uid_of(a) == cache.uid_of(b)

    def test_distinct_content_distinct_uid(self):
        cache = geometry_cache()
        a, b = spaces((0, 10), (0, 11))
        assert cache.uid_of(a) != cache.uid_of(b)

    def test_uid_memoized_on_instance(self):
        cache = geometry_cache()
        a = IndexSpace.from_range(0, 100)
        uid = cache.uid_of(a)
        assert a._uid == (cache._generation, uid)
        assert cache.uid_of(a) == uid

    def test_reset_distrusts_old_memos(self):
        cache = geometry_cache()
        a = IndexSpace.from_range(0, 10)
        old = cache.uid_of(a)
        cache.reset(enabled=True)
        assert cache.uid_of(a) is not None
        # fresh generation: the memo was recomputed, not trusted
        assert a._uid[0] == cache._generation
        assert old is not None  # the old value itself is irrelevant now

    def test_uid_not_pickled(self):
        cache = geometry_cache()
        a = IndexSpace.from_range(3, 17)
        cache.uid_of(a)
        restored = pickle.loads(pickle.dumps(a))
        assert restored == a
        assert restored._uid is None
        assert restored.bounds == a.bounds
        assert not restored.indices.flags.writeable

    def test_empty_space_pickles(self):
        restored = pickle.loads(pickle.dumps(IndexSpace.empty()))
        assert restored.is_empty and restored.bounds == (0, -1)


class TestOperationCache:
    def test_intersection_hit_returns_same_object(self):
        a, b = spaces((0, 100), (50, 150))
        first = a & b
        second = a & b
        assert first is second
        assert geometry_cache().hits >= 1

    def test_symmetric_ops_share_entries(self):
        cache = geometry_cache()
        a, b = spaces((0, 100), (50, 150))
        r1 = a & b
        r2 = b & a
        assert r1 is r2
        u1 = a | b
        u2 = b | a
        assert u1 is u2
        assert a.overlaps(b)
        before = cache.hits
        assert b.overlaps(a)
        assert cache.hits == before + 1

    def test_difference_is_order_sensitive(self):
        a, b = spaces((0, 100), (50, 150))
        assert (a - b) != (b - a)
        assert list((a - b).indices) == list(range(0, 50))
        assert list((b - a).indices) == list(range(100, 150))

    def test_cached_results_equal_raw(self):
        a = IndexSpace.from_indices([1, 3, 5, 7, 9])
        b = IndexSpace.from_indices([3, 4, 5, 6])
        for _ in range(2):  # second round served from cache
            assert (a & b) == a._intersection_raw(b)
            assert (a | b) == a._union_raw(b)
            assert (a - b) == a._difference_raw(b)
            assert a.overlaps(b) == a._overlaps_raw(b)
            assert a.isdisjoint(b) == (not a._overlaps_raw(b))

    def test_disabled_cache_computes_fresh(self):
        a, b = spaces((0, 100), (50, 150))
        with geometry_cache_disabled():
            r1 = a & b
            r2 = a & b
            assert r1 is not r2
            assert r1 == r2

    def test_false_overlap_is_cached(self):
        cache = geometry_cache()
        a, b = spaces((0, 10), (20, 30))
        assert not a.overlaps(b)
        misses = cache.misses
        assert not a.overlaps(b)
        assert cache.misses == misses  # second answer came from the cache

    def test_invalidate_clears_results_keeps_uids(self):
        cache = geometry_cache()
        a, b = spaces((0, 100), (50, 150))
        uid = cache.uid_of(a)
        _ = a & b
        assert cache.stats()["entries"] == 1
        version = cache.version
        cache.invalidate()
        assert cache.stats()["entries"] == 0
        assert cache.version == version + 1
        assert cache.uid_of(a) == uid

    def test_eviction_clears_full_table(self):
        cache = GeometryCache(capacity=4, enabled=True)
        sps = spaces(*[(i, i + 10) for i in range(8)])
        for s in sps:
            cache.overlaps(sps[0], s)
        assert cache.evictions > 0
        assert len(cache._ovl) <= 4

    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(ENV_DISABLE, "1")
        cache = GeometryCache()
        assert not cache.enabled
        monkeypatch.delenv(ENV_DISABLE)
        cache.reset()
        assert cache.enabled

    def test_stats_and_publish(self):
        cache = geometry_cache()
        a, b = spaces((0, 100), (50, 150))
        _ = a & b
        _ = a & b
        registry = MetricsRegistry()
        cache.publish_to(registry)
        assert registry.find("geom.cache.hits").value == cache.hits
        assert registry.find("geom.cache.misses").value == cache.misses
        assert registry.find("geom.cache.enabled").value == 1
        assert "hits" in cache.render()


class TestBatchOverlaps:
    def test_matches_scalar_on_mixed_candidates(self, rng):
        query = IndexSpace(rng.choice(500, size=60, replace=False))
        candidates = [IndexSpace(rng.choice(500, size=k, replace=False))
                      for k in rng.integers(1, 40, size=25)]
        candidates += [IndexSpace.empty(),
                       IndexSpace.from_range(400, 410),
                       IndexSpace.from_range(1000, 1100)]  # bbox-disjoint
        want = [query._overlaps_raw(c) for c in candidates]
        got = batch_overlaps(query, candidates)
        assert got.dtype == bool
        assert list(got) == want

    def test_empty_query_and_no_candidates(self):
        assert list(batch_overlaps(IndexSpace.empty(),
                                   spaces((0, 5)))) == [False]
        assert list(batch_overlaps(IndexSpace.from_range(0, 5), [])) == []

    def test_second_pass_is_all_hits(self):
        cache = geometry_cache()
        query = IndexSpace.from_range(0, 50)
        candidates = spaces((10, 20), (60, 70), (40, 55))
        first = batch_overlaps(query, candidates)
        hits_before = cache.hits
        second = batch_overlaps(query, candidates)
        assert list(first) == list(second)
        # the bbox-disjoint candidate never reaches the cache; both others do
        assert cache.hits == hits_before + 2

    def test_results_seed_scalar_path(self):
        cache = geometry_cache()
        query = IndexSpace.from_range(0, 50)
        candidate = IndexSpace.from_range(25, 75)
        batch_overlaps(query, [candidate])
        misses = cache.misses
        assert query.overlaps(candidate)
        assert cache.misses == misses

    def test_disabled_cache_still_batches_correctly(self, rng):
        query = IndexSpace(rng.choice(200, size=30, replace=False))
        candidates = [IndexSpace(rng.choice(200, size=10, replace=False))
                      for _ in range(10)]
        with geometry_cache_disabled():
            got = batch_overlaps(query, candidates)
        assert list(got) == [query._overlaps_raw(c) for c in candidates]

    @settings(max_examples=60,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query=index_spaces(),
           candidates=st.lists(index_spaces(), max_size=12))
    def test_property_matches_scalar(self, query, candidates):
        got = batch_overlaps(query, candidates)
        assert list(got) == [query._overlaps_raw(c) for c in candidates]


# ----------------------------------------------------------------------
# tenant routing: per-thread cache overrides (the analysis service seam)
# ----------------------------------------------------------------------
class TestTenantRouting:
    def test_override_routes_ops_away_from_global(self):
        from repro.geometry.fastpath import tenant_geometry_cache

        tenant = GeometryCache()
        a = IndexSpace.from_range(0, 50)
        b = IndexSpace.from_range(25, 75)
        before = geometry_cache().stats()
        with tenant_geometry_cache(tenant):
            first = a & b
            second = a & b
        assert np.array_equal(first.indices, second.indices)
        assert tenant.misses > 0 and tenant.hits > 0
        assert geometry_cache().stats() == before

    def test_overrides_nest_and_restore(self):
        from repro.geometry.fastpath import (active_geometry_cache,
                                             tenant_geometry_cache)

        outer, inner = GeometryCache(), GeometryCache()
        assert active_geometry_cache() is geometry_cache()
        with tenant_geometry_cache(outer):
            assert active_geometry_cache() is outer
            with tenant_geometry_cache(inner):
                assert active_geometry_cache() is inner
            assert active_geometry_cache() is outer
        assert active_geometry_cache() is geometry_cache()

    def test_other_threads_keep_the_global_cache(self):
        import threading

        from repro.geometry.fastpath import (active_geometry_cache,
                                             tenant_geometry_cache)

        tenant = GeometryCache()
        seen = []

        def probe():
            seen.append(active_geometry_cache())

        with tenant_geometry_cache(tenant):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen == [geometry_cache()]

    def test_cache_generations_are_globally_unique(self):
        """Per-instance uid memos must never be trusted across cache
        instances: every cache (and every reset) draws a fresh,
        process-unique generation.  Regression for cross-tenant uid
        poisoning — a space first interned in the global cache must
        re-intern in a tenant cache, not reuse the stale memo."""
        c1, c2 = GeometryCache(), GeometryCache()
        assert c1._generation != c2._generation
        old = c1._generation
        c1.reset()
        assert c1._generation != old
        assert c1._generation != c2._generation

        space = IndexSpace.from_range(0, 10)
        uid1 = c1.uid_of(space)
        uid2 = c2.uid_of(space)   # must miss c1's memo and re-intern
        assert c2.uid_of(IndexSpace.from_range(0, 10)) == uid2
        assert uid1 == c1.uid_of(space)
