"""Unit and property tests for the BVH acceleration structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import BVH, GeometryError, IndexSpace

from tests.conftest import nonempty_index_spaces


class TestBVHBasics:
    def test_empty_query(self):
        bvh = BVH()
        assert bvh.query(IndexSpace.from_range(0, 10)) == []
        assert bvh.query(IndexSpace.empty()) == []
        assert len(bvh) == 0

    def test_ignores_empty_spaces(self):
        bvh = BVH()
        bvh.insert(IndexSpace.empty(), "x")
        assert len(bvh) == 0

    def test_insert_and_query(self):
        bvh = BVH()
        bvh.insert(IndexSpace.from_range(0, 10), "a")
        bvh.insert(IndexSpace.from_range(20, 30), "b")
        assert bvh.query(IndexSpace.from_range(5, 8)) == ["a"]
        assert set(bvh.query(IndexSpace.from_range(0, 30))) == {"a", "b"}
        assert bvh.query(IndexSpace.from_range(12, 18)) == []

    def test_query_is_conservative(self):
        # bbox of {0, 100} covers 50 even though the space doesn't
        bvh = BVH()
        bvh.insert(IndexSpace.from_indices([0, 100]), "sparse")
        assert bvh.query(IndexSpace.from_indices([50])) == ["sparse"]
        assert bvh.query_exact(IndexSpace.from_indices([50])) == []

    def test_remove(self):
        bvh = BVH()
        bvh.insert(IndexSpace.from_range(0, 5), "a")
        bvh.insert(IndexSpace.from_range(3, 9), "b")
        assert bvh.remove("a")
        assert not bvh.remove("a")
        assert bvh.query(IndexSpace.from_range(0, 10)) == ["b"]
        assert len(bvh) == 1

    def test_iter(self):
        bvh = BVH()
        for i in range(20):
            bvh.insert(IndexSpace.from_range(i, i + 2), i)
        assert sorted(bvh) == list(range(20))

    def test_leaf_capacity_validated(self):
        with pytest.raises(GeometryError):
            BVH(leaf_capacity=0)

    def test_depth_grows_logarithmically(self):
        bvh = BVH(leaf_capacity=2)
        for i in range(64):
            bvh.insert(IndexSpace.from_range(i * 10, i * 10 + 5), i)
        assert 2 <= bvh.depth() <= 8


class TestBVHProperties:
    @settings(max_examples=40)
    @given(st.lists(nonempty_index_spaces(128), min_size=1, max_size=25),
           nonempty_index_spaces(128))
    def test_query_superset_of_exact(self, spaces, probe):
        bvh = BVH(leaf_capacity=3)
        for i, s in enumerate(spaces):
            bvh.insert(s, i)
        exact = {i for i, s in enumerate(spaces) if s.overlaps(probe)}
        candidates = set(bvh.query(probe))
        assert exact <= candidates

    @settings(max_examples=40)
    @given(st.lists(nonempty_index_spaces(128), min_size=1, max_size=25),
           nonempty_index_spaces(128))
    def test_query_exact_matches_bruteforce(self, spaces, probe):
        bvh = BVH(leaf_capacity=3)
        for i, s in enumerate(spaces):
            bvh.insert(s, i)
        want = [i for i, s in enumerate(spaces) if s.overlaps(probe)]
        assert sorted(bvh.query_exact(probe)) == sorted(want)


#: A "rectangle" in the 1-D linearized space: an inclusive [lo, hi] interval.
def rectangles(limit=128):
    return st.tuples(st.integers(0, limit - 1),
                     st.integers(0, limit - 1)).map(sorted)


class TestBVHRectangleDifferential:
    """Random rectangle sets: every query answer must equal the
    brute-force scan over the live items (dense intervals make the
    conservative bounding-interval answer exact, so equality — not just
    superset — is required)."""

    @settings(max_examples=50)
    @given(st.lists(rectangles(), min_size=1, max_size=40), rectangles())
    def test_query_interval_matches_bruteforce(self, rects, probe):
        bvh = BVH(leaf_capacity=2)
        for i, (lo, hi) in enumerate(rects):
            bvh.insert(IndexSpace.from_range(lo, hi + 1), i)
        plo, phi = probe
        want = sorted(i for i, (lo, hi) in enumerate(rects)
                      if lo <= phi and plo <= hi)
        assert sorted(bvh.query_interval(plo, phi)) == want

    @settings(max_examples=30)
    @given(st.lists(rectangles(), min_size=2, max_size=30),
           st.data())
    def test_interleaved_removals_match_bruteforce(self, rects, data):
        bvh = BVH(leaf_capacity=2)
        for i, (lo, hi) in enumerate(rects):
            bvh.insert(IndexSpace.from_range(lo, hi + 1), i)
        live = dict(enumerate(rects))
        victims = data.draw(st.lists(
            st.sampled_from(sorted(live)), max_size=len(live) - 1,
            unique=True))
        for victim in victims:
            assert bvh.remove(victim)
            del live[victim]
        plo, phi = data.draw(rectangles())
        want = sorted(i for i, (lo, hi) in live.items()
                      if lo <= phi and plo <= hi)
        assert sorted(bvh.query_interval(plo, phi)) == want
        assert len(bvh) == len(live)

    @settings(max_examples=30)
    @given(st.lists(nonempty_index_spaces(96), min_size=1, max_size=25),
           nonempty_index_spaces(96))
    def test_query_exact_matches_bruteforce_sparse(self, spaces, probe):
        """Sparse spaces too: query_exact is the true-overlap scan."""
        bvh = BVH(leaf_capacity=2)
        for i, s in enumerate(spaces):
            bvh.insert(s, i)
        want = sorted(i for i, s in enumerate(spaces) if s.overlaps(probe))
        assert sorted(bvh.query_exact(probe)) == want
