"""Unit and property tests for the K-d tree (section 7.1 fallback)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GeometryError, IndexSpace, KDTree

from tests.conftest import nonempty_index_spaces


class TestKDTreeBasics:
    def test_requires_valid_range(self):
        with pytest.raises(GeometryError):
            KDTree(5, 4)

    def test_insert_query(self):
        kd = KDTree(0, 99)
        kd.insert(IndexSpace.from_range(0, 10), "a")
        kd.insert(IndexSpace.from_range(50, 60), "b")
        assert kd.query(IndexSpace.from_range(5, 7)) == ["a"]
        assert set(kd.query(IndexSpace.from_range(0, 99))) == {"a", "b"}
        assert kd.query(IndexSpace.from_range(20, 30)) == []
        assert kd.query(IndexSpace.empty()) == []

    def test_rejects_empty_and_out_of_range(self):
        kd = KDTree(0, 9)
        with pytest.raises(GeometryError):
            kd.insert(IndexSpace.empty(), "x")
        with pytest.raises(GeometryError):
            kd.insert(IndexSpace.from_indices([15]), "x")

    def test_remove(self):
        kd = KDTree(0, 99)
        a = kd.insert(IndexSpace.from_range(0, 50), "a")
        kd.insert(IndexSpace.from_range(25, 75), "b")
        assert kd.remove(a) == "a"
        assert kd.query(IndexSpace.from_range(0, 99)) == ["b"]
        with pytest.raises(GeometryError):
            kd.remove(a)

    def test_spanning_item_not_duplicated_in_results(self):
        kd = KDTree(0, 99, leaf_capacity=1)
        # force splits, then insert an item spanning the whole range
        for i in range(8):
            kd.insert(IndexSpace.from_indices([i * 12]), i)
        kd.insert(IndexSpace.from_indices([0, 99]), "wide")
        hits = kd.query(IndexSpace.from_range(0, 100))
        assert hits.count("wide") == 1

    def test_len_and_iter(self):
        kd = KDTree(0, 20)
        for i in range(5):
            kd.insert(IndexSpace.from_indices([i * 4]), i)
        assert len(kd) == 5
        assert sorted(kd) == list(range(5))


class TestKDTreeProperties:
    @settings(max_examples=40)
    @given(st.lists(nonempty_index_spaces(128), min_size=1, max_size=30),
           nonempty_index_spaces(128))
    def test_query_superset_of_exact(self, spaces, probe):
        kd = KDTree(0, 127, leaf_capacity=2)
        for i, s in enumerate(spaces):
            kd.insert(s, i)
        exact = {i for i, s in enumerate(spaces) if s.overlaps(probe)}
        assert exact <= set(kd.query(probe))

    @settings(max_examples=30)
    @given(st.lists(nonempty_index_spaces(64), min_size=2, max_size=20),
           st.data())
    def test_remove_then_query(self, spaces, data):
        kd = KDTree(0, 63, leaf_capacity=2)
        ids = [kd.insert(s, i) for i, s in enumerate(spaces)]
        victim = data.draw(st.integers(0, len(spaces) - 1))
        kd.remove(ids[victim])
        hits = kd.query(IndexSpace.from_range(0, 64))
        assert victim not in hits
        assert len(kd) == len(spaces) - 1


#: A "rectangle" in the 1-D linearized space: an inclusive [lo, hi] interval.
def rectangles(limit=128):
    return st.tuples(st.integers(0, limit - 1),
                     st.integers(0, limit - 1)).map(sorted)


class TestKDTreeRectangleDifferential:
    """Random rectangle sets against the brute-force scan.  Dense
    intervals make the K-d tree's conservative bounding-interval answer
    exact, so the query must *equal* the scan — and spanning items that
    live in both subtrees must still be reported exactly once."""

    @settings(max_examples=50)
    @given(st.lists(rectangles(), min_size=1, max_size=40), rectangles())
    def test_query_interval_matches_bruteforce(self, rects, probe):
        kd = KDTree(0, 127, leaf_capacity=2)
        for i, (lo, hi) in enumerate(rects):
            kd.insert(IndexSpace.from_range(lo, hi + 1), i)
        plo, phi = probe
        want = sorted(i for i, (lo, hi) in enumerate(rects)
                      if lo <= phi and plo <= hi)
        assert sorted(kd.query_interval(plo, phi)) == want

    @settings(max_examples=30)
    @given(st.lists(rectangles(), min_size=2, max_size=30),
           st.data())
    def test_interleaved_removals_match_bruteforce(self, rects, data):
        kd = KDTree(0, 127, leaf_capacity=2)
        ids = {}
        live = {}
        for i, (lo, hi) in enumerate(rects):
            ids[i] = kd.insert(IndexSpace.from_range(lo, hi + 1), i)
            live[i] = (lo, hi)
        victims = data.draw(st.lists(
            st.sampled_from(sorted(live)), max_size=len(live) - 1,
            unique=True))
        for victim in victims:
            assert kd.remove(ids[victim]) == victim
            del live[victim]
        plo, phi = data.draw(rectangles())
        want = sorted(i for i, (lo, hi) in live.items()
                      if lo <= phi and plo <= hi)
        assert sorted(kd.query_interval(plo, phi)) == want
        assert len(kd) == len(live)
