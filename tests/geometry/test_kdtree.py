"""Unit and property tests for the K-d tree (section 7.1 fallback)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import GeometryError, IndexSpace, KDTree

from tests.conftest import nonempty_index_spaces


class TestKDTreeBasics:
    def test_requires_valid_range(self):
        with pytest.raises(GeometryError):
            KDTree(5, 4)

    def test_insert_query(self):
        kd = KDTree(0, 99)
        kd.insert(IndexSpace.from_range(0, 10), "a")
        kd.insert(IndexSpace.from_range(50, 60), "b")
        assert kd.query(IndexSpace.from_range(5, 7)) == ["a"]
        assert set(kd.query(IndexSpace.from_range(0, 99))) == {"a", "b"}
        assert kd.query(IndexSpace.from_range(20, 30)) == []
        assert kd.query(IndexSpace.empty()) == []

    def test_rejects_empty_and_out_of_range(self):
        kd = KDTree(0, 9)
        with pytest.raises(GeometryError):
            kd.insert(IndexSpace.empty(), "x")
        with pytest.raises(GeometryError):
            kd.insert(IndexSpace.from_indices([15]), "x")

    def test_remove(self):
        kd = KDTree(0, 99)
        a = kd.insert(IndexSpace.from_range(0, 50), "a")
        kd.insert(IndexSpace.from_range(25, 75), "b")
        assert kd.remove(a) == "a"
        assert kd.query(IndexSpace.from_range(0, 99)) == ["b"]
        with pytest.raises(GeometryError):
            kd.remove(a)

    def test_spanning_item_not_duplicated_in_results(self):
        kd = KDTree(0, 99, leaf_capacity=1)
        # force splits, then insert an item spanning the whole range
        for i in range(8):
            kd.insert(IndexSpace.from_indices([i * 12]), i)
        kd.insert(IndexSpace.from_indices([0, 99]), "wide")
        hits = kd.query(IndexSpace.from_range(0, 100))
        assert hits.count("wide") == 1

    def test_len_and_iter(self):
        kd = KDTree(0, 20)
        for i in range(5):
            kd.insert(IndexSpace.from_indices([i * 4]), i)
        assert len(kd) == 5
        assert sorted(kd) == list(range(5))


class TestKDTreeProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(nonempty_index_spaces(128), min_size=1, max_size=30),
           nonempty_index_spaces(128))
    def test_query_superset_of_exact(self, spaces, probe):
        kd = KDTree(0, 127, leaf_capacity=2)
        for i, s in enumerate(spaces):
            kd.insert(s, i)
        exact = {i for i, s in enumerate(spaces) if s.overlaps(probe)}
        assert exact <= set(kd.query(probe))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(nonempty_index_spaces(64), min_size=2, max_size=20),
           st.data())
    def test_remove_then_query(self, spaces, data):
        kd = KDTree(0, 63, leaf_capacity=2)
        ids = [kd.insert(s, i) for i, s in enumerate(spaces)]
        victim = data.draw(st.integers(0, len(spaces) - 1))
        kd.remove(ids[victim])
        hits = kd.query(IndexSpace.from_range(0, 64))
        assert victim not in hits
        assert len(kd) == len(spaces) - 1
