"""Unit and property tests for IndexSpace set algebra."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import Extent, GeometryError, IndexSpace, Rect

from tests.conftest import index_spaces


sets_of_ints = st.sets(st.integers(0, 63), max_size=24)


class TestConstruction:
    def test_deduplicates_and_sorts(self):
        s = IndexSpace.from_indices([5, 1, 5, 3, 1])
        assert list(s.indices) == [1, 3, 5]

    def test_empty(self):
        s = IndexSpace.empty()
        assert s.is_empty and s.size == 0 and len(s) == 0
        assert s.bounds == (0, -1)

    def test_from_range(self):
        s = IndexSpace.from_range(3, 7)
        assert list(s) == [3, 4, 5, 6]
        assert IndexSpace.from_range(3, 3).is_empty
        with pytest.raises(GeometryError):
            IndexSpace.from_range(5, 2)

    def test_from_rect(self):
        e = Extent((3, 3))
        s = IndexSpace.from_rect(Rect((0, 0), (1, 1)), e)
        assert list(s) == [0, 1, 3, 4]

    def test_from_mask(self):
        mask = np.array([True, False, True, True])
        assert list(IndexSpace.from_mask(mask)) == [0, 2, 3]

    def test_bounds_and_contains(self):
        s = IndexSpace.from_indices([2, 9, 17])
        assert s.bounds == (2, 17)
        assert 9 in s and 2 in s and 17 in s
        assert 3 not in s and 18 not in s and 0 not in s

    def test_equality_and_hash(self):
        a = IndexSpace.from_indices([1, 2, 3])
        b = IndexSpace.from_indices([3, 2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != IndexSpace.from_indices([1, 2])
        assert (a == "nope") is False

    def test_indices_readonly(self):
        s = IndexSpace.from_indices([1, 2])
        with pytest.raises(ValueError):
            s.indices[0] = 9


class TestSetAlgebra:
    @given(sets_of_ints, sets_of_ints)
    def test_matches_python_sets(self, a, b):
        sa, sb = IndexSpace.from_indices(a), IndexSpace.from_indices(b)
        assert set(sa & sb) == a & b
        assert set(sa - sb) == a - b
        assert set(sa | sb) == a | b
        assert sa.overlaps(sb) == bool(a & b)
        assert sa.isdisjoint(sb) == (not a & b)
        assert sa.issubset(sb) == (a <= b)
        assert sa.issuperset(sb) == (a >= b)

    @given(sets_of_ints)
    def test_self_identities(self, a):
        s = IndexSpace.from_indices(a)
        assert s & s == s
        assert (s - s).is_empty
        assert s | s == s
        assert s.issubset(s)

    def test_bbox_overlaps_conservative(self):
        a = IndexSpace.from_indices([0, 10])
        b = IndexSpace.from_indices([5])
        assert a.bbox_overlaps(b)     # bounding boxes overlap...
        assert not a.overlaps(b)      # ...but the sets do not

    @given(st.lists(sets_of_ints, max_size=5))
    def test_union_all(self, sets):
        spaces = [IndexSpace.from_indices(s) for s in sets]
        want = set().union(*sets) if sets else set()
        assert set(IndexSpace.union_all(spaces)) == want


class TestPositions:
    def test_positions_of_subset(self):
        a = IndexSpace.from_indices([2, 4, 6, 8])
        b = IndexSpace.from_indices([4, 8])
        pos = a.positions_of(b)
        assert list(pos) == [1, 3]
        assert np.array_equal(a.indices[pos], b.indices)

    def test_positions_of_rejects_nonsubset(self):
        a = IndexSpace.from_indices([2, 4])
        with pytest.raises(GeometryError):
            a.positions_of(IndexSpace.from_indices([4, 5]))
        with pytest.raises(GeometryError):
            a.positions_of(IndexSpace.from_indices([9]))

    def test_positions_of_empty(self):
        a = IndexSpace.from_indices([1, 2])
        assert a.positions_of(IndexSpace.empty()).size == 0

    @given(sets_of_ints, sets_of_ints)
    def test_membership_mask(self, a, b):
        sa, sb = IndexSpace.from_indices(a), IndexSpace.from_indices(b)
        mask = sa.membership_mask(sb)
        assert mask.shape == (sa.size,)
        assert set(sa.indices[mask]) == a & b

    def test_sample(self, rng):
        s = IndexSpace.from_range(0, 100)
        sub = s.sample(10, rng)
        assert sub.size == 10 and sub.issubset(s)
        assert s.sample(200, rng) is s

    def test_to_rect_coords(self):
        e = Extent((2, 3))
        s = IndexSpace.from_indices([0, 4, 5])
        assert [tuple(c) for c in s.to_rect_coords(e)] == \
            [(0, 0), (1, 1), (1, 2)]


class TestPositionsFastPath:
    def test_equal_size_nonsubset_rejected(self):
        """The identity fast path must still reject same-size impostors."""
        a = IndexSpace.from_indices([1, 2, 3])
        with pytest.raises(GeometryError):
            a.positions_of(IndexSpace.from_indices([1, 2, 4]))

    def test_identity_mapping(self):
        a = IndexSpace.from_indices([5, 9, 12])
        b = IndexSpace.from_indices([5, 9, 12])
        assert list(a.positions_of(b)) == [0, 1, 2]
        assert list(a.positions_of(a)) == [0, 1, 2]


class TestCallerArrayNotFrozen:
    """Regression: the constructor used to call ``setflags(write=False)``
    on the caller's own array; it must freeze a private view instead."""

    def test_trusted_path_leaves_caller_writeable(self):
        buf = np.arange(10, dtype=np.int64)
        space = IndexSpace(buf, trusted=True)
        assert buf.flags.writeable
        assert not space.indices.flags.writeable
        buf[0] = 99  # the caller still owns its buffer's writeability

    def test_untrusted_path_leaves_caller_writeable(self):
        # already-sorted unique int64 input passes through np.asarray
        # unchanged, so this exact array used to get frozen in place
        buf = np.array([2, 4, 6], dtype=np.int64)
        IndexSpace(buf)
        assert buf.flags.writeable
        buf[:] = 0

    def test_space_view_still_immutable(self):
        space = IndexSpace.from_range(0, 5)
        with pytest.raises(ValueError):
            space.indices[0] = 7
