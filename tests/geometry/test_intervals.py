"""Unit and property tests for interval-set summaries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import GeometryError, IndexSpace, IntervalSet
from repro.geometry.intervals import runs_of


sets_of_ints = st.sets(st.integers(0, 80), max_size=30)


class TestRunsOf:
    def test_empty(self):
        assert runs_of(IndexSpace.empty()).shape == (0, 2)

    def test_single_run(self):
        runs = runs_of(IndexSpace.from_range(3, 8))
        assert runs.tolist() == [[3, 7]]

    def test_multiple_runs(self):
        s = IndexSpace.from_indices([1, 2, 3, 7, 9, 10])
        assert runs_of(s).tolist() == [[1, 3], [7, 7], [9, 10]]

    @given(sets_of_ints)
    def test_runs_cover_exactly(self, ints):
        s = IndexSpace.from_indices(ints)
        covered = set()
        for a, b in runs_of(s):
            covered.update(range(int(a), int(b) + 1))
        assert covered == ints

    @given(sets_of_ints)
    def test_runs_maximal(self, ints):
        runs = runs_of(IndexSpace.from_indices(ints))
        for i in range(len(runs) - 1):
            assert runs[i + 1, 0] > runs[i, 1] + 1


class TestIntervalSet:
    def test_coalesces_overlapping(self):
        s = IntervalSet([(0, 3), (2, 5), (7, 8), (9, 9)])
        assert list(s) == [(0, 5), (7, 9)]
        assert s.num_runs == 2
        assert s.size == 9

    def test_rejects_inverted(self):
        with pytest.raises(GeometryError):
            IntervalSet([(5, 2)])

    def test_empty(self):
        e = IntervalSet.empty()
        assert e.is_empty and e.size == 0 and e.bounds == (0, -1)

    def test_bounds(self):
        assert IntervalSet([(3, 5), (9, 12)]).bounds == (3, 12)

    def test_contains_point(self):
        s = IntervalSet([(2, 4), (8, 8)])
        for p, want in [(2, True), (4, True), (8, True),
                        (1, False), (5, False), (9, False)]:
            assert s.contains_point(p) is want
        assert not IntervalSet.empty().contains_point(0)

    @given(sets_of_ints, sets_of_ints)
    def test_overlaps_matches_sets(self, a, b):
        ia = IntervalSet.from_space(IndexSpace.from_indices(a))
        ib = IntervalSet.from_space(IndexSpace.from_indices(b))
        assert ia.overlaps(ib) == bool(a & b)

    @given(sets_of_ints)
    def test_space_roundtrip(self, ints):
        s = IndexSpace.from_indices(ints)
        assert IntervalSet.from_space(s).to_space() == s

    @given(sets_of_ints)
    def test_size_matches(self, ints):
        s = IndexSpace.from_indices(ints)
        assert IntervalSet.from_space(s).size == s.size

    def test_equality(self):
        assert IntervalSet([(0, 2)]) == IntervalSet([(0, 1), (2, 2)])
        assert IntervalSet([(0, 2)]) != IntervalSet([(0, 3)])


class TestHashable:
    """Regression: ``__eq__`` + ``__slots__`` left IntervalSet unhashable
    (slotted classes get no default ``__hash__`` back)."""

    def test_hashable_and_consistent_with_eq(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(0, 1), (2, 2)])  # coalesces to the same runs
        assert a == b
        assert hash(a) == hash(b)

    def test_usable_in_sets_and_dicts(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(0, 1), (2, 2)])
        c = IntervalSet([(5, 9)])
        assert {a, b, c} == {a, c}
        d = {a: "x"}
        assert d[b] == "x"

    def test_empty_hashable(self):
        assert hash(IntervalSet.empty()) == hash(IntervalSet.empty())
