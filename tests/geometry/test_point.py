"""Unit and property tests for Extent and Rect."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import Extent, GeometryError, Rect


class TestExtent:
    def test_basic_properties(self):
        e = Extent((3, 4, 5))
        assert e.dim == 3
        assert e.volume == 60
        assert e.strides == (20, 5, 1)

    def test_one_dimensional(self):
        e = Extent((7,))
        assert e.strides == (1,)
        assert e.full_rect() == Rect((0,), (6,))

    def test_rejects_empty_shape(self):
        with pytest.raises(GeometryError):
            Extent(())

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(GeometryError):
            Extent((3, 0))
        with pytest.raises(GeometryError):
            Extent((-1,))

    def test_linearize_row_major(self):
        e = Extent((2, 3))
        coords = np.array([[0, 0], [0, 2], [1, 0], [1, 2]])
        assert list(e.linearize(coords)) == [0, 2, 3, 5]

    def test_linearize_single_point(self):
        e = Extent((4, 4))
        assert e.linearize(np.array([2, 3]))[0] == 11

    def test_linearize_bounds_checked(self):
        e = Extent((2, 2))
        with pytest.raises(GeometryError):
            e.linearize(np.array([[2, 0]]))
        with pytest.raises(GeometryError):
            e.linearize(np.array([[0, -1]]))

    def test_linearize_rank_checked(self):
        with pytest.raises(GeometryError):
            Extent((2, 2)).linearize(np.array([[1, 1, 1]]))

    def test_delinearize_roundtrip(self):
        e = Extent((3, 5, 2))
        idx = np.arange(e.volume)
        coords = e.delinearize(idx)
        assert np.array_equal(e.linearize(coords), idx)

    def test_delinearize_bounds_checked(self):
        with pytest.raises(GeometryError):
            Extent((2, 2)).delinearize(np.array([4]))

    @given(st.lists(st.integers(1, 6), min_size=1, max_size=3).map(tuple),
           st.data())
    def test_linearize_delinearize_inverse(self, shape, data):
        e = Extent(shape)
        k = data.draw(st.integers(0, e.volume - 1))
        coords = e.delinearize(np.array([k]))
        assert int(e.linearize(coords)[0]) == k


class TestRect:
    def test_volume_and_empty(self):
        r = Rect((0, 0), (2, 3))
        assert r.volume == 12
        assert not r.is_empty
        assert Rect.empty(2).is_empty
        assert Rect.empty(2).volume == 0

    def test_rank_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Rect((0,), (1, 1))
        with pytest.raises(GeometryError):
            Rect((), ())

    def test_contains_point(self):
        r = Rect((1, 1), (3, 3))
        assert r.contains_point((2, 2))
        assert r.contains_point((1, 3))
        assert not r.contains_point((0, 2))
        with pytest.raises(GeometryError):
            r.contains_point((1,))

    def test_contains_rect(self):
        outer = Rect((0, 0), (5, 5))
        assert outer.contains(Rect((1, 1), (4, 4)))
        assert outer.contains(outer)
        assert outer.contains(Rect.empty(2))
        assert not Rect.empty(2).contains(outer)
        assert not outer.contains(Rect((0, 0), (6, 5)))

    def test_intersect(self):
        a = Rect((0, 0), (4, 4))
        b = Rect((2, 3), (8, 8))
        assert a.intersect(b) == Rect((2, 3), (4, 4))
        assert a.intersect(Rect((5, 5), (6, 6))).is_empty

    def test_intersect_rank_checked(self):
        with pytest.raises(GeometryError):
            Rect((0,), (1,)).intersect(Rect((0, 0), (1, 1)))

    def test_overlaps(self):
        a = Rect((0,), (4,))
        assert a.overlaps(Rect((4,), (9,)))
        assert not a.overlaps(Rect((5,), (9,)))

    def test_clamp(self):
        e = Extent((4, 4))
        assert Rect((-2, 1), (9, 2)).clamp(e) == Rect((0, 1), (3, 2))

    def test_points_row_major(self):
        pts = list(Rect((0, 0), (1, 1)).points())
        assert pts == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_points_empty(self):
        assert list(Rect.empty(2).points()) == []

    def test_linearize_matches_points(self):
        e = Extent((4, 5))
        r = Rect((1, 2), (3, 4))
        via_points = [e.linearize(np.array([p]))[0] for p in r.points()]
        assert list(r.linearize(e)) == sorted(int(v) for v in via_points)

    def test_linearize_clips_to_extent(self):
        e = Extent((3, 3))
        r = Rect((-1, -1), (5, 0))
        assert list(r.linearize(e)) == [0, 3, 6]

    def test_linearize_sorted(self):
        e = Extent((6, 7, 2))
        flat = Rect((1, 2, 0), (4, 6, 1)).linearize(e)
        assert np.all(np.diff(flat) > 0)

    @given(st.integers(1, 8), st.integers(1, 8), st.data())
    def test_linearize_volume(self, h, w, data):
        e = Extent((h, w))
        lo = (data.draw(st.integers(0, h - 1)), data.draw(st.integers(0, w - 1)))
        hi = (data.draw(st.integers(lo[0], h - 1)),
              data.draw(st.integers(lo[1], w - 1)))
        r = Rect(lo, hi)
        assert r.linearize(e).size == r.volume
