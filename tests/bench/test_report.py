"""Tests for the markdown report generator."""

import pytest

from repro.bench.report import SECTIONS, generate_report, tsv_to_markdown


SAMPLE = """# fig13: Circuit initialization time [seconds]
nodes\traycast_dcr\twarnock_dcr
1\t0.0004\t0.0004
2\t0.000405\t0.000405
"""


class TestTsvToMarkdown:
    def test_comment_becomes_caption(self):
        md = tsv_to_markdown(SAMPLE)
        assert md.startswith("*fig13: Circuit initialization time")

    def test_table_structure(self):
        md = tsv_to_markdown(SAMPLE)
        lines = md.splitlines()
        assert "| nodes | raycast_dcr | warnock_dcr |" in lines
        assert "|---|---|---|" in lines
        assert "| 2 | 0.000405 | 0.000405 |" in lines

    def test_empty(self):
        assert tsv_to_markdown("") == ""


class TestGenerateReport:
    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(tmp_path / "nope")

    def test_known_and_unknown_files(self, tmp_path):
        (tmp_path / "fig13.tsv").write_text(SAMPLE)
        (tmp_path / "custom_experiment.tsv").write_text(
            "a\tb\n1\t2\n")
        report = generate_report(tmp_path, title="Test run")
        assert report.startswith("# Test run")
        assert "## Figure 13 — Circuit initialization time (s)" in report
        assert "## custom_experiment.tsv" in report
        # ordering: known figure section comes before the custom one
        assert report.index("Figure 13") < report.index("custom_experiment")

    def test_empty_dir(self, tmp_path):
        report = generate_report(tmp_path)
        assert "(no result tables found)" in report

    def test_sections_cover_all_benchmark_outputs(self):
        names = {name for name, _ in SECTIONS}
        assert {"fig12.tsv", "fig17.tsv", "ablation_tracing.tsv",
                "artifact_a4_pennant.tsv"} <= names

    def test_real_results_if_present(self):
        """When the full benchmark run has happened, the report must
        assemble cleanly from its artifacts."""
        from pathlib import Path
        results = Path(__file__).resolve().parents[2] / "benchmarks" / \
            "results"
        if not results.is_dir():
            pytest.skip("no benchmark results yet")
        report = generate_report(results)
        assert "Figure 12" in report


class TestCli:
    def test_report_command(self, tmp_path, capsys):
        (tmp_path / "fig13.tsv").write_text(SAMPLE)
        from repro.cli import main
        assert main(["report", "--results", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark report" in out

    def test_report_to_file(self, tmp_path):
        (tmp_path / "fig13.tsv").write_text(SAMPLE)
        from repro.cli import main
        out_file = tmp_path / "report.md"
        assert main(["report", "--results", str(tmp_path),
                     "--output", str(out_file)]) == 0
        assert out_file.read_text().startswith("# Benchmark report")

    def test_report_missing_dir_fails(self, tmp_path):
        from repro.cli import main
        assert main(["report", "--results", str(tmp_path / "none")]) == 1
