"""Tests for the bench-JSON document writer and the soft gate."""

import json

import pytest

from repro.bench.gate import GateRow, compare, load_bench, main, render
from repro.bench.harness import (BENCH_SCHEMA_ID, bench_environment,
                                 write_bench_json)


def _doc(rows):
    return {"schema": BENCH_SCHEMA_ID, "bench": "t",
            "environment": {"platform": "test"}, "rows": rows}


# ----------------------------------------------------------------------
# document writing
# ----------------------------------------------------------------------
def test_write_bench_json_round_trip(tmp_path):
    out = write_bench_json(tmp_path / "BENCH_t.json", "t",
                           [{"name": "a", "seconds": 0.5, "tasks": 10}],
                           extra={"pieces": 4})
    doc = load_bench(out)
    assert doc["schema"] == BENCH_SCHEMA_ID
    assert doc["bench"] == "t"
    assert doc["pieces"] == 4
    assert doc["rows"] == [{"name": "a", "seconds": 0.5, "tasks": 10}]
    assert "python" in doc["environment"]


def test_write_bench_json_rejects_bad_rows(tmp_path):
    with pytest.raises(ValueError, match="needs a 'name'"):
        write_bench_json(tmp_path / "x.json", "t", [{"seconds": 1.0}])
    with pytest.raises(ValueError, match="duplicate"):
        write_bench_json(tmp_path / "x.json", "t",
                         [{"name": "a", "seconds": 1.0},
                          {"name": "a", "seconds": 2.0}])


def test_bench_environment_is_self_describing():
    env = bench_environment()
    assert set(env) >= {"python", "platform", "numpy", "cpus"}
    assert env["cpus"] >= 1


def test_load_bench_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "nope", "rows": []}))
    with pytest.raises(ValueError, match="unknown bench schema"):
        load_bench(path)
    path.write_text(json.dumps({"schema": BENCH_SCHEMA_ID}))
    with pytest.raises(ValueError, match="missing 'rows'"):
        load_bench(path)


# ----------------------------------------------------------------------
# comparison semantics
# ----------------------------------------------------------------------
def test_compare_classifies_ratios():
    base = _doc([{"name": "a", "seconds": 1.0},
                 {"name": "b", "seconds": 1.0},
                 {"name": "c", "seconds": 1.0},
                 {"name": "gone", "seconds": 1.0}])
    cur = _doc([{"name": "a", "seconds": 1.05},   # within warn
                {"name": "b", "seconds": 1.5},    # warn
                {"name": "c", "seconds": 2.5},    # fail
                {"name": "fresh", "seconds": 9.0}])  # new
    rows = {r.name: r for r in compare(cur, base)}
    assert rows["a"].status == "ok"
    assert rows["b"].status == "warn"
    assert rows["c"].status == "fail"
    assert rows["fresh"].status == "new"
    assert rows["gone"].status == "missing"
    assert rows["c"].ratio == pytest.approx(2.5)


def test_compare_self_is_all_ok():
    doc = _doc([{"name": "a", "seconds": 0.123}])
    assert all(r.status == "ok" for r in compare(doc, doc))


def test_compare_subset_scopes_both_documents():
    """A shared baseline carries rows from several benches; gating one
    bench with ``subsets`` must neither fail on the other bench's rows
    nor report them as missing."""
    base = _doc([{"name": "micro[a]", "seconds": 1.0},
                 {"name": "service_load[p95]", "seconds": 0.5}])
    cur = _doc([{"name": "service_load[p95]", "seconds": 0.52}])
    rows = compare(cur, base, subsets=["service_load"])
    assert [r.name for r in rows] == ["service_load[p95]"]
    assert rows[0].status == "ok"
    # unscoped: the micro row from the baseline would read as missing
    unscoped = {r.name: r.status for r in compare(cur, base)}
    assert unscoped["micro[a]"] == "missing"
    # multiple prefixes union together
    both = compare(cur, base, subsets=["service_load", "micro"])
    assert {r.name for r in both} == {"micro[a]", "service_load[p95]"}


def test_render_table_is_aligned():
    text = render([GateRow("a", 1.0, 2.0, 0.5, "ok"),
                   GateRow("b", None, 2.0, None, "missing")])
    lines = text.splitlines()
    assert lines[0].startswith("benchmark")
    assert "OK" in text and "MISSING" in text


# ----------------------------------------------------------------------
# CLI entry (python -m repro.bench.gate)
# ----------------------------------------------------------------------
def _write(tmp_path, name, rows):
    path = tmp_path / name
    path.write_text(json.dumps(_doc(rows)))
    return str(path)


def test_main_passes_within_tolerance(tmp_path, capsys):
    base = _write(tmp_path, "base.json", [{"name": "a", "seconds": 1.0}])
    cur = _write(tmp_path, "cur.json", [{"name": "a", "seconds": 1.05}])
    assert main([cur, base]) == 0
    assert "gate passed" in capsys.readouterr().out


def test_main_warns_but_passes(tmp_path, capsys):
    base = _write(tmp_path, "base.json", [{"name": "a", "seconds": 1.0}])
    cur = _write(tmp_path, "cur.json", [{"name": "a", "seconds": 1.5}])
    assert main([cur, base]) == 0
    out = capsys.readouterr().out
    assert "warning" in out and "WARN" in out


def test_main_fails_beyond_2x(tmp_path, capsys):
    base = _write(tmp_path, "base.json", [{"name": "a", "seconds": 1.0}])
    cur = _write(tmp_path, "cur.json", [{"name": "a", "seconds": 2.5}])
    assert main([cur, base]) == 1
    assert "GATE FAILED" in capsys.readouterr().out


def test_main_custom_thresholds(tmp_path):
    base = _write(tmp_path, "base.json", [{"name": "a", "seconds": 1.0}])
    cur = _write(tmp_path, "cur.json", [{"name": "a", "seconds": 1.5}])
    assert main([cur, base, "--fail", "1.4"]) == 1
    assert main([cur, base, "--warn", "0.6"]) == 0


def test_main_subset_flag(tmp_path, capsys):
    base = _write(tmp_path, "base.json",
                  [{"name": "micro[a]", "seconds": 1.0},
                   {"name": "service_load[p95]", "seconds": 0.5}])
    cur = _write(tmp_path, "cur.json",
                 [{"name": "service_load[p95]", "seconds": 3.0}])
    # scoped to the service slice the 6x regression fails the gate ...
    assert main([cur, base, "--subset", "service_load"]) == 1
    capsys.readouterr()
    # ... and an empty slice is a usage error, not a silent pass
    assert main([cur, base, "--subset", "nonexistent"]) == 2


def test_main_reports_bad_input(tmp_path, capsys):
    good = _write(tmp_path, "good.json", [{"name": "a", "seconds": 1.0}])
    assert main([str(tmp_path / "missing.json"), good]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("not json")
    assert main([str(bad), good]) == 2
