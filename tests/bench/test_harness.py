"""Tests for the benchmark harness and figure specifications."""

import pytest

from repro.apps import CircuitApp
from repro.bench.figures import (FIGURES, PAPER_NODE_COUNTS, check_shape,
                                 figure_series, render_series)
from repro.bench.harness import (ARTIFACT_NAMES, PAPER_CONFIGS, BenchRow,
                                 render_rows, run_sweep, sweep_to_rows)


@pytest.fixture(scope="module")
def small_sweep():
    return run_sweep(
        lambda nodes: CircuitApp(pieces=nodes, nodes_per_piece=8,
                                 wires_per_piece=12),
        node_counts=(1, 2, 4), steady_iterations=2)


class TestRunSweep:
    def test_all_cells_present(self, small_sweep):
        systems = {f"{a}_{'dcr' if d else 'nodcr'}" for a, d in PAPER_CONFIGS}
        assert set(small_sweep) == {(s, n) for s in systems for n in (1, 2, 4)}

    def test_results_positive(self, small_sweep):
        for result in small_sweep.values():
            assert result.init_time > 0
            assert result.elapsed_time > 0
            assert result.throughput_per_node > 0

    def test_deterministic(self):
        def factory(nodes):
            return CircuitApp(pieces=nodes, nodes_per_piece=8,
                              wires_per_piece=12)
        a = run_sweep(factory, (2,), steady_iterations=1)
        b = run_sweep(factory, (2,), steady_iterations=1)
        for key in a:
            assert a[key].init_time == b[key].init_time
            assert a[key].elapsed_time == b[key].elapsed_time


class TestArtifactRows:
    def test_schema(self, small_sweep):
        rows = sweep_to_rows(small_sweep, reps=5)
        assert len(rows) == len(small_sweep) * 5
        systems = {r.system for r in rows}
        assert systems == {"neweqcr_dcr", "neweqcr_nodcr", "oldeqcr_dcr",
                           "oldeqcr_nodcr", "paint_nodcr"}
        assert all(r.procs_per_node == 1 for r in rows)

    def test_artifact_names_cover_all_algorithms(self):
        assert set(ARTIFACT_NAMES) >= {a for a, _ in PAPER_CONFIGS}

    def test_render(self):
        rows = [BenchRow("neweqcr_dcr", 1, 1, 0, 0.063, 1.668)]
        text = render_rows(rows)
        lines = text.splitlines()
        assert lines[0].split("\t") == ["system", "nodes", "procs_per_node",
                                        "rep", "init_time", "elapsed_time"]
        assert lines[1] == "neweqcr_dcr\t1\t1\t0\t0.063000\t1.668000"


class TestFigureSpecs:
    def test_six_figures(self):
        assert set(FIGURES) == {f"fig{i}" for i in range(12, 18)}
        apps = [s.app for s in FIGURES.values()]
        assert apps.count("stencil") == 2
        assert apps.count("circuit") == 2
        assert apps.count("pennant") == 2

    def test_node_counts_match_paper(self):
        assert PAPER_NODE_COUNTS == (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)

    def test_series_extraction(self, small_sweep):
        spec = FIGURES["fig16"]
        series = figure_series(spec, small_sweep)
        assert set(series) == {s for s, _ in small_sweep}
        for pts in series.values():
            assert [n for n, _ in pts] == [1, 2, 4]

    def test_render_series(self, small_sweep):
        spec = FIGURES["fig13"]
        text = render_series(spec, figure_series(spec, small_sweep))
        assert text.startswith("# fig13")
        assert "raycast_dcr" in text
        assert len(text.splitlines()) == 2 + 3  # header rows + 3 scales

    def test_factories_scale_pieces(self):
        for spec in FIGURES.values():
            app = spec.app_factory(2)
            assert app.pieces == 2

    def test_check_shape_small_scale_quiet(self, small_sweep):
        """At tiny scales the orderings are within noise; check_shape must
        not fire on the always-true claims."""
        problems = check_shape(FIGURES["fig13"], small_sweep)
        assert problems == [] or all("unexpectedly" not in p
                                     for p in problems)
