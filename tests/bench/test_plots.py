"""Tests for the ASCII plot renderer."""

import pytest

from repro.bench.figures import FIGURES
from repro.bench.plots import COLLISION, GLYPHS, ascii_plot, plot_figure


SERIES = {
    "fast": [(1, 100.0), (4, 100.0), (16, 90.0)],
    "slow": [(1, 100.0), (4, 25.0), (16, 5.0)],
}


class TestAsciiPlot:
    def test_basic_structure(self):
        text = ascii_plot(SERIES, width=40, height=10, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len([l for l in lines if "|" in l]) == 10
        assert any("-" * 10 in l for l in lines)          # x axis
        assert "fast" in lines[-1] and "slow" in lines[-1]  # legend

    def test_glyphs_plotted(self):
        text = ascii_plot(SERIES, width=40, height=10)
        assert GLYPHS[0] in text
        assert GLYPHS[1] in text

    def test_collision_marker(self):
        both = {"a": [(1, 10.0)], "b": [(1, 10.0)]}
        text = ascii_plot(both, width=10, height=5)
        assert COLLISION in text

    def test_axis_labels(self):
        text = ascii_plot(SERIES, width=40, height=10,
                          log_x=True, log_y=True)
        assert "100" in text   # y max
        assert "16" in text    # x max (2^4)
        assert "1" in text     # x min

    def test_empty(self):
        assert "(no data)" in ascii_plot({})

    def test_single_point(self):
        text = ascii_plot({"one": [(8, 3.0)]}, width=20, height=5)
        assert GLYPHS[0] in text

    def test_linear_axes(self):
        text = ascii_plot(SERIES, width=30, height=8,
                          log_x=False, log_y=False)
        assert GLYPHS[0] in text


class TestPlotFigure:
    def test_legend_order_matches_paper(self):
        spec = FIGURES["fig16"]
        series = {
            "tree_painter_nodcr": [(1, 1.0), (2, 0.5)],
            "raycast_dcr": [(1, 1.0), (2, 0.9)],
            "warnock_dcr": [(1, 1.0), (2, 0.8)],
        }
        text = plot_figure(spec, series)
        legend = text.splitlines()[-1]
        assert legend.index("raycast_dcr") < legend.index("warnock_dcr") \
            < legend.index("tree_painter_nodcr")
        assert "fig16" in text
