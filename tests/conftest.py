"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

from repro import (READ, READ_WRITE, Extent, IndexSpace, RegionRequirement,
                   RegionTree, TaskStream, reduce)
from repro.privileges import Privilege

# ----------------------------------------------------------------------
# shared hypothesis profile
# ----------------------------------------------------------------------
# One place pins the suite-wide policy instead of per-file settings:
# derandomized runs (CI must be reproducible — a flaking random example
# would poison the determinism guarantees this suite exists to check) and
# no deadline (wall-clock per example varies wildly across the CI matrix
# and under coverage).  Per-test @settings(...) still override counts;
# unspecified fields inherit from this profile.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")


# ----------------------------------------------------------------------
# deterministic RNG
# ----------------------------------------------------------------------
@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


# ----------------------------------------------------------------------
# the Figure 1 running example: 12 nodes, primary + ghost partitions
# ----------------------------------------------------------------------
def make_fig1_tree() -> tuple[RegionTree, object, object]:
    """The paper's running example: region N with fields up/down, a
    disjoint+complete primary partition P and an aliased, incomplete ghost
    partition G."""
    tree = RegionTree(Extent((12,)), {"up": np.int64, "down": np.int64},
                      name="N")
    P = tree.root.create_partition(
        "P", [IndexSpace.from_range(i * 4, (i + 1) * 4) for i in range(3)],
        disjoint=True, complete=True)
    G = tree.root.create_partition(
        "G", [IndexSpace.from_indices([3, 4]),
              IndexSpace.from_indices([0, 7, 8]),
              IndexSpace.from_indices([0, 4, 11])])
    return tree, P, G


@pytest.fixture
def fig1():
    return make_fig1_tree()


def fig1_stream(tree, P, G, iterations: int = 2) -> TaskStream:
    """The task stream of Figure 5 (t1/t2 phases over P and G)."""
    stream = TaskStream()

    def t1_body(pup, gdown):
        pup += 1
        gdown += 2

    def t2_body(pdown, gup):
        pdown *= 2
        gup += 3

    for _ in range(iterations):
        for i in range(3):
            stream.append(f"t1[{i}]",
                          [RegionRequirement(P[i], "up", READ_WRITE),
                           RegionRequirement(G[i], "down", reduce("sum"))],
                          t1_body, point=i)
        for i in range(3):
            stream.append(f"t2[{i}]",
                          [RegionRequirement(P[i], "down", READ_WRITE),
                           RegionRequirement(G[i], "up", reduce("sum"))],
                          t2_body, point=i)
    return stream


def fig1_initial(tree) -> dict[str, np.ndarray]:
    n = tree.root.space.size
    return {"up": np.arange(n, dtype=np.int64),
            "down": np.zeros(n, dtype=np.int64)}


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
def index_spaces(max_index: int = 64, min_size: int = 0,
                 max_size: int = 24) -> st.SearchStrategy[IndexSpace]:
    """Arbitrary sparse index spaces over [0, max_index)."""
    return st.lists(st.integers(0, max_index - 1),
                    min_size=min_size, max_size=max_size).map(
        IndexSpace.from_indices)


def nonempty_index_spaces(max_index: int = 64,
                          max_size: int = 24) -> st.SearchStrategy[IndexSpace]:
    return index_spaces(max_index, min_size=1, max_size=max_size)


@st.composite
def random_trees(draw, max_root: int = 32, fields: int = 1):
    """A region tree over [0, n) with 1–3 partitions (one possibly
    nested), covering the disjoint/aliased × complete/incomplete square."""
    n = draw(st.integers(6, max_root))
    field_space = {f"f{k}": np.int64 for k in range(fields)} \
        if fields > 1 else {"x": np.int64}
    tree = RegionTree(Extent((n,)), field_space)
    root_space = tree.root.space

    # always create one disjoint+complete partition (block split)
    pieces = draw(st.integers(2, min(5, n)))
    cuts = sorted(draw(st.sets(st.integers(1, n - 1),
                               min_size=pieces - 1, max_size=pieces - 1)))
    bounds = [0, *cuts, n]
    primary = tree.root.create_partition(
        "P", [IndexSpace.from_range(a, b) for a, b in zip(bounds, bounds[1:])],
        disjoint=True, complete=True)

    # optionally an aliased partition of random subsets
    if draw(st.booleans()):
        k = draw(st.integers(1, 4))
        subs = [draw(nonempty_index_spaces(n, max_size=max(2, n // 2)))
                for _ in range(k)]
        tree.root.create_partition("G", subs)

    # optionally partition one primary subregion further
    if draw(st.booleans()):
        target = primary[draw(st.integers(0, len(primary) - 1))]
        if target.space.size >= 2:
            half = target.space.size // 2
            left = IndexSpace(target.space.indices[:half], trusted=True)
            right = IndexSpace(target.space.indices[half:], trusted=True)
            target.create_partition("Q", [left, right],
                                    disjoint=True, complete=True)
    return tree


def _privileges() -> st.SearchStrategy[Privilege]:
    return st.sampled_from(
        [READ, READ_WRITE, reduce("sum"), reduce("max"), reduce("min")])


def _make_body(privilege: Privilege, seed: int):
    """A deterministic, privilege-appropriate task body."""
    if privilege.is_read:
        return None
    if privilege.is_write:
        def write_body(arr, *rest):
            arr[:] = arr * 2 + seed
        return write_body
    opname = privilege.redop.name

    def reduce_body(arr, *rest):
        if opname == "sum":
            arr += seed + 1
        elif opname == "max":
            np.maximum(arr, seed, out=arr)
        else:
            np.minimum(arr, -seed, out=arr)
    return reduce_body


@st.composite
def random_programs(draw):
    """A (tree, initial, stream) triple: a random tree plus a random
    sequence of single-requirement tasks over its regions."""
    tree = draw(random_trees())
    regions = list(tree.walk())
    n_tasks = draw(st.integers(1, 18))
    stream = TaskStream()
    for t in range(n_tasks):
        region = regions[draw(st.integers(0, len(regions) - 1))]
        privilege = draw(_privileges())
        body = _make_body(privilege, t)
        stream.append(f"task{t}",
                      [RegionRequirement(region, "x", privilege)], body)
    initial = {"x": np.arange(tree.root.space.size, dtype=np.int64)}
    return tree, initial, stream


def _make_multi_body(privileges, seed: int):
    """A body mutating each buffer per its requirement's privilege."""
    singles = [_make_body(p, seed) for p in privileges]

    def body(*buffers):
        for buf, single in zip(buffers, singles):
            if single is not None:
                single(buf)
    return body


@st.composite
def random_multifield_programs(draw):
    """Programs with two fields and multi-requirement tasks.

    Each task carries 1–3 requirements; combinations that would violate
    the section-4 intra-task aliasing restriction are filtered out, which
    leaves plenty of legal multi-requirement shapes: different fields with
    any privileges, same field with aliased reads or same-operator
    reductions, disjoint regions with anything.
    """
    from repro.runtime.task import validate_requirements
    from repro.errors import TaskError

    tree = draw(random_trees(fields=2))
    regions = list(tree.walk())
    fields = tree.field_space.names
    n_tasks = draw(st.integers(1, 14))
    stream = TaskStream()
    for t in range(n_tasks):
        n_reqs = draw(st.integers(1, 3))
        reqs = []
        for _ in range(n_reqs):
            region = regions[draw(st.integers(0, len(regions) - 1))]
            field = fields[draw(st.integers(0, len(fields) - 1))]
            privilege = draw(_privileges())
            candidate = reqs + [RegionRequirement(region, field, privilege)]
            try:
                validate_requirements(candidate, "probe")
            except TaskError:
                continue  # would alias illegally — drop this requirement
            reqs = candidate
        if not reqs:
            continue
        body = _make_multi_body([r.privilege for r in reqs], t)
        stream.append(f"task{t}", reqs, body)
    initial = {f: np.arange(tree.root.space.size, dtype=np.int64) * (k + 1)
               for k, f in enumerate(fields)}
    return tree, initial, stream
