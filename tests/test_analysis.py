"""Tests for the validation and metrics helpers."""

import numpy as np
import pytest

from repro import (READ_WRITE, CoherenceError, IndexSpace, RegionRequirement,
                   RegionTree, TaskStream)
from repro.analysis import compare_algorithms


def make_program():
    tree = RegionTree(8, {"x": np.int64})
    halves = tree.root.create_partition(
        "H", [IndexSpace.from_range(0, 4), IndexSpace.from_range(4, 8)],
        disjoint=True, complete=True)
    stream = TaskStream()

    def w(arr):
        arr[:] = 7
    stream.append("w", [RegionRequirement(halves[0], "x", READ_WRITE)], w)
    return tree, {"x": np.zeros(8, dtype=np.int64)}, stream


class TestCompareAlgorithms:
    def test_returns_run_per_algorithm(self):
        tree, initial, stream = make_program()
        runs = compare_algorithms(tree, initial, stream)
        assert set(runs) == {"painter", "tree_painter", "warnock",
                             "raycast", "zbuffer"}
        for run in runs.values():
            assert list(run.fields["x"][:4]) == [7] * 4
            assert len(run.graph) == 1

    def test_subset_of_algorithms(self):
        tree, initial, stream = make_program()
        runs = compare_algorithms(tree, initial, stream,
                                  algorithms=["raycast"])
        assert set(runs) == {"raycast"}

    def test_detects_value_divergence(self):
        """A deliberately broken body that behaves differently per replay
        must be caught."""
        tree = RegionTree(4, {"x": np.int64})
        part = tree.root.create_partition(
            "P", [IndexSpace.from_range(0, 4)])
        stream = TaskStream()
        calls = {"n": 0}

        def nondeterministic(arr):
            calls["n"] += 1
            arr[:] = calls["n"]
        stream.append("bad", [RegionRequirement(part[0], "x", READ_WRITE)],
                      nondeterministic)
        with pytest.raises(CoherenceError, match="diverges"):
            compare_algorithms(tree, {"x": np.zeros(4, dtype=np.int64)},
                               stream)

    def test_float_tolerance_mode(self):
        tree, initial, stream = make_program()
        compare_algorithms(tree, {"x": np.zeros(8)}, stream, exact=False)
