"""Tests for the rendering helpers."""

import numpy as np

from repro import Runtime
from repro.analysis.render import (dependence_dot, render_eqset_map,
                                   render_machine_timeline,
                                   render_region_tree, render_waves,
                                   summarize_costs)

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


class TestRegionTreeRendering:
    def test_structure_present(self):
        tree, P, G = make_fig1_tree()
        text = render_region_tree(tree)
        assert "N [12 elems]" in text
        assert "◬ P (disjoint+complete)" in text
        assert "◬ G (aliased+incomplete)" in text
        assert "N.P[0] [4 elems]" in text
        assert text.count("◬") == 2

    def test_nested(self):
        tree, P, _ = make_fig1_tree()
        from repro import IndexSpace
        P[0].create_partition("Q", [IndexSpace.from_range(0, 2)])
        text = render_region_tree(tree)
        assert "N.P[0].Q[0]" in text


class TestScheduleRendering:
    def setup_method(self):
        tree, P, G = make_fig1_tree()
        self.rt = Runtime(tree, fig1_initial(tree))
        self.rt.replay(fig1_stream(tree, P, G, 1))

    def test_waves(self):
        text = render_waves(self.rt.tasks, self.rt.graph)
        lines = text.splitlines()
        assert lines[0].startswith("wave   0: t1[0], t1[1], t1[2]")
        assert len(lines) == 2

    def test_dot(self):
        dot = dependence_dot(self.rt.tasks, self.rt.graph, title="fig5")
        assert dot.startswith('digraph "fig5"')
        assert dot.rstrip().endswith("}")
        assert '"t0" [label="t1[0]"];' in dot
        # an edge from phase 1 into phase 2
        assert any(f'"t{a}" -> "t{b}";' in dot
                   for a in (0, 1, 2) for b in (3, 4, 5))
        assert "rank=same" in dot


class TestEqsetMap:
    def test_map_covers_all_elements(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, 1))
        text = render_eqset_map(rt.algorithm_for("up"))
        assert len(text) == 12
        assert "?" not in text

    def test_wrapping(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="warnock")
        rt.replay(fig1_stream(tree, P, G, 1))
        text = render_eqset_map(rt.algorithm_for("up"), width=4)
        assert len(text.splitlines()) == 3

    def test_distinct_sets_distinct_glyphs(self):
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, 1))
        text = render_eqset_map(rt.algorithm_for("up"))
        n_sets = rt.algorithm_for("up").num_equivalence_sets()
        assert len(set(text)) == n_sets


class TestMisc:
    def test_timeline(self):
        text = render_machine_timeline(np.array([1.0, 0.5, 0.0]), scale=10)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_timeline_empty(self):
        assert render_machine_timeline(np.array([])) == ""

    def test_cost_summary(self):
        text = summarize_costs({"entries_scanned": 1200, "splits": 3})
        assert text.splitlines()[0].startswith("entries_scanned")
        assert "1,200" in text
        assert summarize_costs({}) == "(no metered operations)"
