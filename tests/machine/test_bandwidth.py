"""Tests for the data-movement (bandwidth) term of the simulator."""

import pytest

from repro.machine import MachineSpec, MachineSimulator
from repro.visibility.meter import TaskCost

from tests.conftest import make_fig1_tree


def make_sim(bandwidth=10e9, nodes=2):
    tree, _, _ = make_fig1_tree()
    spec = MachineSpec(bandwidth=bandwidth).with_nodes(nodes)
    return MachineSimulator(spec, tree)


EMPTY = TaskCost(counters={}, touches=frozenset())


class TestBandwidth:
    def test_data_bytes_charged_to_exec_pipeline(self):
        sim = make_sim(bandwidth=1e6)
        sim.begin_epoch()
        sim.process_task(EMPTY, origin=0, exec_node=1, data_bytes=1_000_000)
        elapsed = sim.end_epoch()
        # 1 MB over 1 MB/s dominates the task_run constant
        assert elapsed == pytest.approx(sim.spec.task_run + 1.0)

    def test_zero_bytes_default(self):
        sim = make_sim()
        sim.begin_epoch()
        sim.process_task(EMPTY, origin=0, exec_node=1)
        elapsed = sim.end_epoch()
        assert elapsed == pytest.approx(
            max(sim.spec.task_run, sim.spec.launch_overhead))

    def test_bandwidth_scales_transfer_time(self):
        slow = make_sim(bandwidth=1e6)
        fast = make_sim(bandwidth=1e9)
        for sim in (slow, fast):
            sim.begin_epoch()
            sim.process_task(EMPTY, origin=0, exec_node=1,
                             data_bytes=8_000_000)
        assert slow.end_epoch() > fast.end_epoch()

    def test_no_exec_node_no_transfer(self):
        sim = make_sim(bandwidth=1.0)  # pathologically slow link
        sim.begin_epoch()
        sim.process_task(EMPTY, origin=0, exec_node=None, data_bytes=10**9)
        assert sim.end_epoch() < 1.0  # nothing charged to execution
