"""Tests for the host-calibration helper."""

import pytest

from repro.machine import MachineSpec
from repro.machine.calibrate import calibrate, measure_analysis_constants


class TestMeasurement:
    def test_measures_positive_constants(self):
        m = measure_analysis_constants(pieces=4, iterations=2)
        assert m["elapsed"] > 0
        assert m["weighted_ops"] > 0
        assert m["launches"] == 2 * 3 * 4  # two iterations, 3 phases
        assert m["seconds_per_op"] > 0
        assert m["seconds_per_launch"] > 0

    def test_per_launch_exceeds_per_op(self):
        m = measure_analysis_constants(pieces=4, iterations=2)
        assert m["seconds_per_launch"] > m["seconds_per_op"]


class TestCalibrate:
    def test_returns_spec_with_host_constants(self):
        spec = calibrate(pieces=4, iterations=2)
        assert isinstance(spec, MachineSpec)
        assert spec.analysis_op > 0
        assert spec.launch_overhead > 0
        # network constants inherited from the base, not measured
        assert spec.latency == MachineSpec().latency

    def test_base_network_preserved(self):
        base = MachineSpec(latency=123e-6)
        spec = calibrate(base=base, pieces=4, iterations=2)
        assert spec.latency == 123e-6

    def test_calibrated_simulation_runs(self):
        from repro.apps import CircuitApp
        from repro.machine import simulate_app
        spec = calibrate(pieces=4, iterations=2)
        app = CircuitApp(pieces=4, nodes_per_piece=8, wires_per_piece=12)
        result = simulate_app(app, "raycast", dcr=True, spec=spec)
        assert result.init_time > 0
