"""Tests for the distributed-machine cost simulator."""

import numpy as np
import pytest

from repro import MachineError
from repro.apps import CircuitApp, StencilApp
from repro.machine import (MachineSimulator, MachineSpec, control_node,
                           dcr_sharding, simulate_app)
from repro.runtime.task import Task, RegionRequirement
from repro.privileges import READ
from repro.visibility.meter import TaskCost

from tests.conftest import make_fig1_tree


class TestSharding:
    def make_task(self, point):
        tree, P, _ = make_fig1_tree()
        return Task(0, "t", (RegionRequirement(P[0], "up", READ),),
                    None, point)

    def test_control_node(self):
        assert control_node(self.make_task(5)) == 0
        assert control_node(self.make_task(None)) == 0

    def test_dcr_wraps(self):
        shard = dcr_sharding(4)
        assert shard(self.make_task(0)) == 0
        assert shard(self.make_task(5)) == 1
        assert shard(self.make_task(None)) == 0


class TestMachineSimulator:
    def make(self, nodes=4):
        tree, _, _ = make_fig1_tree()
        return MachineSimulator(MachineSpec().with_nodes(nodes), tree)

    def test_region_ownership(self):
        tree, P, G = make_fig1_tree()
        sim = MachineSimulator(MachineSpec().with_nodes(3), tree)
        assert sim.owner_of(("treenode", tree.root.uid), origin=1) == 0
        assert sim.owner_of(("treenode", P[0].uid), origin=1) == 0
        assert sim.owner_of(("treenode", P[2].uid), origin=1) == 2

    def test_painter_history_at_control(self):
        sim = self.make()
        assert sim.owner_of(("painter_history", 0), origin=3) == 0

    def test_eqset_spatial_ownership(self):
        sim = self.make(nodes=4)  # root size 12
        assert sim.owner_of(("eqset", 100, 0), origin=2) == 0
        assert sim.owner_of(("eqset", 101, 11), origin=2) == 3

    def test_view_owned_by_creator(self):
        sim = self.make()
        assert sim.owner_of(("view", 7), origin=2) == 2
        # ownership sticks to the first toucher
        assert sim.owner_of(("view", 7), origin=3) == 2

    def test_remote_touch_costs_message(self):
        sim = self.make(nodes=2)
        sim.begin_epoch()
        local = TaskCost(counters={"entries_scanned": 1},
                         touches=frozenset([("painter_history", 0)]))
        sim.process_task(local, origin=0, exec_node=None)
        assert sim.messages_sent == 0
        sim.process_task(local, origin=1, exec_node=None)
        assert sim.messages_sent == 1

    def test_origin_out_of_range(self):
        sim = self.make(nodes=2)
        with pytest.raises(MachineError):
            sim.process_task(TaskCost(counters={}, touches=frozenset()),
                             origin=5, exec_node=None)

    def test_epoch_elapsed_max_of_analysis_and_exec(self):
        sim = self.make(nodes=2)
        sim.begin_epoch()
        cost = TaskCost(counters={"entries_scanned": 100},
                        touches=frozenset())
        sim.process_task(cost, origin=0, exec_node=1)
        elapsed = sim.end_epoch()
        spec = sim.spec
        analysis = spec.launch_overhead + 100 * spec.analysis_op
        assert elapsed == pytest.approx(max(analysis, spec.task_run))

    def test_dcr_sync_adds_collective(self):
        sim = self.make(nodes=4)
        sim.begin_epoch()
        e_plain = sim.end_epoch(synchronized=False)
        sim.begin_epoch()
        e_sync = sim.end_epoch(synchronized=True)
        assert e_sync > e_plain

    def test_clocks_barrier_at_epoch_end(self):
        sim = self.make(nodes=3)
        sim.begin_epoch()
        cost = TaskCost(counters={"entries_scanned": 500},
                        touches=frozenset())
        sim.process_task(cost, origin=1, exec_node=None)
        sim.end_epoch()
        assert np.allclose(sim.clocks, sim.clocks[0])


class TestSimulateApp:
    def test_painter_dcr_rejected(self):
        app = CircuitApp(pieces=2, nodes_per_piece=4, wires_per_piece=6)
        with pytest.raises(MachineError):
            simulate_app(app, "painter", dcr=True)

    def test_result_schema(self):
        app = StencilApp(pieces=4, tile=4)
        r = simulate_app(app, "raycast", dcr=True, steady_iterations=2)
        assert r.system == "raycast_dcr"
        assert r.nodes == 4
        assert r.iterations == 2
        assert r.init_time > 0 and r.elapsed_time > 0
        assert r.units_per_piece == 16
        assert r.throughput_per_node == pytest.approx(
            16 / (r.elapsed_time / 2))

    def test_weak_scaling_shapes(self):
        """The paper's headline orderings at a modest scale: ray casting
        beats Warnock beats the painter, and DCR beats no-DCR."""
        results = {}
        for algo, dcr in [("tree_painter", False), ("warnock", False),
                          ("warnock", True), ("raycast", False),
                          ("raycast", True)]:
            app = CircuitApp(pieces=16, nodes_per_piece=8,
                             wires_per_piece=12)
            results[(algo, dcr)] = simulate_app(app, algo, dcr=dcr,
                                                steady_iterations=2)
        tp = {k: v.throughput_per_node for k, v in results.items()}
        # like-for-like orderings with the figures' 5% tie tolerance
        assert tp[("raycast", False)] >= 0.95 * tp[("warnock", False)]
        assert tp[("warnock", False)] >= tp[("tree_painter", False)]
        assert tp[("raycast", True)] >= tp[("raycast", False)]
        assert tp[("warnock", True)] >= tp[("warnock", False)]
        init = {k: v.init_time for k, v in results.items()}
        assert init[("raycast", True)] <= init[("warnock", True)]
        assert init[("raycast", False)] <= init[("tree_painter", False)]

    def test_single_node_configs_agree(self):
        """At one node there is no distribution: all systems should land
        within a small factor of each other (artifact section A.4 shows
        near-identical 1-node times)."""
        times = []
        for algo in ("tree_painter", "warnock", "raycast"):
            app = StencilApp(pieces=1, tile=4)
            times.append(simulate_app(app, algo).init_time)
        assert max(times) < 4 * min(times)


class TestUtilization:
    def test_analysis_and_execution_split(self):
        from repro.visibility.meter import TaskCost
        tree, _, _ = make_fig1_tree()
        sim = MachineSimulator(MachineSpec().with_nodes(2), tree)
        sim.begin_epoch()
        cost = TaskCost(counters={"entries_scanned": 50},
                        touches=frozenset())
        sim.process_task(cost, origin=0, exec_node=1)
        util = sim.utilization()
        assert util["analysis"][0] > 0
        assert util["analysis"][1] == 0
        assert util["execution"][1] > 0
        assert util["execution"][0] == 0
