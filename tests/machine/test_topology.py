"""Tests for machine specs and the cost model."""

import pytest

from repro import MachineError
from repro.machine import CostModel, DEFAULT_WEIGHTS, MachineSpec
from repro.visibility.meter import TaskCost


class TestMachineSpec:
    def test_defaults_valid(self):
        spec = MachineSpec()
        assert spec.nodes == 1

    def test_validation(self):
        with pytest.raises(MachineError):
            MachineSpec(nodes=0)
        with pytest.raises(MachineError):
            MachineSpec(latency=-1.0)
        with pytest.raises(MachineError):
            MachineSpec(task_run=-0.1)

    def test_with_nodes(self):
        spec = MachineSpec(latency=5e-6)
        scaled = spec.with_nodes(64)
        assert scaled.nodes == 64
        assert scaled.latency == 5e-6
        assert spec.nodes == 1  # original untouched


class TestCostModel:
    def test_known_weights(self):
        model = CostModel()
        cost = TaskCost(counters={"entries_scanned": 10,
                                  "eqsets_split": 2}, touches=frozenset())
        want = 10 * DEFAULT_WEIGHTS["entries_scanned"] \
            + 2 * DEFAULT_WEIGHTS["eqsets_split"]
        assert model.ops(cost) == want

    def test_unknown_events_not_free(self):
        model = CostModel()
        cost = TaskCost(counters={"brand_new_event": 5}, touches=frozenset())
        assert model.ops(cost) == 5 * model.default_weight

    def test_seconds(self):
        model = CostModel(weights={"e": 2.0})
        cost = TaskCost(counters={"e": 3}, touches=frozenset())
        assert model.seconds(cost, analysis_op=1e-6) == pytest.approx(6e-6)

    def test_total_ops(self):
        cost = TaskCost(counters={"a": 1, "b": 2}, touches=frozenset([1]))
        assert cost.total_ops == 3
