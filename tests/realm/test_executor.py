"""Tests for the Realm executor: analyzed streams as event graphs."""

import numpy as np
import pytest

from repro import (READ_WRITE, IndexSpace, RegionRequirement, RegionTree,
                   Runtime, TaskStream, reduce)
from repro.realm import RealmExecutor, RealmRuntime
from repro.runtime.executor import SequentialExecutor

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree


def analyzed(tree, initial, stream):
    rt = Runtime(tree, initial, algorithm="raycast")
    for task in stream:
        rt.launch(task.name, task.requirements, None, task.point)
    return list(stream), rt.graph


class TestRealmExecution:
    @pytest.mark.parametrize("procs", [0, 4], ids=["inline", "threaded"])
    def test_matches_sequential(self, procs):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, iterations=3)
        tasks, graph = analyzed(tree, fig1_initial(tree), stream)

        reference = SequentialExecutor(tree, fig1_initial(tree))
        reference.run_stream(stream)

        with RealmRuntime(num_procs=procs) as realm:
            ex = RealmExecutor(tree, fig1_initial(tree), runtime=realm)
            poison = ex.run(tasks, graph)
        assert not any(poison.values())
        for field in ("up", "down"):
            assert np.array_equal(ex.field(field), reference.field(field))

    def test_matches_sequential_on_app(self):
        from repro.apps import PennantApp
        app = PennantApp(pieces=3, zones_x=3, zones_y=3)
        stream = TaskStream()
        stream.extend_from(app.init_stream())
        for _ in range(2):
            stream.extend_from(app.iteration_stream())
        tasks, graph = analyzed(app.tree, app.initial, stream)
        reference = SequentialExecutor(app.tree, app.initial)
        reference.run_stream(stream)
        with RealmExecutor(app.tree, app.initial) as ex:
            poison = ex.run(tasks, graph)
        assert not any(poison.values())
        for field in app.tree.field_space.names:
            np.testing.assert_allclose(ex.field(field),
                                       reference.field(field))

    def test_failed_task_poisons_dependents_only(self):
        """A failing task skips its downstream slice; independent pieces
        complete — the fault isolation Realm's poison model provides."""
        tree = RegionTree(8, {"x": np.int64})
        halves = tree.root.create_partition(
            "H", [IndexSpace.from_range(0, 4), IndexSpace.from_range(4, 8)],
            disjoint=True, complete=True)
        stream = TaskStream()

        def boom(arr):
            raise ValueError("injected")

        def bump(arr):
            arr += 1
        stream.append("bad", [RegionRequirement(halves[0], "x",
                                                READ_WRITE)], boom)
        stream.append("after_bad", [RegionRequirement(halves[0], "x",
                                                      reduce("sum"))], bump)
        stream.append("independent", [RegionRequirement(halves[1], "x",
                                                        READ_WRITE)], bump)
        tasks, graph = analyzed(tree, {"x": np.zeros(8, dtype=np.int64)},
                                stream)
        with RealmExecutor(tree, {"x": np.zeros(8, dtype=np.int64)}) as ex:
            poison = ex.run(tasks, graph)
        assert poison[0] and poison[1]
        assert not poison[2]
        out = ex.field("x")
        assert list(out[:4]) == [0, 0, 0, 0]   # poisoned slice untouched
        assert list(out[4:]) == [1, 1, 1, 1]   # independent piece ran

    def test_validation(self):
        tree, P, G = make_fig1_tree()
        stream = fig1_stream(tree, P, G, 1)
        tasks, graph = analyzed(tree, fig1_initial(tree), stream)
        from repro.errors import TaskError
        with RealmExecutor(tree, fig1_initial(tree)) as ex:
            with pytest.raises(TaskError):
                ex.run(tasks[:-1], graph)
        with pytest.raises(TaskError):
            RealmExecutor(tree, {"up": np.zeros(12)})
