"""Tests for the Realm runtime: deferred execution, processors, poison."""

import threading

import pytest

from repro.realm.events import Event, RealmError, UserEvent
from repro.realm.runtime import RealmRuntime


@pytest.fixture(params=[0, 3], ids=["inline", "threaded"])
def realm(request):
    rt = RealmRuntime(num_procs=request.param)
    yield rt
    rt.shutdown()


class TestSpawn:
    def test_spawn_runs(self, realm):
        seen = []
        done = realm.spawn(lambda: seen.append(1))
        realm.wait_for_quiescence(timeout=5)
        assert seen == [1]
        assert done.has_triggered() and not done.is_poisoned()

    def test_precondition_defers(self, realm):
        gate = realm.create_user_event()
        seen = []
        done = realm.spawn(lambda: seen.append(1), wait_on=gate)
        assert seen == [] and not done.has_triggered()
        gate.trigger()
        realm.wait_for_quiescence(timeout=5)
        assert seen == [1]

    def test_chain(self, realm):
        order = []
        a = realm.spawn(lambda: order.append("a"))
        b = realm.spawn(lambda: order.append("b"), wait_on=a)
        realm.spawn(lambda: order.append("c"), wait_on=b)
        realm.wait_for_quiescence(timeout=5)
        assert order == ["a", "b", "c"]

    def test_fan_out_fan_in(self, realm):
        gate = realm.create_user_event()
        results = []
        lock = threading.Lock()

        def work(k):
            with lock:
                results.append(k)
        branches = [realm.spawn(lambda k=k: work(k), wait_on=gate)
                    for k in range(8)]
        joined = []
        realm.spawn(lambda: joined.append(sorted(results)),
                    wait_on=Event.merge(branches))
        gate.trigger()
        realm.wait_for_quiescence(timeout=5)
        assert joined == [list(range(8))]

    def test_long_inline_chain_no_recursion(self):
        """10k-deep chains must not overflow the stack in inline mode."""
        rt = RealmRuntime(num_procs=0)
        count = [0]
        prev = None
        for _ in range(10_000):
            prev = rt.spawn(lambda: count.__setitem__(0, count[0] + 1),
                            wait_on=prev)
        rt.wait_for_quiescence(timeout=30)
        assert count[0] == 10_000
        rt.shutdown()


class TestPoison:
    def test_exception_poisons_completion(self, realm):
        def boom():
            raise ValueError("injected")
        done = realm.spawn(boom)
        realm.wait_for_quiescence(timeout=5)
        assert done.is_poisoned()

    def test_poison_skips_dependents(self, realm):
        seen = []

        def boom():
            raise ValueError("injected")
        bad = realm.spawn(boom)
        skipped = realm.spawn(lambda: seen.append("never"), wait_on=bad)
        realm.wait_for_quiescence(timeout=5)
        assert skipped.is_poisoned()
        assert seen == []

    def test_poison_cascades_through_merge(self, realm):
        def boom():
            raise ValueError("injected")
        bad = realm.spawn(boom)
        good = realm.spawn(lambda: None)
        seen = []
        last = realm.spawn(lambda: seen.append(1),
                           wait_on=Event.merge([bad, good]))
        realm.wait_for_quiescence(timeout=5)
        assert last.is_poisoned() and seen == []

    def test_independent_work_survives_poison(self, realm):
        seen = []

        def boom():
            raise ValueError("injected")
        realm.spawn(boom)
        realm.spawn(lambda: seen.append("ok"))
        realm.wait_for_quiescence(timeout=5)
        assert seen == ["ok"]


class TestLifecycle:
    def test_negative_procs_rejected(self):
        with pytest.raises(RealmError):
            RealmRuntime(num_procs=-1)

    def test_spawn_after_shutdown_rejected(self):
        rt = RealmRuntime(num_procs=0)
        rt.shutdown()
        with pytest.raises(RealmError):
            rt.spawn(lambda: None)

    def test_context_manager(self):
        seen = []
        with RealmRuntime(num_procs=2) as rt:
            rt.spawn(lambda: seen.append(1))
        assert seen == [1]

    def test_quiescence_counts_deferred_ops(self, realm):
        gate = realm.create_user_event()
        realm.spawn(lambda: None, wait_on=gate)
        with pytest.raises(RealmError):
            realm.wait_for_quiescence(timeout=0.05)
        gate.trigger()
        realm.wait_for_quiescence(timeout=5)
