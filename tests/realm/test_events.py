"""Tests for Realm events: triggering, merging, poison propagation."""

import threading

import pytest

from repro.realm.events import Event, RealmError, UserEvent


class TestBasicEvents:
    def test_nil_pretriggered(self):
        e = Event.nil()
        assert e.has_triggered() and not e.is_poisoned()

    def test_user_event_lifecycle(self):
        e = UserEvent()
        assert not e.has_triggered()
        assert not e.is_poisoned()
        e.trigger()
        assert e.has_triggered() and not e.is_poisoned()

    def test_double_trigger_rejected(self):
        e = UserEvent()
        e.trigger()
        with pytest.raises(RealmError):
            e.trigger()

    def test_poisoned_trigger(self):
        e = UserEvent()
        e.trigger(poisoned=True)
        assert e.is_poisoned()

    def test_callback_after_trigger_runs_immediately(self):
        e = UserEvent()
        e.trigger()
        seen = []
        e.add_callback(seen.append)
        assert seen == [False]

    def test_callback_before_trigger_deferred(self):
        e = UserEvent()
        seen = []
        e.add_callback(seen.append)
        assert seen == []
        e.trigger(poisoned=True)
        assert seen == [True]

    def test_callbacks_fire_once(self):
        e = UserEvent()
        count = []
        e.add_callback(lambda p: count.append(p))
        e.trigger()
        assert count == [False]

    def test_wait_returns_poison(self):
        e = UserEvent()
        threading.Timer(0.01, e.trigger, kwargs={"poisoned": True}).start()
        assert e.wait(timeout=5) is True

    def test_wait_timeout(self):
        e = UserEvent()
        with pytest.raises(RealmError):
            e.wait(timeout=0.01)

    def test_repr_states(self):
        e = UserEvent()
        assert "pending" in repr(e)
        e.trigger()
        assert "triggered" in repr(e)
        p = UserEvent()
        p.trigger(poisoned=True)
        assert "poisoned" in repr(p)


class TestMerge:
    def test_merge_empty_is_nil(self):
        assert Event.merge([]).has_triggered()

    def test_merge_single_is_identity(self):
        e = UserEvent()
        assert Event.merge([e]) is e

    def test_merge_waits_for_all(self):
        a, b, c = UserEvent(), UserEvent(), UserEvent()
        m = Event.merge([a, b, c])
        a.trigger()
        b.trigger()
        assert not m.has_triggered()
        c.trigger()
        assert m.has_triggered() and not m.is_poisoned()

    def test_merge_propagates_poison(self):
        a, b = UserEvent(), UserEvent()
        m = Event.merge([a, b])
        a.trigger(poisoned=True)
        b.trigger()
        assert m.is_poisoned()

    def test_merge_of_triggered_inputs(self):
        a, b = UserEvent(), UserEvent()
        a.trigger()
        b.trigger()
        assert Event.merge([a, b]).has_triggered()

    def test_deep_merge_tree(self):
        leaves = [UserEvent() for _ in range(64)]
        level = list(leaves)
        while len(level) > 1:
            level = [Event.merge(level[i:i + 2])
                     for i in range(0, len(level), 2)]
        root = level[0]
        for leaf in leaves[:-1]:
            leaf.trigger()
        assert not root.has_triggered()
        leaves[-1].trigger()
        assert root.has_triggered()
