"""Tests for the reduction-operator registry."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import PrivilegeError, ReductionOp, get_reduction, \
    known_reductions, register_reduction
from repro.reductions import BITAND, BITOR, MAX, MIN, PROD, SUM


class TestBuiltins:
    def test_registry_contents(self):
        assert {"sum", "prod", "min", "max", "bitor", "bitand"} <= \
            set(known_reductions())

    def test_lookup(self):
        assert get_reduction("sum") is SUM
        assert get_reduction("min") is MIN

    def test_unknown_raises(self):
        with pytest.raises(PrivilegeError):
            get_reduction("xor")

    @pytest.mark.parametrize("op", [SUM, PROD, MAX, MIN])
    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8))
    def test_identity_law(self, op, xs):
        arr = np.asarray(xs)
        ident = op.identity_array(arr.size)
        assert np.array_equal(op.fold(arr, ident), arr)

    @pytest.mark.parametrize("op", [BITOR, BITAND])
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=8))
    def test_bitwise_identity_law(self, op, xs):
        arr = np.asarray(xs, dtype=np.int64)
        ident = op.identity_array(arr.size, np.int64)
        assert np.array_equal(op.fold(arr, ident), arr)

    def test_fold_semantics(self):
        a = np.array([1.0, 5.0, -2.0])
        b = np.array([4.0, 2.0, -3.0])
        assert np.array_equal(SUM.fold(a, b), [5.0, 7.0, -5.0])
        assert np.array_equal(PROD.fold(a, b), [4.0, 10.0, 6.0])
        assert np.array_equal(MIN.fold(a, b), [1.0, 2.0, -3.0])
        assert np.array_equal(MAX.fold(a, b), [4.0, 5.0, -2.0])

    def test_identity_array_dtype(self):
        out = SUM.identity_array(3, np.int64)
        assert out.dtype == np.int64 and list(out) == [0, 0, 0]


class TestRegistration:
    def test_duplicate_rejected(self):
        with pytest.raises(PrivilegeError):
            register_reduction(ReductionOp("sum", lambda a, b: a + b, 0))

    def test_replace_allowed(self):
        op = ReductionOp("sum", lambda a, b: a + b, 0)
        register_reduction(op, replace=True)
        assert get_reduction("sum") is op
        # restore the canonical instance for other tests
        register_reduction(SUM, replace=True)

    def test_custom_operator(self):
        name = "test_absmax"
        if name not in known_reductions():
            register_reduction(ReductionOp(
                name, lambda a, b: np.maximum(np.abs(a), np.abs(b)), 0))
        op = get_reduction(name)
        assert np.array_equal(
            op.fold(np.array([-5.0, 1.0]), np.array([3.0, -2.0])),
            [5.0, 2.0])
