"""Real-runtime service integration: the tenant-isolation differential.

The acceptance bar for the service is visibility-flavoured: every
tenant's completed sessions must carry analysis fingerprints
bit-identical to a cold single-tenant replay of the same stream — for
every coherence algorithm, on both the serial and the process backend.
Concurrent tenants, shared caches, shared provenance: none of it may
leak into analysis results.
"""

import asyncio

import multiprocessing as mp

import pytest

from repro import ALGORITHMS
from repro.geometry.fastpath import geometry_cache
from repro.obs import provenance as prov
from repro.obs.provenance import ProvenanceLedger
from repro.service import (OK, AnalysisService, SessionRequest,
                           verify_sessions)

TENANTS = ("alice", "bob")


def run_sessions(backend, requests, **kw):
    async def main():
        defaults = dict(backend=backend, shards=2, rate=1000.0,
                        burst=1000.0, max_inflight=64, queue_limit=64)
        defaults.update(kw)
        async with AnalysisService(**defaults) as svc:
            results = await asyncio.gather(
                *[svc.submit(r) for r in requests])
            return svc, results

    return asyncio.run(main())


def matrix_requests(algorithms, app="stencil", pieces=4):
    return [SessionRequest(tenant=tenant, app=app, pieces=pieces,
                           iterations=1, algorithm=algo)
            for algo in algorithms for tenant in TENANTS]


class TestSerialIsolation:
    def test_all_algorithms_fingerprint_differential(self):
        requests = matrix_requests(list(ALGORITHMS))
        svc, results = run_sessions("serial", requests)
        assert all(r.status == OK for r in results), \
            [r.describe() for r in results if r.status != OK]
        # the bar: cold single-tenant replay reproduces every session
        assert verify_sessions(results) == []
        # same request, different tenants => identical analysis results
        by_algo = {}
        for r in results:
            by_algo.setdefault(r.request.algorithm, set()).add(
                r.fingerprint)
        for algo, prints in by_algo.items():
            assert len(prints) == 1, \
                f"{algo}: tenants diverged: {sorted(prints)}"

    def test_slot_continuity_across_sessions(self):
        requests = [SessionRequest(tenant="alice", algorithm="raycast")
                    for _ in range(3)]
        svc, results = run_sessions("serial", requests)
        assert [r.status for r in results] == [OK] * 3
        assert [r.fresh for r in sorted(results, key=lambda r: r.session)] \
            == [True, False, False]
        assert {r.epoch for r in results} == {0}
        # replay the whole three-session chain from cold
        assert verify_sessions(results) == []
        # successive windows on evolving state produce distinct prints
        prints = [r.fingerprint
                  for r in sorted(results, key=lambda r: r.session)]
        assert prints[0] != prints[1]


class TestProcessIsolation:
    def test_process_pool_matches_serial_and_verifies(self):
        algorithms = ("raycast", "warnock", "tree_painter")
        requests = matrix_requests(algorithms)
        svc, serial_results = run_sessions("serial", requests)
        svc, process_results = run_sessions("process", requests)
        assert all(r.status == OK for r in process_results), \
            [r.describe() for r in process_results if r.status != OK]
        assert all(r.backend == "process" and not r.degraded
                   for r in process_results)
        assert verify_sessions(process_results) == []
        # fingerprints are backend-independent: the process pool saw
        # exactly what the serial backend saw
        key = lambda r: (r.tenant, r.request.algorithm)  # noqa: E731
        serial_prints = {key(r): r.fingerprint for r in serial_results}
        for r in process_results:
            assert r.fingerprint == serial_prints[key(r)]
        # the service's worker processes must not outlive it
        for child in mp.active_children():
            child.join(timeout=5.0)
        assert not [c for c in mp.active_children() if c.is_alive()]


class TestTenantIsolationSeams:
    def test_provenance_records_are_tenant_tagged(self):
        previous = prov.set_ledger(ProvenanceLedger(enabled=True))
        try:
            requests = [SessionRequest(tenant=t, algorithm="raycast")
                        for t in TENANTS]
            svc, results = run_sessions("serial", requests)
            assert all(r.status == OK for r in results)
            by_tenant = prov.active_ledger().by_tenant()
        finally:
            prov.set_ledger(previous)
        assert set(TENANTS) <= set(by_tenant)
        for tenant in TENANTS:
            assert by_tenant[tenant] > 0
        # identical workloads leave identical per-tenant footprints
        assert by_tenant["alice"] == by_tenant["bob"]

    def test_tenant_geometry_caches_isolated_from_global(self):
        global_cache = geometry_cache()
        before = global_cache.stats()
        requests = matrix_requests(("raycast", "warnock"))
        svc, results = run_sessions("serial", requests)
        assert all(r.status == OK for r in results)
        # the sessions' geometry traffic went to per-tenant caches ...
        for tenant in TENANTS:
            stats = svc._tenants[tenant].cache.stats()
            assert stats["misses"] > 0
        # ... and the process-global cache saw none of it
        after = global_cache.stats()
        assert after == before
