"""Sleep-free circuit-breaker state-machine tests (FakeClock-driven)."""

import pytest

from repro.distributed.faults import FakeClock
from repro.errors import MachineError
from repro.service.breaker import (CLOSED, HALF_OPEN, OPEN, STATE_CODES,
                                   CircuitBreaker)


def make(threshold=3, reset=5.0):
    clock = FakeClock()
    return CircuitBreaker(failure_threshold=threshold, reset_timeout=reset,
                          clock=clock), clock


class TestTransitions:
    def test_closed_until_threshold(self):
        breaker, _ = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_failure_count(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never two consecutive failures

    def test_open_to_half_open_on_timer(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()       # the probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                                       (HALF_OPEN, CLOSED)]

    def test_half_open_probe_failure_reopens_and_rearms(self):
        breaker, clock = make(threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert breaker.state == OPEN   # timer re-armed at probe failure
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_single_probe_in_half_open(self):
        breaker, clock = make(threshold=1, reset=1.0)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        assert not breaker.allow()   # second caller builds serial
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.allow()       # closed again: everyone allowed


class TestSurface:
    def test_transition_callback_and_codes(self):
        seen = []
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0,
                                 clock=clock,
                                 on_transition=lambda a, b: seen.append(
                                     (a, b)))
        breaker.record_failure()
        clock.advance(1.0)
        _ = breaker.state
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN)]
        assert STATE_CODES[CLOSED] == 0
        assert STATE_CODES[HALF_OPEN] == 1
        assert STATE_CODES[OPEN] == 2

    def test_validation(self):
        with pytest.raises(MachineError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(MachineError):
            CircuitBreaker(reset_timeout=0.0)
