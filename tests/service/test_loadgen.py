"""Load-generator tests: seeded determinism, skew, and summaries."""

import pytest

from repro.errors import MachineError
from repro.service.loadgen import (ALGOS_CYCLE, APPS_CYCLE, LoadSpec,
                                   build_requests, run_load, summarize)
from repro.service.session import SessionRequest, SessionResult


def test_degenerate_specs_fail_cleanly():
    with pytest.raises(MachineError, match="tenant"):
        build_requests(LoadSpec(tenants=0))
    with pytest.raises(MachineError, match="session"):
        build_requests(LoadSpec(sessions=0))


def test_schedule_is_seed_deterministic():
    spec = LoadSpec(seed=42, tenants=4, sessions=40)
    assert build_requests(spec) == build_requests(spec)
    assert build_requests(spec) != build_requests(
        LoadSpec(seed=43, tenants=4, sessions=40))


def test_skew_concentrates_on_low_ranks():
    spec = LoadSpec(seed=1, tenants=4, sessions=200, skew=1.5)
    counts: dict = {}
    for request in build_requests(spec):
        counts[request.tenant] = counts.get(request.tenant, 0) + 1
    assert counts["tenant0"] == max(counts.values())
    assert counts["tenant0"] > counts.get("tenant3", 0)
    # uniform skew spreads traffic
    flat = LoadSpec(seed=1, tenants=4, sessions=200, skew=0.0)
    flat_counts: dict = {}
    for request in build_requests(flat):
        flat_counts[request.tenant] = flat_counts.get(request.tenant, 0) + 1
    assert max(flat_counts.values()) < counts["tenant0"]


def test_tenants_cycle_apps_and_algorithms():
    spec = LoadSpec(tenants=5)
    for rank in range(5):
        request = spec.request_for(rank)
        assert request.app == APPS_CYCLE[rank % 3]
        assert request.algorithm == ALGOS_CYCLE[rank % 3]
        assert request.tenant == f"tenant{rank}"


def test_summarize_counts_and_percentiles():
    def result(tenant, status, seconds=0.0, degraded=False):
        return SessionResult(
            request=SessionRequest(tenant=tenant), session=0,
            status=status, seconds=seconds, degraded=degraded,
            fingerprint="f" if status == "ok" else "")

    results = [result("a", "ok", 0.010),
               result("a", "ok", 0.020, degraded=True),
               result("b", "ok", 0.030),
               result("b", "overloaded")]
    summary = summarize(results)
    assert summary["sessions"] == 4
    assert summary["by_status"] == {"ok": 3, "overloaded": 1}
    assert summary["by_tenant"] == {"a": 2, "b": 2}
    assert summary["degraded"] == 1
    assert summary["latency"]["p50"] == 0.020
    assert summary["latency"]["p99"] == 0.030
    assert abs(summary["latency"]["mean"] - 0.020) < 1e-12


def test_run_load_end_to_end_serial():
    spec = LoadSpec(seed=3, tenants=2, sessions=6, pieces=2)
    results, summary = run_load(
        spec, backend="serial", shards=2, rate=1000.0, burst=1000.0,
        max_inflight=32, queue_limit=32)
    assert summary["by_status"] == {"ok": 6}
    assert summary["latency"]["p95"] > 0
    assert summary["service"]["completed"] == 6
    assert {r.tenant for r in results} <= {"tenant0", "tenant1"}
