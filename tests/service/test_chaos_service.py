"""Chaos with tenants live: worker kills under multi-tenant service load.

The service-level contract under infrastructure failure:

* every submitted session resolves — ok with a cold-replay-verified
  fingerprint, or a structured non-ok status; never a hang;
* no cross-tenant corruption — ``verify_sessions`` stays clean over
  exactly the sessions that reported ok;
* no leaked worker processes after the service stops.

Marked ``chaos`` alongside the runtime-level SIGKILL matrix in
``tests/distributed/test_chaos.py``.
"""

import asyncio
import multiprocessing as mp
import os
import signal

import pytest

from repro.distributed import FaultPlan
from repro.service import (OK, STATUSES, AnalysisService, SessionRequest,
                           verify_sessions)

pytestmark = pytest.mark.chaos

TENANTS = ("alice", "bob", "carol")


def _assert_no_worker_children():
    for child in mp.active_children():
        child.join(timeout=10.0)
    leftover = [c for c in mp.active_children() if c.is_alive()]
    assert not leftover, f"leaked worker processes: {leftover}"


def _requests(rounds: int):
    return [SessionRequest(tenant=tenant, app="stencil", pieces=4,
                           iterations=1, algorithm="raycast")
            for _ in range(rounds) for tenant in TENANTS]


class TestSeededFaultsUnderLoad:
    def test_seeded_crashes_recover_transparently(self):
        """A seeded crash plan fires inside the per-tenant process pools
        while three tenants stream sessions; the supervisor's
        journal-replay recovery must keep every session's fingerprint
        cold-replay-exact."""
        plan = FaultPlan(rate=0.12, kinds=("crash",), seed=7)
        assert plan.active

        async def main():
            async with AnalysisService(
                    backend="process", shards=2, faults=plan,
                    rate=1000.0, burst=1000.0, max_inflight=64,
                    queue_limit=64, recv_timeout=30.0,
                    checkpoint_interval=2) as svc:
                results = await asyncio.gather(
                    *[svc.submit(r) for r in _requests(rounds=4)])
                recoveries = sum(
                    slot.runtime.recovery.respawns
                    for tenant in svc._tenants.values()
                    for slot in tenant.slots.values()
                    if slot.runtime is not None)
                return results, recoveries

        results, recoveries = asyncio.run(main())
        assert all(r.status in STATUSES for r in results)
        ok = [r for r in results if r.status == OK]
        # the seeded plan really fired and recovery really ran
        assert recoveries >= 1, "fault plan never fired; raise the rate"
        assert len(ok) == len(results), \
            [r.describe() for r in results if r.status != OK]
        assert verify_sessions(results) == []
        _assert_no_worker_children()

    def test_sigkill_live_worker_between_sessions(self):
        """An external SIGKILL lands on a live slot worker while tenant
        sessions keep flowing; later sessions on that slot must recover
        to bit-identical fingerprints (or fail structurally) — and no
        other tenant may be perturbed at all."""

        async def main():
            async with AnalysisService(
                    backend="process", shards=2, rate=1000.0,
                    burst=1000.0, max_inflight=64, queue_limit=64,
                    recv_timeout=30.0, checkpoint_interval=2) as svc:
                first = await asyncio.gather(
                    *[svc.submit(r) for r in _requests(rounds=1)])
                # assassinate one live worker of alice's slot
                slot = next(iter(svc._tenants["alice"].slots.values()))
                victims = [h for h in slot.runtime.backend.handles
                           if h.remote and h.proc is not None
                           and h.proc.is_alive()]
                assert victims, "process slot has no live workers"
                os.kill(victims[0].proc.pid, signal.SIGKILL)
                victims[0].proc.join(timeout=10)
                second = await asyncio.gather(
                    *[svc.submit(r) for r in _requests(rounds=2)])
                respawns = slot.runtime.recovery.respawns \
                    if slot.runtime is not None else 0
                return first + second, respawns

        results, respawns = asyncio.run(main())
        assert all(r.status in STATUSES for r in results)
        assert all(r.status == OK for r in results), \
            [r.describe() for r in results if r.status != OK]
        assert respawns >= 1, "supervisor never noticed the SIGKILL"
        # the killed tenant and the untouched tenants all replay clean
        assert verify_sessions(results) == []
        _assert_no_worker_children()

    def test_kill_mid_flight_never_hangs(self):
        """SIGKILL delivered *while* a session is being analyzed: the
        session must still resolve (recovered ok or structured error)
        within the service's recv timeout — never a hang."""

        async def main():
            async with AnalysisService(
                    backend="process", shards=2, rate=1000.0,
                    burst=1000.0, max_inflight=64, queue_limit=64,
                    recv_timeout=30.0, checkpoint_interval=2) as svc:
                warm = await svc.submit(SessionRequest(
                    tenant="alice", app="stencil", pieces=4,
                    algorithm="raycast"))
                assert warm.status == OK
                slot = next(iter(svc._tenants["alice"].slots.values()))
                pid = next(h.proc.pid for h in slot.runtime.backend.handles
                           if h.remote and h.proc is not None
                           and h.proc.is_alive())

                async def assassinate():
                    await asyncio.sleep(0.05)
                    try:
                        os.kill(pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass

                killer = asyncio.ensure_future(assassinate())
                inflight = await asyncio.gather(
                    *[svc.submit(SessionRequest(
                        tenant="alice", app="stencil", pieces=4,
                        iterations=2, algorithm="raycast"))
                      for _ in range(3)])
                await killer
                return [warm] + inflight

        results = asyncio.run(asyncio.wait_for(main(), timeout=120.0))
        assert all(r.status in STATUSES for r in results)
        assert verify_sessions([r for r in results if r.status == OK]) \
            == []
        _assert_no_worker_children()
