"""Sleep-free control-plane tests for :class:`AnalysisService`.

Every test here injects a :class:`FakeClock` and an ``analyze_fn`` so
the whole service — admission, queueing, deadlines, breaker — runs
inline on the event loop with manually advanced time.  No executors, no
worker processes, no real sleeping: these are state-machine tests of
the service itself, with the analysis stubbed out.

Real-runtime behaviour (fingerprints, isolation, recovery) lives in
``test_integration.py`` and ``test_chaos_service.py``.
"""

import asyncio

import pytest

from repro.distributed.faults import FakeClock
from repro.errors import MachineError
from repro.obs.census import census, validate_census
from repro.obs.metrics import MetricsRegistry
from repro.service import (DEADLINE_EXCEEDED, ERROR, OK, OVERLOADED,
                           AnalysisService, SessionRequest)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service.errors import (REJECT_BACKPRESSURE, REJECT_CAPACITY,
                                  REJECT_RATE)


def run(coro):
    return asyncio.run(coro)


def fake_analyze(request, backend, tenant):
    return f"fp-{tenant}-{request.app}"


def make_service(clock, analyze_fn=fake_analyze, **kw):
    defaults = dict(backend="process", clock=clock, analyze_fn=analyze_fn,
                    rate=1000.0, burst=1000.0)
    defaults.update(kw)
    return AnalysisService(**defaults)


class TestAdmission:
    def test_rate_limit_rejects_then_refills(self):
        clock = FakeClock()

        async def scenario():
            async with make_service(clock, rate=1.0, burst=2.0) as svc:
                a = await svc.submit(SessionRequest(tenant="t"))
                b = await svc.submit(SessionRequest(tenant="t"))
                c = await svc.submit(SessionRequest(tenant="t"))
                clock.advance(1.0)  # one token back
                d = await svc.submit(SessionRequest(tenant="t"))
                return svc, [a, b, c, d]

        svc, (a, b, c, d) = run(scenario())
        assert [r.status for r in (a, b, c, d)] == [OK, OK, OVERLOADED, OK]
        assert c.reason == REJECT_RATE
        assert svc.counts["rejected"] == 1
        assert svc.ledger.events("rejected")[0].detail == REJECT_RATE

    def test_inflight_cap_rejects_concurrent_submissions(self):
        clock = FakeClock()

        async def scenario():
            async with make_service(clock, max_inflight=1) as svc:
                results = await asyncio.gather(
                    svc.submit(SessionRequest(tenant="a")),
                    svc.submit(SessionRequest(tenant="b")))
                return svc, results

        svc, results = run(scenario())
        statuses = sorted(r.status for r in results)
        assert statuses == [OK, OVERLOADED]
        rejected = next(r for r in results if r.status == OVERLOADED)
        assert rejected.reason == REJECT_CAPACITY

    def test_backpressure_high_water_pauses_intake(self):
        clock = FakeClock()

        async def scenario():
            async with make_service(clock, queue_limit=10, high_water=2,
                                    low_water=1, max_inflight=100) as svc:
                # gathered submissions enqueue before the drain runs:
                # depth hits the high-water mark and the gate pauses
                results = await asyncio.gather(*[
                    svc.submit(SessionRequest(tenant="t"))
                    for _ in range(4)])
                late = await svc.submit(SessionRequest(tenant="t"))
                return svc, results, late

        svc, results, late = run(scenario())
        statuses = [r.status for r in results]
        assert statuses.count(OK) == 2
        assert statuses.count(OVERLOADED) == 2
        for r in results:
            if r.status == OVERLOADED:
                assert r.reason == REJECT_BACKPRESSURE
        # after the queue drained below low water the gate reopened
        assert late.status == OK
        assert svc._tenants["t"].gate.pause_count == 1

    def test_submit_after_stop_raises(self):
        clock = FakeClock()

        async def scenario():
            svc = make_service(clock)
            await svc.start()
            await svc.stop()
            with pytest.raises(MachineError):
                await svc.submit(SessionRequest(tenant="t"))

        run(scenario())


class TestDeadlines:
    def test_expired_in_queue_is_cancelled_before_running(self):
        clock = FakeClock()
        ran = []

        def analyze(request, backend, tenant):
            ran.append(request.tenant)
            clock.advance(2.0)  # the first session burns the budget
            return "fp"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze) as svc:
                first, second = await asyncio.gather(
                    svc.submit(SessionRequest(tenant="t")),
                    svc.submit(SessionRequest(tenant="t", deadline=1.0)))
                return svc, first, second

        svc, first, second = run(scenario())
        assert first.status == OK
        assert second.status == DEADLINE_EXCEEDED
        assert second.reason == "expired in queue"
        assert ran == ["t"]  # the expired session never analyzed
        assert svc.counts["expired"] == 1
        assert svc.ledger.count("expired") == 1
        # queue expiry is not the slot's fault: no poisoning, no breaker
        assert svc.ledger.count("slot_poisoned") == 0
        assert svc.breaker.state == CLOSED

    def test_expiry_mid_analysis_poisons_slot(self):
        clock = FakeClock()

        def analyze(request, backend, tenant):
            clock.advance(5.0)  # analysis overruns the deadline
            return "fp"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    breaker_threshold=10) as svc:
                late = await svc.submit(
                    SessionRequest(tenant="t", deadline=1.0))
                failures = svc.breaker._failures
                rebuilt = await svc.submit(SessionRequest(tenant="t"))
                return svc, late, rebuilt, failures

        svc, late, rebuilt, failures = run(scenario())
        assert late.status == DEADLINE_EXCEEDED
        assert late.reason == "finished past deadline"
        assert late.seconds == pytest.approx(5.0)
        assert svc.ledger.count("cancelled") == 1
        assert svc.ledger.count("slot_poisoned") == 1
        # deadline miss on a process slot counts against the breaker
        assert failures == 1
        # the poisoned slot is gone: the next session starts a new epoch
        assert rebuilt.status == OK
        assert rebuilt.fresh
        assert rebuilt.epoch == late.epoch + 1 == 1

    def test_default_deadline_applies_when_request_has_none(self):
        clock = FakeClock()

        def analyze(request, backend, tenant):
            clock.advance(3.0)
            return "fp"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    default_deadline=1.0) as svc:
                return await svc.submit(SessionRequest(tenant="t"))

        result = run(scenario())
        assert result.status == DEADLINE_EXCEEDED


class TestDegradation:
    def test_breaker_trips_to_serial_and_probe_recovers(self):
        clock = FakeClock()
        healthy = {"process": False}

        def analyze(request, backend, tenant):
            if backend == "process" and not healthy["process"]:
                raise RuntimeError("worker lost")
            return f"fp-{backend}"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    breaker_threshold=2,
                                    breaker_reset=5.0) as svc:
                req = SessionRequest(tenant="t")
                failures = [await svc.submit(req) for _ in range(2)]
                assert svc.breaker.state == OPEN
                degraded = [await svc.submit(req) for _ in range(2)]
                healthy["process"] = True
                clock.advance(5.0)
                assert svc.breaker.state == HALF_OPEN
                recovered = await svc.submit(req)
                after = await svc.submit(req)
                return svc, failures, degraded, recovered, after

        svc, failures, degraded, recovered, after = run(scenario())
        assert all(r.status == ERROR for r in failures)
        assert "worker lost" in failures[0].error
        for r in degraded:
            assert r.status == OK
            assert r.backend == "serial"
            assert r.degraded
        # the half-open probe retired the degraded slot and rebuilt on
        # the process backend; its success closed the breaker
        assert recovered.status == OK
        assert recovered.backend == "process"
        assert not recovered.degraded
        assert recovered.fresh
        assert after.backend == "process" and not after.fresh
        assert svc.breaker.state == CLOSED
        assert svc.counts["degraded_sessions"] == 2
        assert svc.ledger.count("degraded") == 2
        assert svc.ledger.count("slot_retired") == 1
        transitions = [e.detail for e in svc.ledger.events("breaker")]
        assert transitions == ["closed->open", "open->half_open",
                               "half_open->closed"]

    def test_failed_probe_reopens_and_stays_serial(self):
        clock = FakeClock()

        def analyze(request, backend, tenant):
            if backend == "process":
                raise RuntimeError("worker lost")
            return "fp-serial"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    breaker_threshold=1,
                                    breaker_reset=5.0) as svc:
                req = SessionRequest(tenant="t")
                first = await svc.submit(req)          # trips the breaker
                clock.advance(5.0)                     # half-open
                probe = await svc.submit(req)          # probe fails
                assert svc.breaker.state == OPEN
                fallback = await svc.submit(req)
                return first, probe, fallback

        first, probe, fallback = run(scenario())
        assert first.status == ERROR
        assert probe.status == ERROR
        assert fallback.status == OK
        assert fallback.backend == "serial" and fallback.degraded

    def test_serial_configured_service_never_touches_breaker(self):
        clock = FakeClock()

        def analyze(request, backend, tenant):
            raise RuntimeError("analysis bug")

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    backend="serial",
                                    breaker_threshold=1) as svc:
                result = await svc.submit(SessionRequest(tenant="t"))
                return svc, result

        svc, result = run(scenario())
        assert result.status == ERROR
        assert svc.breaker.state == CLOSED  # tenant bugs are not infra


class TestObservability:
    def test_metrics_surface(self):
        clock = FakeClock()
        registry = MetricsRegistry()

        def analyze(request, backend, tenant):
            clock.advance(0.02)
            return "fp"

        async def scenario():
            async with make_service(clock, analyze_fn=analyze,
                                    registry=registry, rate=1.0,
                                    burst=1.0) as svc:
                await svc.submit(SessionRequest(tenant="t"))
                await svc.submit(SessionRequest(tenant="t"))  # rate-reject
                return svc

        svc = run(scenario())
        snap = registry.snapshot()
        assert snap['service.admitted{tenant="t"}'] == 1
        assert snap['service.completed{tenant="t"}'] == 1
        assert snap['service.rejected{reason="rate",tenant="t"}'] == 1
        assert snap["service.tenants"] == 1
        assert snap["service.inflight"] == 0
        assert snap["service.breaker"] == 0
        assert snap["service.latency_seconds"]["count"] == 1
        quantiles = svc.metrics.latency_quantiles()
        assert quantiles["p50"] >= 0.02
        assert set(quantiles) == {"p50", "p95", "p99"}
        assert "service:" in svc.render()

    def test_census_service_block_validates(self):
        from repro import Runtime
        from tests.conftest import (fig1_initial, fig1_stream,
                                    make_fig1_tree)

        clock = FakeClock()

        async def scenario():
            async with make_service(clock) as svc:
                await svc.submit(SessionRequest(tenant="a"))
                await svc.submit(SessionRequest(tenant="b"))
                return svc

        svc = run(scenario())
        block = svc.census_block()
        assert block["tenants"] == 2
        assert block["completed"] == 2
        assert all(isinstance(v, int) for v in block.values())
        tree, P, G = make_fig1_tree()
        rt = Runtime(tree, fig1_initial(tree), algorithm="raycast")
        rt.replay(fig1_stream(tree, P, G, 1))
        registry = MetricsRegistry()
        doc = census(rt, registry=registry, service=block)
        validate_census(doc)
        assert doc["service"]["sessions"] == 2
        assert "census.service.sessions" in registry.snapshot()

    def test_ledger_snapshot_is_bounded(self):
        from repro.service.errors import ServiceLedger

        ledger = ServiceLedger(capacity=8)
        for i in range(50):
            ledger.record("rejected", "t", i, "rate")
        assert len(ledger) <= 8
        assert ledger.count("rejected") == 50  # counts stay exact
