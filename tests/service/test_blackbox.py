"""The incident pipeline end to end: a seeded outage fires the
fast-burn availability alert, the flight recorder writes a
``repro.blackbox/1`` dump whose evidence attributes the offending
tenant and resolves a latency exemplar back to a dumped span.  Same
seed -> byte-identical dump; arming the recorder never perturbs
analysis fingerprints on any backend.  All on a FakeClock, sleep-free
(the fingerprint matrix spawns real workers for the process backend).
"""

import asyncio
import itertools

import pytest

from repro.distributed import ShardedRuntime
from repro.distributed.faults import FakeClock, RetryPolicy
from repro.obs import tracer as tracing
from repro.obs.flight import (FlightRecorder, blackbox_spans,
                              load_blackbox, set_recorder)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import AVAILABILITY, SloEvaluator, SloSpec
from repro.obs.telemetry import TelemetryHub
from repro.service import ERROR, OK, AnalysisService, SessionRequest

from tests.conftest import fig1_initial, fig1_stream, make_fig1_tree

WINDOWS = {"10s": 10.0, "1m": 60.0, "5m": 300.0}

AVAIL = SloSpec(name="availability", kind=AVAILABILITY, objective=0.99,
                good=("service.completed",),
                bad=("service.errors", "service.expired"))

FAST_RETRY = RetryPolicy(max_retries=2, base_delay=0.01, multiplier=2.0,
                         max_delay=0.05)


def run(coro):
    return asyncio.run(coro)


def outage_analyze(request, backend, tenant):
    """Injected analysis: the victim tenant hard-fails, everyone else
    completes (and feeds the latency exemplar reservoirs)."""
    if tenant == "victim":
        raise RuntimeError("synthetic outage")
    return 4242


def run_incident(directory, seed):
    """Drive the seeded incident: five healthy ticks, then an outage
    that burns the error budget ~20x — the fast availability alert
    fires and trips the one blackbox dump.  Returns the recorder."""
    clock = FakeClock()
    # fresh span ids so same-seed runs produce identical trace refs
    tracing._span_ids = itertools.count(1)
    registry = MetricsRegistry()
    recorder = FlightRecorder(directory, clock=clock, cooldown=3600.0)
    previous_recorder = set_recorder(recorder)
    previous_tracer = tracing.set_tracer(
        tracing.Tracer(enabled=True, retain=False, clock=clock))
    hub = TelemetryHub(registry, clock=clock, interval=1.0,
                       windows=WINDOWS,
                       evaluator=SloEvaluator([AVAIL], registry=registry))

    async def scenario():
        async with AnalysisService(
                backend="serial", clock=clock, analyze_fn=outage_analyze,
                rate=1000.0, burst=1000.0, breaker_threshold=10 ** 6,
                registry=registry, recorder=recorder,
                exemplar_seed=seed) as svc:
            hub.evaluator.ledger = svc.ledger
            for _ in range(5):  # healthy baseline
                for _ in range(2):
                    result = await svc.submit(
                        SessionRequest(tenant="steady"))
                    assert result.status == OK
                clock.advance(1.0)
                hub.sample()
            for _ in range(8):  # the outage
                ok = await svc.submit(SessionRequest(tenant="steady"))
                assert ok.status == OK
                for _ in range(3):
                    bad = await svc.submit(SessionRequest(tenant="victim"))
                    assert bad.status == ERROR
                clock.advance(1.0)
                hub.sample()

    try:
        assert recorder.arm()
        run(scenario())
    finally:
        tracing.set_tracer(previous_tracer)
        set_recorder(previous_recorder)
    return recorder


class TestIncidentEndToEnd:
    def test_outage_fires_alert_and_dumps_a_valid_blackbox(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)
        recorder = run_incident(tmp_path, seed=7)
        assert recorder.dumps_written == 1
        assert recorder.triggers_seen >= 1

        data = load_blackbox(recorder.last_dump)  # raises if invalid
        assert data["trigger"]["kind"] == "slo"
        assert "firing" in data["trigger"]["detail"]
        assert "availability" in data["trigger"]["detail"]

    def test_dump_attributes_the_offending_tenant(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)
        recorder = run_incident(tmp_path, seed=7)
        data = load_blackbox(recorder.last_dump)

        # the victim's session spans are in the ring, shard-keyed by
        # tid (injected analysis runs on the driver thread: tid 0)
        spans = blackbox_spans(data)
        victims = [s for s in spans if s.args.get("tenant") == "victim"]
        assert victims
        assert all(s.category == "service.session" for s in victims)
        assert set(data["shards"]) == {"0"}
        assert all(s.tid == 0 for s in victims)

        # ... and its control-plane events rode along, keyed by tenant
        events = data["tenants"]["victim"]["events"]
        assert any(e["kind"] == "errored" for e in events)
        assert all(e["tenant"] == "victim" for e in events)

    def test_at_least_one_exemplar_resolves_to_a_dumped_span(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)
        recorder = run_incident(tmp_path, seed=7)
        data = load_blackbox(recorder.last_dump)

        span_ids = {s.span_id for s in blackbox_spans(data)}
        assert data["exemplars"]
        resolved = [row for row in data["exemplars"]
                    if row["trace"] in span_ids]
        assert resolved
        # exemplars only come from completions: the steady tenant
        assert all(row["tenant"] == "steady" for row in resolved)
        for row in resolved:
            match = [s for s in blackbox_spans(data)
                     if s.span_id == row["trace"]]
            assert match[0].args["session"] == row["session"]


class TestSeededDeterminism:
    def test_same_seed_gives_byte_identical_dumps(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)
        run_incident(tmp_path / "a", seed=11)
        run_incident(tmp_path / "b", seed=11)
        first = (tmp_path / "a" / "blackbox-00000.json").read_bytes()
        again = (tmp_path / "b" / "blackbox-00000.json").read_bytes()
        assert first == again

    def test_different_seed_samples_different_exemplars(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)
        a = run_incident(tmp_path / "a", seed=11)
        c = run_incident(tmp_path / "c", seed=12)
        rows_a = load_blackbox(a.last_dump)["exemplars"]
        rows_c = load_blackbox(c.last_dump)["exemplars"]
        assert rows_a and rows_c
        assert rows_a != rows_c


# ----------------------------------------------------------------------
# observer effect: recorder on/off must not change analysis results
# ----------------------------------------------------------------------
BACKENDS = [("serial", {}), ("thread", {"max_workers": 2}),
            ("process", {"recv_timeout": 10.0, "retry": FAST_RETRY})]


def fig1_fingerprints(backend, kwargs):
    tree, P, G = make_fig1_tree()
    srt = ShardedRuntime(tree, fig1_initial(tree), shards=3,
                         checkpoint_interval=2, backend=backend, **kwargs)
    with srt:
        reports = srt.analyze(fig1_stream(tree, P, G, iterations=1))
    return {r.fingerprint for r in reports}


class TestObserverEffect:
    @pytest.mark.parametrize("backend,kwargs", BACKENDS,
                             ids=[b for b, _ in BACKENDS])
    def test_fingerprints_identical_recorder_on_and_off(
            self, backend, kwargs, monkeypatch):
        monkeypatch.delenv("REPRO_NO_FLIGHT", raising=False)

        def fingerprints(armed):
            recorder = FlightRecorder()  # no directory: never writes
            previous = set_recorder(recorder)
            try:
                if armed:
                    assert recorder.arm()
                return fig1_fingerprints(backend, kwargs)
            finally:
                set_recorder(previous)

        off = fingerprints(armed=False)
        on = fingerprints(armed=True)
        assert len(off) == 1
        assert on == off
