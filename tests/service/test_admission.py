"""Sleep-free unit tests for the admission-control state machines.

Everything runs on a FakeClock: refill, hysteresis and expiry are
functions of manually advanced time, never of real sleeping.
"""

import pytest

from repro.distributed.faults import FakeClock
from repro.errors import MachineError
from repro.service.admission import (DeadlineBudget, TokenBucket,
                                     WatermarkGate)


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert bucket.available == pytest.approx(3.0)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # empty, no time has passed

    def test_refill_is_continuous_and_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token back
        assert bucket.available == pytest.approx(1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(100.0)  # refill caps at burst
        assert bucket.available == pytest.approx(4.0)

    def test_fractional_refill_accumulates(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        bucket.try_acquire()
        bucket.try_acquire()
        clock.advance(0.4)
        assert not bucket.try_acquire()
        clock.advance(0.4)
        assert not bucket.try_acquire()  # 0.8 tokens: still short
        clock.advance(0.4)
        assert bucket.try_acquire()      # 1.2 tokens

    def test_validation(self):
        with pytest.raises(MachineError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(MachineError):
            TokenBucket(rate=1.0, burst=0)


class TestWatermarkGate:
    def test_hysteresis_pause_and_resume(self):
        gate = WatermarkGate(high=4, low=1)
        assert not gate.update(3)
        assert gate.update(4)        # reaches high water: pause
        assert gate.update(3)        # above low water: stay paused
        assert gate.update(2)
        assert not gate.update(1)    # drained to low water: resume
        assert gate.pause_count == 1

    def test_no_flapping_around_high_water(self):
        gate = WatermarkGate(high=4, low=1)
        gate.update(4)
        # hovering just under high must not toggle
        for depth in (3, 4, 3, 4, 2):
            assert gate.update(depth)
        assert gate.pause_count == 1
        assert not gate.update(0)
        assert gate.update(4)
        assert gate.pause_count == 2

    def test_validation(self):
        with pytest.raises(MachineError):
            WatermarkGate(high=2, low=2)
        with pytest.raises(MachineError):
            WatermarkGate(high=2, low=-1)


class TestDeadlineBudget:
    def test_none_never_expires(self):
        clock = FakeClock()
        budget = DeadlineBudget(None, clock)
        clock.advance(1e9)
        assert not budget.expired()
        assert budget.remaining() is None

    def test_expiry_and_remaining(self):
        clock = FakeClock()
        budget = DeadlineBudget(2.0, clock)
        assert budget.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert budget.remaining() == pytest.approx(0.5)
        assert not budget.expired()
        clock.advance(0.5)
        assert budget.expired()
        assert budget.remaining() == 0.0
        clock.advance(10.0)
        assert budget.remaining() == 0.0  # never negative
        assert budget.elapsed() == pytest.approx(12.0)

    def test_clock_runs_from_creation(self):
        """The budget starts at admission, not at execution."""
        clock = FakeClock()
        budget = DeadlineBudget(1.0, clock)
        clock.advance(0.9)   # queued this long
        assert budget.remaining() == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(MachineError):
            DeadlineBudget(0.0, FakeClock())
