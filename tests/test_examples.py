"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=240)
    assert result.returncode == 0, \
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "algorithm_comparison.py", "stencil_demo.py",
            "weak_scaling.py", "custom_reduction.py",
            "traced_parallel_heat.py", "distributed_demo.py"} <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "final field values" in out
    assert "wave 0: t1[0], t1[1], t1[2]" in out


def test_algorithm_comparison():
    out = run_example("algorithm_comparison.py", "4")
    assert "all algorithms match the sequential reference" in out
    assert "raycast" in out and "eqsets" in out


def test_stencil_demo():
    out = run_example("stencil_demo.py", "4", "4")
    assert "validated 4 iterations against direct NumPy" in out


def test_weak_scaling():
    out = run_example("weak_scaling.py", "4")
    assert "# fig13" in out and "# fig16" in out


def test_custom_reduction():
    out = run_example("custom_reduction.py")
    assert "parallel waves" in out
    assert "serialized" in out


def test_distributed_demo():
    out = run_example("distributed_demo.py", "3")
    assert "replicas agree" in out
    assert "sequential reference ✓" in out


def test_traced_parallel_heat():
    out = run_example("traced_parallel_heat.py", "4", "6")
    assert "1 capture" in out
    assert "validated 6 diffusion steps" in out
