"""Regenerate the artifact's section A.4 sample table.

The artifact's ``run_first.sh`` runs every app × algorithm directory at 1
and 2 nodes, five reps each, and ``parse_results.py`` prints a TSV table
(``system nodes procs_per_node rep init_time elapsed_time``) with 5 rows
for paint (no DCR config) and 10 for the other algorithms.  This benchmark
reproduces that table for all three applications.
"""

from repro.bench.figures import FIGURES
from repro.bench.harness import render_rows, run_sweep, sweep_to_rows

from benchmarks.conftest import write_result


def test_artifact_a4_table(benchmark):
    def once():
        tables = {}
        for app in ("stencil", "circuit", "pennant"):
            spec = next(s for s in FIGURES.values() if s.app == app)
            sweep = run_sweep(spec.app_factory, (1, 2), steady_iterations=3)
            tables[app] = sweep_to_rows(sweep, reps=5)
        return tables

    tables = benchmark.pedantic(once, rounds=1, iterations=1)
    for app, rows in tables.items():
        text = render_rows(rows)
        print(f"\n== {app} (artifact A.4 schema)\n{text}")
        write_result(f"artifact_a4_{app}.tsv", text)
        # the artifact expects 5 rows per paint config and 10 per DCR-capable
        # algorithm per node count; here per node count: 5 systems × 5 reps
        by_system: dict[str, int] = {}
        for r in rows:
            by_system[r.system] = by_system.get(r.system, 0) + 1
        assert by_system["paint_nodcr"] == 2 * 5
        assert by_system["neweqcr_dcr"] == 2 * 5
        assert by_system["neweqcr_nodcr"] == 2 * 5
        assert by_system["oldeqcr_dcr"] == 2 * 5
        assert by_system["oldeqcr_nodcr"] == 2 * 5
        # no ERROR entries: every time is finite and positive
        assert all(r.init_time > 0 and r.elapsed_time > 0 for r in rows)
