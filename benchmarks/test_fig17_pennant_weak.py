"""Regenerate Figure 17: Pennant weak.

Replays the pennant task stream through each algorithm at 1..N simulated
nodes and reports the paper's "weak" metric; the shape claims of
section 8 are asserted by check_shape.
"""


def test_fig17_pennant_weak(figure_runner):
    figure_runner("fig17")
