"""Microbenchmarks for the geometric substrate.

The set algebra of :class:`IndexSpace` is the inner loop of every
coherence algorithm (the `X/Y`, `X\\Y`, `X ⊕ Y` operators of Figure 7 and
the interference overlap tests), so its constants are tracked here —
standard performance-regression targets, not figure reproductions.
"""

import numpy as np
import pytest

from repro import Extent, IndexSpace, Rect
from repro.apps.meshes import star_halo

N = 1 << 14


@pytest.fixture(scope="module")
def spaces():
    rng = np.random.default_rng(7)
    dense = IndexSpace.from_range(0, N)
    even = IndexSpace.from_indices(np.arange(0, N, 2))
    sparse = IndexSpace.from_indices(rng.choice(N, size=N // 8,
                                                replace=False))
    block = IndexSpace.from_range(N // 4, N // 2)
    return {"dense": dense, "even": even, "sparse": sparse, "block": block}


def test_intersection_sparse_dense(benchmark, spaces):
    benchmark(lambda: spaces["sparse"] & spaces["even"])


def test_difference_block(benchmark, spaces):
    benchmark(lambda: spaces["dense"] - spaces["block"])


def test_union_sparse(benchmark, spaces):
    benchmark(lambda: spaces["sparse"] | spaces["even"])


def test_overlaps_hit(benchmark, spaces):
    benchmark(spaces["sparse"].overlaps, spaces["block"])


def test_overlaps_bbox_miss(benchmark, spaces):
    far = IndexSpace.from_range(2 * N, 2 * N + 100)
    benchmark(spaces["sparse"].overlaps, far)


def test_positions_of_subset(benchmark, spaces):
    benchmark(spaces["dense"].positions_of, spaces["block"])


def test_positions_of_identity_fast_path(benchmark, spaces):
    """The equal-domain fast path found by profiling the blending kernel."""
    clone = IndexSpace.from_indices(spaces["sparse"].indices.copy())
    benchmark(spaces["sparse"].positions_of, clone)


def test_star_halo_construction(benchmark):
    extent = Extent((128, 128))
    tile = Rect((32, 32), (63, 63))
    benchmark(star_halo, tile, 2, extent)


def test_membership_mask(benchmark, spaces):
    benchmark(spaces["even"].membership_mask, spaces["sparse"])
