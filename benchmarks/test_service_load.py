"""Service load bench: latency percentiles under skewed tenant traffic.

Drives the seeded load generator (mixed Stencil/Circuit/Pennant tenants,
zipf-skewed submission schedule) through a live
:class:`~repro.service.service.AnalysisService` and emits
``BENCH_service.json`` — p50/p95/p99 session latency plus throughput —
which CI uploads as an artifact and soft-gates against the
``service_load`` rows of ``benchmarks/baseline.json``
(``--subset service_load``).

Every completed session is still held to the correctness bar:
``verify_sessions`` cold-replays the full schedule and demands
bit-identical fingerprints before any timing row is written.
"""

import time
from pathlib import Path

from repro.service import verify_sessions
from repro.service.loadgen import LoadSpec, run_load

RESULTS_DIR = Path(__file__).resolve().parent / "results"

SPEC = LoadSpec(seed=2023, tenants=3, sessions=18, pieces=4, iterations=1,
                skew=1.0)


def test_bench_service_json_emission():
    """Emit ``BENCH_service.json`` and self-gate it."""
    from repro.bench.gate import compare, load_bench
    from repro.bench.harness import write_bench_json

    t0 = time.perf_counter()
    results, summary = run_load(
        SPEC, backend="serial", shards=2, rate=1000.0, burst=1000.0,
        max_inflight=64, queue_limit=64)
    wall = time.perf_counter() - t0

    assert summary["by_status"] == {"ok": SPEC.sessions}, summary
    assert verify_sessions(results) == []
    # the zipf skew really concentrates traffic on tenant0
    counts = summary["by_tenant"]
    assert counts.get("tenant0", 0) == max(counts.values())

    latency = summary["latency"]
    rows = [
        {"name": "service_load[p50]", "seconds": latency["p50"]},
        {"name": "service_load[p95]", "seconds": latency["p95"]},
        {"name": "service_load[p99]", "seconds": latency["p99"]},
        {"name": "service_load[mean]", "seconds": latency["mean"]},
        {"name": "service_load[wall]", "seconds": wall,
         "sessions": SPEC.sessions},
    ]
    out = write_bench_json(
        RESULTS_DIR / "BENCH_service.json", "service_load", rows,
        extra={"spec": {"seed": SPEC.seed, "tenants": SPEC.tenants,
                        "sessions": SPEC.sessions, "pieces": SPEC.pieces,
                        "skew": SPEC.skew},
               "summary": summary})
    doc = load_bench(out)
    assert doc["bench"] == "service_load"
    assert all(row["seconds"] > 0 for row in doc["rows"])
    self_gate = compare(doc, doc, subsets=["service_load"])
    assert self_gate and all(r.status == "ok" for r in self_gate)


def test_schedule_is_deterministic():
    """Same seed ⇒ byte-identical schedule (what lets CI compare chaos
    runs against cold runs)."""
    from repro.service.loadgen import build_requests

    a = build_requests(SPEC)
    b = build_requests(SPEC)
    assert a == b
    c = build_requests(LoadSpec(seed=SPEC.seed + 1,
                                tenants=SPEC.tenants,
                                sessions=SPEC.sessions))
    assert a != c
