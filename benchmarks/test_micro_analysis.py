"""Microbenchmarks: real wall-clock analysis throughput per algorithm.

Unlike the figure benchmarks (which replay metered costs onto simulated
clocks), these measure the actual Python execution time of one steady
iteration of analysis per algorithm — an honest like-for-like comparison
of this implementation's constants.  At this single-process scale the
painter is clearly slowest; Warnock and ray casting are within a small
factor of each other (Warnock's domain-aligned histories have lower
per-entry constants, ray casting's sub-domain entries pay for index
arithmetic).  The *distributed* advantages of ray casting — fewer sets,
no centralized structures, stable steady state — are what the figure
benchmarks measure.
"""

import pytest

from repro import Runtime
from repro.apps import CircuitApp

PIECES = 32
ALGOS = ("tree_painter", "warnock", "raycast", "painter")


@pytest.mark.parametrize("algorithm", ALGOS)
def test_steady_iteration_analysis(benchmark, algorithm):
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    rt.replay(app.iteration_stream())  # warm up structures and memos

    benchmark(rt.replay, app.iteration_stream())


@pytest.mark.parametrize("algorithm", ("warnock", "raycast"))
def test_cold_start_analysis(benchmark, algorithm):
    """First-iteration (structure-building) cost: the initialization
    figures' microscopic counterpart."""
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)

    def cold():
        rt = Runtime(app.tree, app.initial, algorithm=algorithm)
        rt.replay(app.init_stream())
        rt.replay(app.iteration_stream())

    benchmark.pedantic(cold, rounds=5, iterations=1)
