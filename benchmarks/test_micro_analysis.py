"""Microbenchmarks: real wall-clock analysis throughput per algorithm.

Unlike the figure benchmarks (which replay metered costs onto simulated
clocks), these measure the actual Python execution time of one steady
iteration of analysis per algorithm — an honest like-for-like comparison
of this implementation's constants.  At this single-process scale the
painter is clearly slowest; Warnock and ray casting are within a small
factor of each other (Warnock's domain-aligned histories have lower
per-entry constants, ray casting's sub-domain entries pay for index
arithmetic).  The *distributed* advantages of ray casting — fewer sets,
no centralized structures, stable steady state — are what the figure
benchmarks measure.
"""

import time
from pathlib import Path

import pytest

from repro import Runtime
from repro.apps import CircuitApp
from repro.distributed.verify import analysis_fingerprint
from repro.geometry.fastpath import geometry_cache, reset_geometry_cache

PIECES = 32
ALGOS = ("tree_painter", "warnock", "raycast", "painter")
RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.mark.parametrize("algorithm", ALGOS)
def test_steady_iteration_analysis(benchmark, algorithm):
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    rt.replay(app.iteration_stream())  # warm up structures and memos

    benchmark(rt.replay, app.iteration_stream())


@pytest.mark.parametrize("algorithm", ("warnock", "raycast"))
def test_cold_start_analysis(benchmark, algorithm):
    """First-iteration (structure-building) cost: the initialization
    figures' microscopic counterpart."""
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)

    def cold():
        rt = Runtime(app.tree, app.initial, algorithm=algorithm)
        rt.replay(app.init_stream())
        rt.replay(app.iteration_stream())

    benchmark.pedantic(cold, rounds=5, iterations=1)


# ----------------------------------------------------------------------
# geometry fast path: cached vs uncached on the repeated-stream workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cache", ("cached", "uncached"))
@pytest.mark.parametrize("algorithm", ("raycast", "warnock"))
def test_repeated_stream_geom_cache(benchmark, algorithm, cache):
    """The fast path's target workload: the same iteration stream over and
    over (every iterative application's steady state).  Compare the
    ``cached`` and ``uncached`` rows — EXPERIMENTS.md records the ratio.
    Larger spaces than the constants benchmarks above: the raw set-algebra
    cost grows with index-array size while a cache hit stays O(1)."""
    app = CircuitApp(pieces=PIECES, nodes_per_piece=64, wires_per_piece=96)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    reset_geometry_cache(enabled=(cache == "cached"))
    try:
        rt.replay(app.init_stream())
        rt.replay(app.iteration_stream())  # warm structures and the cache
        benchmark(rt.replay, app.iteration_stream())
    finally:
        reset_geometry_cache()


@pytest.mark.parametrize("algorithm", ALGOS)
def test_geom_cache_differential_smoke(algorithm):
    """CI's cache-correctness gate: cached and uncached analysis of the
    same program must produce bit-identical fingerprints (structure AND
    meter counts), and the cache must have actually been exercised.  Runs
    in smoke mode too (no ``benchmark`` fixture), so
    ``--benchmark-disable`` keeps the differential check alive."""
    app = CircuitApp(pieces=8, nodes_per_piece=8, wires_per_piece=12)

    def analyze():
        rt = Runtime(app.tree, app.initial, algorithm=algorithm)
        rt.replay(app.init_stream())
        for _ in range(2):
            rt.replay(app.iteration_stream())
        return analysis_fingerprint(rt)

    reset_geometry_cache(enabled=True)
    t0 = time.perf_counter()
    cached = analyze()
    cached_s = time.perf_counter() - t0
    stats = geometry_cache().stats()
    assert stats["hits"] > 0, "repeated streams must hit the cache"

    reset_geometry_cache(enabled=False)
    t0 = time.perf_counter()
    uncached = analyze()
    uncached_s = time.perf_counter() - t0
    reset_geometry_cache()

    assert cached == uncached, \
        f"{algorithm}: geometry fast path changed the analysis fingerprint"
    print(f"{algorithm}: cached {cached_s:.3f}s vs uncached {uncached_s:.3f}s "
          f"({uncached_s / max(cached_s, 1e-9):.2f}x), "
          f"{stats['hits']} hits / {stats['misses']} misses")


# ----------------------------------------------------------------------
# precedence oracle: scan pruning + O(1) soundness checks on a long
# steady-state stream (>= 2k tasks)
# ----------------------------------------------------------------------
PREC_PIECES = 32
PREC_ITERATIONS = 32  # 32 init + 32 * 64 steady tasks = 2080 >= 2k
PREC_SOUNDNESS_TAIL = 2080  # tasks whose edges the soundness rows check
_PREC_CACHE: dict = {}


def _precedence_data() -> dict:
    """Analyze a 2080-task Stencil stream with the order-maintenance
    oracle on and off, then time the closure soundness check answered by
    order labels vs. plain BFS.  Built once and shared by the smoke test
    and the bench-document emission (the runtimes are the expensive
    part)."""
    if _PREC_CACHE:
        return _PREC_CACHE
    from repro import DependenceGraph
    from repro.apps import StencilApp

    def analyze(oracle_on):
        app = StencilApp(pieces=PREC_PIECES, tile=2)
        rt = Runtime(app.tree, app.initial, algorithm="raycast",
                     precedence_oracle=oracle_on)
        t0 = time.perf_counter()
        rt.replay(app.init_stream())
        for _ in range(PREC_ITERATIONS):
            rt.replay(app.iteration_stream())
        return rt, time.perf_counter() - t0

    on_rt, on_s = analyze(True)
    off_rt, off_s = analyze(False)

    # Soundness-check rows: "are all these known-true orderings present
    # transitively?" over the direct edges of the newest tasks.  The
    # label-backed graph answers each pair with O(1) bit tests; the
    # BFS graph re-walks ancestors.  This is where the oracle's O(1)
    # `precedes` pays off at stream scale.
    pairs = [(dep, tid)
             for tid in off_rt.graph.task_ids[-PREC_SOUNDNESS_TAIL:]
             for dep in off_rt.graph.dependences_of(tid)]
    reps = 3
    t0 = time.perf_counter()
    for _ in range(reps):
        assert on_rt.graph.missing_pairs(pairs) == []
    labels_s = (time.perf_counter() - t0) / reps

    bfs_graph = DependenceGraph(maintain_labels=False)
    for tid in off_rt.graph.task_ids:
        bfs_graph.add_task(tid, off_rt.graph.dependences_of(tid))
    t0 = time.perf_counter()
    assert bfs_graph.missing_pairs(pairs) == []
    bfs_s = time.perf_counter() - t0

    _PREC_CACHE.update(on_rt=on_rt, off_rt=off_rt, on_s=on_s, off_s=off_s,
                       labels_s=labels_s, bfs_s=bfs_s, pairs=len(pairs))
    return _PREC_CACHE


def test_precedence_oracle_smoke():
    """CI's precedence-correctness gate, in smoke mode like the geometry
    differential above: on the 2080-task stream the oracle must actually
    prune (fewer direct edges), must not change the transitive closure,
    and the label-backed soundness check must beat repeated BFS."""
    data = _precedence_data()
    on, off = data["on_rt"], data["off_rt"]
    assert len(on.tasks) >= 2000 and len(on.tasks) == len(off.tasks)

    stats = on.order.stats()
    assert stats["hits"] > 0, "the oracle never pruned anything"
    assert on.graph.edge_count() < off.graph.edge_count()

    # closure equality on a sample of the newest tasks (full equality is
    # covered by tests/distributed/test_precedence_differential.py)
    for tid in off.graph.task_ids[-64:]:
        assert on.graph.ancestors_of(tid) == off.graph.ancestors_of(tid)

    assert data["labels_s"] < data["bfs_s"], (
        f"labels {data['labels_s']:.4f}s vs bfs {data['bfs_s']:.4f}s")
    print(f"precedence: {len(on.tasks)} tasks, edges "
          f"{off.graph.edge_count()} -> {on.graph.edge_count()}, "
          f"analyze on {data['on_s']:.3f}s / off {data['off_s']:.3f}s, "
          f"soundness ({data['pairs']} pairs) labels "
          f"{data['labels_s'] * 1e3:.2f}ms vs bfs "
          f"{data['bfs_s'] * 1e3:.2f}ms "
          f"({data['bfs_s'] / max(data['labels_s'], 1e-9):.0f}x)")


# ----------------------------------------------------------------------
# columnar histories: vectorized whole-history scan vs the object walk
# ----------------------------------------------------------------------
COLUMNAR_ENTRIES = 2048
COLUMNAR_REPS = 5
_COLUMNAR_CACHE: dict = {}


def _columnar_scan_data() -> dict:
    """Time one whole-history dependence scan over a long reduction
    history (Pennant's ``dt`` pattern: one write, then same-operator
    reductions forever) with the columnar sweep on and off, checking the
    two modes agree on dependences and meter totals."""
    if _COLUMNAR_CACHE:
        return _COLUMNAR_CACHE
    import numpy as np
    from repro.geometry.index_space import IndexSpace
    from repro.privileges import READ_WRITE, reduce as reduce_priv
    from repro.visibility.history import (ColumnarHistory, HistoryEntry,
                                          RegionValues, columnar_disabled,
                                          scan_dependences)
    from repro.visibility.meter import CostMeter

    n = 4096
    root = IndexSpace.from_indices(range(n))
    entries = [HistoryEntry(READ_WRITE, root,
                            RegionValues(root, np.zeros(n)), 0)]
    priv = reduce_priv("sum")
    for i in range(1, COLUMNAR_ENTRIES):
        lo = (i * 17) % (n - 64)
        dom = IndexSpace.from_indices(range(lo, lo + 64))
        entries.append(HistoryEntry(priv, dom,
                                    RegionValues(dom, np.ones(64)), i))
    history = ColumnarHistory(entries)
    query = IndexSpace.from_indices(range(128, 256))

    def run(columnar: bool):
        from contextlib import nullcontext
        reset_geometry_cache()
        with (nullcontext() if columnar else columnar_disabled()):
            meter = CostMeter()
            deps: set = set()
            scan_dependences(priv, query, history, deps, meter)  # warm
            t0 = time.perf_counter()
            for _ in range(COLUMNAR_REPS):
                deps = set()
                scan_dependences(priv, query, history, deps, meter)
            seconds = (time.perf_counter() - t0) / COLUMNAR_REPS
        reset_geometry_cache()
        return deps, meter.snapshot(), seconds

    deps_on, meter_on, on_s = run(True)
    deps_off, meter_off, off_s = run(False)
    _COLUMNAR_CACHE.update(deps_on=deps_on, deps_off=deps_off,
                           meter_on=meter_on, meter_off=meter_off,
                           on_s=on_s, off_s=off_s,
                           entries=len(history))
    return _COLUMNAR_CACHE


_REFINE_CACHE: dict = {}


def _refinement_batch_data() -> dict:
    """Warnock's refinement-heavy cold start (every split the stream
    forces) with batched refinement rounds on and off, fingerprints
    compared — the round batching must be invisible too."""
    if _REFINE_CACHE:
        return _REFINE_CACHE
    from contextlib import nullcontext
    from repro.visibility.history import columnar_disabled

    app = CircuitApp(pieces=16, nodes_per_piece=16, wires_per_piece=24)

    def run(columnar: bool):
        reset_geometry_cache()
        with (nullcontext() if columnar else columnar_disabled()):
            rt = Runtime(app.tree, app.initial, algorithm="warnock")
            t0 = time.perf_counter()
            rt.replay(app.init_stream())
            rt.replay(app.iteration_stream())
            seconds = time.perf_counter() - t0
        reset_geometry_cache()
        return analysis_fingerprint(rt), seconds

    fp_on, on_s = run(True)
    fp_off, off_s = run(False)
    _REFINE_CACHE.update(fp_on=fp_on, fp_off=fp_off, on_s=on_s,
                         off_s=off_s)
    return _REFINE_CACHE


def test_columnar_scan_smoke():
    """CI's columnar-correctness gate, in smoke mode like the geometry
    differential above: on the long-reduction-history scan the columnar
    sweep must agree with the object walk on dependences *and* meter
    totals, and must beat it by at least 2x (the tentpole's bar — the
    object walk pays two locked meter increments and one interference
    call per entry; the sweep pays one mask and one batched kernel)."""
    data = _columnar_scan_data()
    assert data["deps_on"] == data["deps_off"] == {0}
    assert data["meter_on"] == data["meter_off"]
    speedup = data["off_s"] / max(data["on_s"], 1e-9)
    assert speedup >= 2.0, (
        f"columnar scan only {speedup:.2f}x over the object walk "
        f"({data['on_s'] * 1e3:.3f}ms vs {data['off_s'] * 1e3:.3f}ms)")
    print(f"columnar_scan: {data['entries']} entries, "
          f"on {data['on_s'] * 1e3:.3f}ms vs off "
          f"{data['off_s'] * 1e3:.3f}ms ({speedup:.1f}x)")


def test_refinement_batch_smoke():
    data = _refinement_batch_data()
    assert data["fp_on"] == data["fp_off"], \
        "batched refinement rounds changed the analysis fingerprint"
    print(f"refinement_batch: on {data['on_s']:.3f}s vs off "
          f"{data['off_s']:.3f}s "
          f"({data['off_s'] / max(data['on_s'], 1e-9):.2f}x)")


# ----------------------------------------------------------------------
# machine-readable bench document + soft gate (runs in smoke mode too)
# ----------------------------------------------------------------------
def test_bench_json_emission():
    """Emit ``BENCH_micro_analysis.json`` — one timed steady-iteration
    row per algorithm, self-describing environment block — validate it
    through the gate loader, and self-compare (a document must always
    pass the gate against itself).  CI uploads the file as an artifact
    and soft-gates it against ``benchmarks/baseline.json``."""
    from repro.bench.gate import compare, load_bench
    from repro.bench.harness import BENCH_SCHEMA_ID, write_bench_json

    app = CircuitApp(pieces=8, nodes_per_piece=8, wires_per_piece=12)
    rows = []
    for algorithm in ALGOS:
        rt = Runtime(app.tree, app.initial, algorithm=algorithm)
        rt.replay(app.init_stream())
        rt.replay(app.iteration_stream())  # warm structures and memos
        stream = app.iteration_stream()
        t0 = time.perf_counter()
        rt.replay(stream)
        seconds = time.perf_counter() - t0
        rows.append({"name": f"steady_iteration[{algorithm}]",
                     "seconds": seconds, "tasks": len(rt.tasks)})

    # precedence-oracle rows: long-stream analysis with the oracle on and
    # off, plus the labels-vs-BFS soundness-check timing (the measured
    # O(1)-precedes speedup on a >= 2k-task stream)
    prec = _precedence_data()
    rows.append({"name": "precedence_scan[raycast+oracle]",
                 "seconds": prec["on_s"],
                 "tasks": len(prec["on_rt"].tasks),
                 "edges": prec["on_rt"].graph.edge_count()})
    rows.append({"name": "precedence_scan[raycast]",
                 "seconds": prec["off_s"],
                 "tasks": len(prec["off_rt"].tasks),
                 "edges": prec["off_rt"].graph.edge_count()})
    rows.append({"name": "precedence_soundness[labels]",
                 "seconds": prec["labels_s"], "pairs": prec["pairs"]})
    rows.append({"name": "precedence_soundness[bfs]",
                 "seconds": prec["bfs_s"], "pairs": prec["pairs"]})

    # columnar-history rows: the vectorized whole-history scan vs the
    # object walk, and Warnock's batched refinement rounds on/off
    col = _columnar_scan_data()
    rows.append({"name": "columnar_scan[columnar]",
                 "seconds": col["on_s"], "entries": col["entries"]})
    rows.append({"name": "columnar_scan[object]",
                 "seconds": col["off_s"], "entries": col["entries"]})
    refine = _refinement_batch_data()
    rows.append({"name": "refinement_batch[columnar]",
                 "seconds": refine["on_s"]})
    rows.append({"name": "refinement_batch[object]",
                 "seconds": refine["off_s"]})

    out = write_bench_json(RESULTS_DIR / "BENCH_micro_analysis.json",
                           "micro_analysis", rows,
                           extra={"pieces": 8, "iterations": 1})
    doc = load_bench(out)
    assert doc["schema"] == BENCH_SCHEMA_ID
    assert doc["bench"] == "micro_analysis"
    assert {row["name"] for row in doc["rows"]} \
        == ({f"steady_iteration[{a}]" for a in ALGOS}
            | {"precedence_scan[raycast+oracle]", "precedence_scan[raycast]",
               "precedence_soundness[labels]", "precedence_soundness[bfs]",
               "columnar_scan[columnar]", "columnar_scan[object]",
               "refinement_batch[columnar]", "refinement_batch[object]"})
    assert all(row["seconds"] > 0 for row in doc["rows"])
    assert "python" in doc["environment"]

    self_gate = compare(doc, doc)
    assert all(r.status == "ok" for r in self_gate), self_gate
