"""Regenerate Figure 15: Stencil weak.

Replays the stencil task stream through each algorithm at 1..N simulated
nodes and reports the paper's "weak" metric; the shape claims of
section 8 are asserted by check_shape.
"""


def test_fig15_stencil_weak(figure_runner):
    figure_runner("fig15")
