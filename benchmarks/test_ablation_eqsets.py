"""Ablation: equivalence-set counts, Warnock vs ray casting.

Section 8.1 attributes Warnock's initialization collapse to the explosion
of equivalence sets ("the superlinear nature of the approach still
explodes the number of equivalence sets"), and section 8.2 attributes ray
casting's steady-state edge to "fewer total equivalence sets in its lists
by coalescing writes".  This ablation measures the mechanism directly: the
live set count per field after N steady iterations, as a function of
machine size.
"""

import os

from repro import Runtime
from repro.apps import StencilApp

from benchmarks.conftest import write_result


def count_sets(algorithm: str, pieces: int, iterations: int = 3
               ) -> dict[str, int]:
    """Live equivalence sets per field for the stencil, whose star halos
    overlap four neighbouring tiles — the aliased-read pattern that
    fragments Warnock's sets hardest."""
    app = StencilApp(pieces=pieces, tile=8)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    for _ in range(iterations):
        rt.replay(app.iteration_stream())
    return {field: rt.algorithm_for(field).num_equivalence_sets()
            for field in app.tree.field_space.names}


def test_eqset_count_ablation(benchmark):
    max_nodes = min(128, int(os.environ.get("REPRO_BENCH_MAX_NODES", "512")))
    scales = [n for n in (4, 16, 64, 128) if n <= max_nodes]

    def once():
        rows = []
        for pieces in scales:
            w = count_sets("warnock", pieces)
            r = count_sets("raycast", pieces)
            rows.append((pieces, sum(w.values()), sum(r.values())))
        return rows

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: live equivalence sets after 3 stencil iterations",
             "pieces\twarnock\traycast"]
    for pieces, w, r in rows:
        lines.append(f"{pieces}\t{w}\t{r}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_eqsets.tsv", text)

    for pieces, w, r in rows:
        # coalescing keeps ray casting at (or below) one set per piece per
        # field in steady state; Warnock's fragments persist
        assert r <= w, f"raycast has more sets than warnock at {pieces}"
    # Warnock's per-piece set count must exceed ray casting's at scale
    last = rows[-1]
    assert last[1] >= 1.5 * last[2], \
        "expected Warnock set explosion relative to ray casting"
