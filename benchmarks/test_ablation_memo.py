"""Ablation: the section 6.1 memoization of constituent equivalence sets.

"After performing this initial traversal, we can memoize the equivalence
sets that compose R" — without it, every repeat query re-descends the
refinement-tree BVH from the root.  This ablation measures BVH nodes
visited per steady iteration with and without memoization, at growing
machine sizes: the descents grow with the tree, the memoized lookups do
not.
"""

import os
from collections import Counter

from repro import Runtime
from repro.apps import CircuitApp
from repro.visibility import ALGORITHMS
from repro.visibility.warnock import WarnockAlgorithm

from benchmarks.conftest import write_result


class _NoMemoWarnock(WarnockAlgorithm):
    name = "warnock_nomemo"
    memoize = False


ALGORITHMS.setdefault("warnock_nomemo", _NoMemoWarnock)


def bvh_visits_per_iteration(algorithm: str, pieces: int) -> float:
    app = CircuitApp(pieces=pieces, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    rt.replay(app.iteration_stream())  # structures settle
    before = Counter(rt.meter.counters)
    rt.replay(app.iteration_stream())
    delta = Counter(rt.meter.counters)
    delta.subtract(before)
    return delta["bvh_nodes_visited"]


def test_memoization_ablation(benchmark):
    max_nodes = min(128, int(os.environ.get("REPRO_BENCH_MAX_NODES", "512")))
    scales = [n for n in (4, 16, 64, 128) if n <= max_nodes]

    def once():
        return [(pieces,
                 bvh_visits_per_iteration("warnock", pieces),
                 bvh_visits_per_iteration("warnock_nomemo", pieces))
                for pieces in scales]

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: BVH nodes visited per steady iteration",
             "pieces\twarnock_memo\twarnock_nomemo"]
    for pieces, memo, nomemo in rows:
        lines.append(f"{pieces}\t{memo:.0f}\t{nomemo:.0f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_memo.tsv", text)

    for pieces, memo, nomemo in rows:
        assert memo <= nomemo, f"memoization increased descents at {pieces}"
    # without memoization descents grow with the machine much faster
    first, last = rows[0], rows[-1]
    memo_growth = last[1] / max(1.0, first[1])
    nomemo_growth = last[2] / max(1.0, first[2])
    assert nomemo_growth > 2 * memo_growth
