"""Ablation: dependence-graph precision per algorithm.

All four algorithms are *sound* (every oracle interference pair is covered
by a path), but they differ in how many direct edges they report.  The
naive painter keeps every historical entry visible, so its edge count
grows with history; the pruning algorithms report close to the transitive
reduction.  Sharper graphs mean fewer event-graph dependencies for the
low-level runtime to track — a real cost in Legion.
"""

from repro import Runtime, TaskStream, oracle_dependences
from repro.apps import CircuitApp

from benchmarks.conftest import write_result

ALGOS = ("painter", "tree_painter", "warnock", "raycast", "zbuffer")


def measure(iterations: int):
    app = CircuitApp(pieces=8, nodes_per_piece=12, wires_per_piece=18)
    stream = TaskStream()
    stream.extend_from(app.init_stream())
    for _ in range(iterations):
        stream.extend_from(app.iteration_stream())
    oracle = oracle_dependences(list(stream))
    rows = {}
    for algo in ALGOS:
        rt = Runtime(app.tree, app.initial, algorithm=algo)
        rt.replay(stream)
        assert rt.graph.missing_pairs(oracle) == [], algo  # soundness
        rows[algo] = rt.graph.edge_count()
    return len(stream), len(oracle), rows


def test_dependence_precision(benchmark):
    def once():
        return {its: measure(its) for its in (2, 4, 6)}

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: direct dependence edges (all graphs sound)",
             "iterations\ttasks\toracle_pairs\t" + "\t".join(ALGOS)]
    for its, (tasks, oracle_pairs, rows) in results.items():
        lines.append(f"{its}\t{tasks}\t{oracle_pairs}\t"
                     + "\t".join(str(rows[a]) for a in ALGOS))
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_precision.tsv", text)

    for its, (_, _, rows) in results.items():
        # the pruning algorithms must stay at least as sharp as the naive
        # painter, and the painter's excess must grow with history
        assert rows["warnock"] <= rows["painter"]
        assert rows["raycast"] <= rows["painter"]
        assert rows["tree_painter"] <= rows["painter"]
        # the z-buffer is the sharpest of all (zero false positives)
        assert rows["zbuffer"] <= min(rows["warnock"], rows["raycast"])
    short = results[2][2]["painter"]
    long = results[6][2]["painter"]
    pruned_growth = results[6][2]["raycast"] / max(1, results[2][2]["raycast"])
    painter_growth = long / max(1, short)
    # the painter's edge growth outpaces the pruned algorithms'
    assert painter_growth > pruned_growth
