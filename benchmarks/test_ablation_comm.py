"""Ablation: the implicit communication the coherence analysis manages.

Section 2: "it is one of the strengths of the implicitly parallel model
that the programmer only needs to identify the desired partitions of the
data and not to explicitly manage the communication".  The executable
control-replication model (:mod:`repro.distributed`) makes that
communication observable: every cross-shard data dependence becomes a
counted point-to-point message.  This ablation reports steady-state bytes
per piece per iteration for all three applications — under weak scaling
the ghost structure per piece is constant, so the communication per piece
must stay (near) flat while the total grows with the machine.
"""

import os

from repro import TaskStream
from repro.apps import APPS
from repro.distributed import ShardedRuntime

from benchmarks.conftest import write_result


def bytes_per_piece(app_name: str, pieces: int) -> float:
    app = APPS[app_name](pieces=pieces)
    srt = ShardedRuntime(app.tree, app.initial, shards=pieces,
                         replicate_analysis=False)
    srt.execute(app.init_stream())
    srt.execute(app.iteration_stream())   # settle ownership
    srt.log.reset()
    srt.execute(app.iteration_stream())
    return srt.log.bytes / pieces


def test_communication_ablation(benchmark):
    max_nodes = min(64, int(os.environ.get("REPRO_BENCH_MAX_NODES", "512")))
    scales = [n for n in (4, 16, 64) if n <= max_nodes]

    def once():
        return {name: [(pieces, bytes_per_piece(name, pieces))
                       for pieces in scales]
                for name in ("stencil", "circuit", "pennant")}

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: cross-shard bytes per piece per steady iteration",
             "pieces\t" + "\t".join(results)]
    for k, pieces in enumerate(scales):
        lines.append(f"{pieces}\t" + "\t".join(
            f"{results[name][k][1]:.0f}" for name in results))
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_comm.tsv", text)

    for name, rows in results.items():
        values = [v for _, v in rows]
        assert all(v > 0 for v in values), \
            f"{name}: ghost exchange produced no communication"
        # weak scaling: per-piece communication bounded (interior pieces
        # have more neighbours than edge pieces, so allow a small rise)
        assert max(values) <= 3.0 * max(values[0], 1.0), \
            f"{name}: per-piece communication grows with machine size"
