"""Regenerate Figure 14: Pennant initialization time.

Replays the pennant task stream through each algorithm at 1..N simulated
nodes and reports the paper's "init" metric; the shape claims of
section 8 are asserted by check_shape.
"""


def test_fig14_pennant_init(figure_runner):
    figure_runner("fig14")
