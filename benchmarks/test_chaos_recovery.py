"""Chaos-recovery benchmark (seeded fault injection, honest wall clock).

Analyzes the same stencil stream — window by window, so checkpoints and
replay have stream boundaries — on the supervised process backend at a
sweep of fault rates, and writes ``chaos_recovery.tsv``: injected faults
seen, retries/respawns, tasks replayed from the last fingerprint-verified
checkpoint, wall-clock recovery time, and whether the recovered run
reproduced the fault-free fingerprint (it must, at every rate — that is
the determinism contract that makes recovery a digest-checked replay).
"""

from __future__ import annotations

import pytest

from repro.apps import APPS
from repro.bench.harness import render_chaos_rows, run_chaos_bench

from benchmarks.conftest import write_result

SHARDS = 4
FAULT_RATES = (0.0, 0.05, 0.1, 0.2)
SEED = 7


@pytest.mark.benchmark(group="chaos-recovery")
def test_chaos_recovery_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: run_chaos_bench(
            lambda shards: APPS["stencil"](pieces=shards),
            shards=SHARDS, fault_rates=FAULT_RATES, seed=SEED),
        rounds=1, iterations=1)
    text = render_chaos_rows(rows)
    print("\n" + text)
    write_result("chaos_recovery.tsv", text)

    # every recovered run must reproduce the fault-free fingerprint
    assert all(row.matches_baseline for row in rows), text
    assert len({row.fingerprint for row in rows}) == 1, text
    by_rate = {row.fault_rate: row for row in rows}
    assert by_rate[0.0].faults == 0
    assert by_rate[0.0].recovery_time == 0.0
    # recovery only happens when faults were seen
    for row in rows:
        if row.faults == 0:
            assert row.replayed_tasks == 0 and row.recovery_time == 0.0
