"""Regenerate Figure 12: Stencil initialization time.

Replays the stencil task stream through each algorithm at 1..N simulated
nodes and reports the paper's "init" metric; the shape claims of
section 8 are asserted by check_shape.
"""


def test_fig12_stencil_init(figure_runner):
    figure_runner("fig12")
