"""Ablation: dynamic tracing on/off (the extension section 8 disabled).

The paper's experiments run *without* Legion's tracing so the figures
measure the coherence algorithms themselves; tracing (Lee et al., SC 2018)
would memoize the dependence analysis of the repetitive loop.  We
implement tracing as an extension (``repro.runtime.tracing``) and measure
here how much analysis work a traced replay removes per steady iteration —
both in metered operations and in real wall-clock time.
"""

from collections import Counter

import pytest

from repro import Runtime
from repro.apps import CircuitApp

from benchmarks.conftest import write_result

PIECES = 32
ALGOS = ("tree_painter", "warnock", "raycast")


def _metered_iteration(algorithm: str, traced: bool) -> int:
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    for _ in range(3):  # arm, capture, first replay (or plain warm-up)
        if traced:
            rt.execute_trace("loop", app.iteration_stream())
        else:
            rt.replay(app.iteration_stream())
    before = Counter(rt.meter.counters)
    if traced:
        rt.execute_trace("loop", app.iteration_stream())
    else:
        rt.replay(app.iteration_stream())
    delta = Counter(rt.meter.counters)
    delta.subtract(before)
    analysis_events = ("entries_scanned", "intersection_tests",
                      "eqsets_visited", "views_traversed",
                      "bvh_nodes_visited")
    return sum(max(0, delta[e]) for e in analysis_events)


def test_tracing_removes_analysis_work(benchmark):
    def once():
        return {algo: (_metered_iteration(algo, traced=False),
                       _metered_iteration(algo, traced=True))
                for algo in ALGOS}

    results = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: analysis ops per steady iteration, tracing off/on",
             "algorithm\tuntraced\ttraced\tsaving"]
    for algo, (plain, traced) in results.items():
        saving = 1.0 - traced / max(1, plain)
        lines.append(f"{algo}\t{plain}\t{traced}\t{saving:.0%}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_tracing.tsv", text)

    for algo, (plain, traced) in results.items():
        assert traced <= plain, f"tracing increased analysis work for {algo}"
    # the dependence scan must be a substantial part of at least one
    # algorithm's steady-state work
    assert any(traced < 0.9 * plain for plain, traced in results.values())


@pytest.mark.parametrize("traced", [False, True],
                         ids=["untraced", "traced"])
def test_tracing_wallclock(benchmark, traced):
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm="raycast")
    rt.replay(app.init_stream())
    for _ in range(3):
        if traced:
            rt.execute_trace("loop", app.iteration_stream())
        else:
            rt.replay(app.iteration_stream())

    if traced:
        benchmark(rt.execute_trace, "loop", app.iteration_stream())
    else:
        benchmark(rt.replay, app.iteration_stream())
