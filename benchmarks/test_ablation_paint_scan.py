"""Ablation: painter composite-view scan growth.

Section 8.2 explains the painter's weak-scaling collapse: "the number of
children to examine for interference in each composite view grows with the
size of the machine".  This ablation measures entries scanned per task in
the steady state as machine size grows: roughly flat for ray casting,
linear in machine size for the painter.
"""

import os

from repro import Runtime
from repro.apps import StencilApp

from benchmarks.conftest import write_result


def entries_per_task(algorithm: str, pieces: int) -> float:
    app = StencilApp(pieces=pieces, tile=4)
    rt = Runtime(app.tree, app.initial, algorithm=algorithm)
    rt.replay(app.init_stream())
    rt.replay(app.iteration_stream())  # warm up the structures
    before = rt.meter.counters["entries_scanned"]
    tasks_before = len(rt.tasks)
    rt.replay(app.iteration_stream())
    scanned = rt.meter.counters["entries_scanned"] - before
    return scanned / (len(rt.tasks) - tasks_before)


def test_paint_scan_growth(benchmark):
    max_nodes = min(128, int(os.environ.get("REPRO_BENCH_MAX_NODES", "512")))
    scales = [n for n in (4, 16, 64, 128) if n <= max_nodes]

    def once():
        return [(pieces,
                 entries_per_task("tree_painter", pieces),
                 entries_per_task("raycast", pieces))
                for pieces in scales]

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    lines = ["# ablation: history entries scanned per task (steady state)",
             "pieces\ttree_painter\traycast"]
    for pieces, p, r in rows:
        lines.append(f"{pieces}\t{p:.1f}\t{r:.1f}")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_paint_scan.tsv", text)

    # ray casting's per-task scan stays (near) flat; the painter's grows
    # with the machine
    first, last = rows[0], rows[-1]
    scale_factor = last[0] / first[0]
    painter_growth = last[1] / max(first[1], 1.0)
    raycast_growth = last[2] / max(first[2], 1.0)
    assert painter_growth > 3.0, \
        f"painter scan should grow with machine size ({painter_growth=})"
    assert raycast_growth < painter_growth / 2, \
        "ray casting scan should grow far slower than the painter's"
    assert painter_growth > scale_factor / 4  # roughly linear growth
