"""Tracing-overhead proof for the disabled fast path.

The acceptance bar: instrumenting the hot paths (task launch, executor,
visibility materialize/commit, dependence analysis) must cost < 5% on
the `test_micro_analysis.py` workloads when the tracer is disabled — the
default state, so every un-traced run pays only this.

Two complementary measurements:

* an arithmetic bound — time the disabled instrumentation primitives
  directly (`traced` guard, module `span()` entry), count how many such
  entries one analysis iteration actually performs (by running it once
  with an enabled tracer), and check primitive-cost × entry-count
  against 5% of the measured iteration time;
* a direct A/B benchmark of the same iteration with the tracer disabled
  vs enabled, for the record (enabled overhead is allowed to be larger —
  it buys the timeline — but is reported alongside).

The arithmetic bound is what the hard assertion uses: it is robust to
CI noise because the numerator and denominator come from the same
machine moments apart, and the primitive timing averages millions of
calls.
"""

import itertools
import timeit

import pytest

from repro import Runtime
from repro.apps import CircuitApp
from repro.obs import Tracer, active_tracer, set_tracer, traced

PIECES = 32
OVERHEAD_BUDGET = 0.05
PROVENANCE_BUDGET = 0.01


def make_runtime():
    app = CircuitApp(pieces=PIECES, nodes_per_piece=16, wires_per_piece=24)
    rt = Runtime(app.tree, app.initial, algorithm="raycast")
    rt.replay(app.init_stream())
    rt.replay(app.iteration_stream())  # warm up structures and memos
    return rt, app


def count_instrumentation_entries(rt, app):
    """How many spans one iteration would record — each one is one
    disabled-path guard evaluation when tracing is off."""
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        rt.replay(app.iteration_stream())
    finally:
        set_tracer(previous)
    return len(tracer.snapshot().spans)


class _Probe:
    @traced("noop", category="bench")
    def noop(self):
        return None


def test_disabled_tracer_overhead_is_below_budget():
    assert not active_tracer().enabled, "benchmark requires default state"
    rt, app = make_runtime()

    # Denominator: honest per-iteration analysis time, best of 5.
    iter_seconds = min(timeit.repeat(
        lambda: rt.replay(app.iteration_stream()), repeat=5, number=1))

    # Numerator: disabled-path cost per instrumented call site ...
    probe = _Probe()
    calls = 200_000
    per_call = min(timeit.repeat(
        lambda: probe.noop(), repeat=5, number=calls)) / calls
    # ... times the number of call sites one iteration crosses.
    entries = count_instrumentation_entries(rt, app)
    assert entries > 0, "instrumentation did not fire — wrong workload?"

    overhead = per_call * entries / iter_seconds
    print(f"\ndisabled-tracer overhead: {entries} guarded entries x "
          f"{per_call * 1e9:.0f}ns = {per_call * entries * 1e6:.1f}us over "
          f"{iter_seconds * 1e3:.2f}ms -> {overhead * 100:.3f}%")
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled tracing costs {overhead * 100:.2f}% "
        f">= {OVERHEAD_BUDGET * 100:.0f}% of analysis time")


def test_disabled_ledger_overhead_is_below_budget():
    """Same arithmetic-bound technique for the provenance ledger, with a
    tighter budget (< 1%): its hooks are rarer than the tracer's but sit
    inside the dependence-scan inner loops.

    Disabled cost has two shapes: the per-call hoist
    (``led = prov._LEDGER; led = led if led.enabled else None``) at every
    materialize/commit/scan entry point, and a local-variable ``None``
    test per history entry scanned.  Both are timed directly; crossing
    counts come from the meter's own entry counters (identical on/off —
    the differential tests prove it) plus a generous per-task constant
    for the hoists."""
    from repro.obs import provenance as prov

    assert not prov.active_ledger().enabled, \
        "benchmark requires the default (disabled) ledger"
    rt, app = make_runtime()

    iter_seconds = min(timeit.repeat(
        lambda: rt.replay(app.iteration_stream()), repeat=5, number=1))

    calls = 200_000

    def hoist():
        led = prov._LEDGER
        led = led if led.enabled else None
        return led

    per_hoist = min(timeit.repeat(hoist, repeat=5, number=calls)) / calls

    led = None

    def none_check():
        if led is not None:
            return 1
        return 0

    per_none = min(timeit.repeat(none_check, repeat=5,
                                 number=calls)) / calls

    before = dict(rt.meter.counters)
    stream = app.iteration_stream()
    tasks = len(stream)
    rt.replay(stream)
    after = rt.meter.counters

    def delta(counter):
        return after.get(counter, 0) - before.get(counter, 0)

    # every per-entry guard is bounded by something the meter counts
    entry_checks = (delta("entries_scanned") + delta("eqsets_visited")
                    + delta("intersection_tests")
                    + delta("bvh_nodes_visited"))
    assert entry_checks > 0, "analysis scanned nothing — wrong workload?"
    hoists = 16 * tasks  # launch + per-requirement begin/end, rounded up

    overhead_s = per_hoist * hoists + per_none * entry_checks
    overhead = overhead_s / iter_seconds
    print(f"\ndisabled-ledger overhead: {hoists} hoists x "
          f"{per_hoist * 1e9:.0f}ns + {entry_checks} entry checks x "
          f"{per_none * 1e9:.0f}ns = {overhead_s * 1e6:.1f}us over "
          f"{iter_seconds * 1e3:.2f}ms -> {overhead * 100:.3f}%")
    assert overhead < PROVENANCE_BUDGET, (
        f"disabled provenance costs {overhead * 100:.2f}% "
        f">= {PROVENANCE_BUDGET * 100:.0f}% of analysis time")


def test_disabled_service_metrics_overhead_is_below_budget():
    """The ``service.*`` instrument facade must be free when the service
    layer is not in use.

    Two properties gate this: (1) a run without the service never even
    imports the asyncio front-end (the ``repro.service`` package is
    lazy, so analysis code paths cannot accidentally pay for it); (2)
    with no registry attached every hook is a single ``None`` test —
    timed here and bounded against the analysis iteration the same way
    as the tracer proof, using a generous per-session call count."""
    import subprocess
    import sys

    # (1) plain analysis never imports the service front-end
    probe = subprocess.run(
        [sys.executable, "-c",
         "import sys; import repro; from repro import Runtime; "
         "assert 'repro.service.service' not in sys.modules, "
         "'service front-end leaked into core import'"],
        capture_output=True, text=True)
    assert probe.returncode == 0, probe.stderr

    # (2) disabled-hook cost x calls-per-session against iteration time
    from repro.service.metrics import ServiceMetrics

    metrics = ServiceMetrics(None)
    assert not metrics.enabled
    rt, app = make_runtime()
    iter_seconds = min(timeit.repeat(
        lambda: rt.replay(app.iteration_stream()), repeat=5, number=1))

    calls = 200_000

    def hooks():
        metrics.admitted("t")
        metrics.completed("t", 0.01)
        metrics.rejected("t", "rate")
        metrics.set_queue_depth("t", 1)
        metrics.set_paused("t", False)
        metrics.set_inflight(1)
        metrics.set_breaker(0)

    per_burst = min(timeit.repeat(hooks, repeat=5, number=calls)) / calls
    # one session crosses far fewer than 4 such bursts
    overhead = per_burst * 4 / iter_seconds
    print(f"\ndisabled service metrics: 7-hook burst "
          f"{per_burst * 1e9:.0f}ns x 4 over {iter_seconds * 1e3:.2f}ms "
          f"-> {overhead * 100:.4f}%")
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled service.* instruments cost {overhead * 100:.2f}% "
        f">= {OVERHEAD_BUDGET * 100:.0f}% of analysis time")


def test_enabled_vs_disabled_ab(benchmark):
    """For the record: the same iteration with tracing on. Not gated —
    enabled runs buy the timeline — but keeps the cost visible."""
    rt, app = make_runtime()
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        benchmark(rt.replay, app.iteration_stream())
    finally:
        set_tracer(previous)


@pytest.mark.parametrize("state", ("disabled", "enabled"))
def test_span_primitive_cost(benchmark, state):
    """Raw per-span cost of the two tracer states."""
    tracer = Tracer(enabled=(state == "enabled"))

    def one_span():
        with tracer.span("x", "bench"):
            pass
        if state == "enabled":
            tracer.drain()

    benchmark(one_span)


TELEMETRY_DISABLED_BUDGET = 0.01
TELEMETRY_ENABLED_BUDGET = 0.02


def test_no_telemetry_hub_overhead_is_below_budget():
    """A run without a hub pays nothing for the telemetry pipeline.

    The hub is pull-based: the hot paths never call into it — they keep
    publishing the same cumulative instruments, and the hub differences
    those totals from *outside* on its own tick.  The only residual
    telemetry cost in a hub-less run is the ``hub is not None`` guard the
    load driver evaluates once per run; time that primitive and bound it
    (generously, as if it ran once per task) against the iteration."""
    rt, app = make_runtime()
    iter_seconds = min(timeit.repeat(
        lambda: rt.replay(app.iteration_stream()), repeat=5, number=1))

    hub = None
    calls = 200_000

    def guard():
        if hub is not None:
            return 1
        return 0

    per_guard = min(timeit.repeat(guard, repeat=5, number=calls)) / calls
    tasks = len(app.iteration_stream())
    overhead = per_guard * tasks / iter_seconds
    print(f"\nno-hub telemetry overhead: {tasks} guards x "
          f"{per_guard * 1e9:.0f}ns over {iter_seconds * 1e3:.2f}ms "
          f"-> {overhead * 100:.4f}%")
    assert overhead < TELEMETRY_DISABLED_BUDGET, (
        f"hub-less telemetry costs {overhead * 100:.2f}% "
        f">= {TELEMETRY_DISABLED_BUDGET * 100:.0f}% of analysis time")


def test_enabled_1hz_sampler_overhead_is_below_budget():
    """With a hub attached at the default 1 Hz, one tick's cost over a
    realistically populated registry must stay under 2% of the second it
    samples (the tick runs on the service event loop, so its cost is
    admission latency for whatever is queued behind it)."""
    from repro.distributed.faults import FakeClock
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.slo import SloEvaluator, default_service_slos
    from repro.obs.telemetry import TelemetryHub
    from repro.service.metrics import LATENCY_BUCKETS

    registry = MetricsRegistry()
    for t in range(8):
        tenant = f"tenant{t}"
        registry.counter("service.admitted", tenant=tenant).inc(100)
        registry.counter("service.completed", tenant=tenant).inc(95)
        registry.counter("service.rejected", tenant=tenant,
                         reason="queue_full").inc(3)
        registry.counter("service.errors", tenant=tenant).inc(2)
        registry.counter("geom.cache.hits", tenant=tenant).inc(900)
        registry.counter("geom.cache.misses", tenant=tenant).inc(100)
        registry.gauge("service.queue_depth", tenant=tenant).set(2)
        hist = registry.histogram("service.latency_seconds",
                                  buckets=LATENCY_BUCKETS, tenant=tenant)
        for k in range(50):
            hist.observe(0.001 * (k + 1))
    glob = registry.histogram("service.latency_seconds",
                              buckets=LATENCY_BUCKETS)
    for k in range(400):
        glob.observe(0.001 * (k % 50 + 1))
    registry.gauge("service.inflight").set(4)
    registry.gauge("service.breaker").set(0)

    clock = FakeClock()
    hub = TelemetryHub(
        registry, clock=clock, interval=1.0,
        evaluator=SloEvaluator(default_service_slos(), registry=registry))

    def tick():
        clock.advance(1.0)
        hub.sample()

    ticks = 200
    per_sample = min(timeit.repeat(tick, repeat=5, number=ticks)) / ticks
    overhead = per_sample / 1.0  # one tick per sampled second at 1 Hz
    print(f"\n1Hz sampler overhead: {len(registry)} instruments, "
          f"{per_sample * 1e6:.0f}us/tick -> {overhead * 100:.3f}%")
    assert overhead < TELEMETRY_ENABLED_BUDGET, (
        f"1Hz telemetry sampling costs {overhead * 100:.2f}% "
        f">= {TELEMETRY_ENABLED_BUDGET * 100:.0f}% of sampled wall time")


FLIGHT_DISARMED_BUDGET = 0.01
FLIGHT_ARMED_BUDGET = 0.02


def test_disarmed_recorder_overhead_is_below_budget():
    """The always-installed flight recorder must be ~free until armed.

    Its hot-path hook is one attribute check (``flight.armed``) per
    finished span or instant, evaluated only on traced runs — untraced
    runs never reach it at all.  Arithmetic bound, same technique as the
    tracer proof with the tighter 1% budget: the disarmed-hook primitive
    x the span entries one analysis iteration crosses, against the
    iteration time."""
    from repro.obs.flight import FlightRecorder, active_recorder

    assert not active_recorder().armed, "benchmark requires default state"
    rt, app = make_runtime()
    iter_seconds = min(timeit.repeat(
        lambda: rt.replay(app.iteration_stream()), repeat=5, number=1))

    flight = FlightRecorder()  # disarmed: the hook reads one attribute
    span = None

    def hook():
        if flight is not None and flight.armed:
            flight.record_span(span)

    calls = 200_000
    per_hook = min(timeit.repeat(hook, repeat=5, number=calls)) / calls
    entries = count_instrumentation_entries(rt, app)
    assert entries > 0, "instrumentation did not fire — wrong workload?"

    overhead = per_hook * entries / iter_seconds
    print(f"\ndisarmed-recorder overhead: {entries} hooks x "
          f"{per_hook * 1e9:.0f}ns = {per_hook * entries * 1e6:.1f}us "
          f"over {iter_seconds * 1e3:.2f}ms -> {overhead * 100:.3f}%")
    assert overhead < FLIGHT_DISARMED_BUDGET, (
        f"disarmed flight recorder costs {overhead * 100:.2f}% "
        f">= {FLIGHT_DISARMED_BUDGET * 100:.0f}% of analysis time")


def test_armed_recorder_and_exemplars_at_1hz_are_below_budget():
    """Worst-case armed cost: every completed session feeds the span
    ring, every completion offers a latency exemplar to its reservoir,
    and the 1 Hz hub tick ships the fresh exemplar rows alongside the
    digests.  One second of that — a generous 200 sessions/s across 8
    tenants — must stay under 2% of the second it instruments."""
    from repro.distributed.faults import FakeClock
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.telemetry import TelemetryHub
    from repro.obs.tracer import Span
    from repro.service.metrics import LATENCY_BUCKETS

    clock = FakeClock()
    registry = MetricsRegistry()
    hists = [registry.histogram("service.latency_seconds",
                                buckets=LATENCY_BUCKETS, exemplars=4,
                                exemplar_seed=2023, tenant=f"tenant{t}")
             for t in range(8)]
    recorder = FlightRecorder(clock=clock)  # in-memory: dumps are no-ops
    recorder.armed = True  # arm directly; env probe is not under test
    hub = TelemetryHub(registry, clock=clock, interval=1.0)

    sessions = 200
    ids = itertools.count(1)

    def one_second():
        for k in range(sessions):
            n = next(ids)
            recorder.record_span(Span(
                "session", "service.session", 0.0, 0.001,
                tid=k % 4, span_id=n))
            hists[k % 8].observe(
                0.001 * (k % 50 + 1),
                {"trace": n, "tenant": f"tenant{k % 8}", "session": n})
        clock.advance(1.0)
        hub.sample()

    seconds = 50
    per_second = min(timeit.repeat(one_second, repeat=5,
                                   number=seconds)) / seconds
    overhead = per_second / 1.0  # instrumented cost per sampled second
    print(f"\narmed recorder + exemplars at 1Hz: {sessions} sessions/s, "
          f"{per_second * 1e6:.0f}us/s -> {overhead * 100:.3f}%")
    assert overhead < FLIGHT_ARMED_BUDGET, (
        f"armed flight recorder + exemplars cost {overhead * 100:.2f}% "
        f">= {FLIGHT_ARMED_BUDGET * 100:.0f}% of sampled wall time")
