"""Shared sweep infrastructure for the figure benchmarks.

One sweep per application feeds both its initialization figure and its
weak-scaling figure, so the sweeps are cached per session.  Environment
knobs:

* ``REPRO_BENCH_MAX_NODES`` — largest simulated machine (default 512, the
  paper's scale).  Set to 64 for a quick pass.
* ``REPRO_BENCH_ITERATIONS`` — steady-state iterations per run (default 3).

Rendered tables are printed and also written under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.figures import FIGURES, PAPER_NODE_COUNTS
from repro.bench.harness import run_sweep

RESULTS_DIR = Path(__file__).parent / "results"


def node_counts() -> tuple[int, ...]:
    max_nodes = int(os.environ.get("REPRO_BENCH_MAX_NODES", "512"))
    return tuple(n for n in PAPER_NODE_COUNTS if n <= max_nodes)


def steady_iterations() -> int:
    return int(os.environ.get("REPRO_BENCH_ITERATIONS", "3"))


_SWEEPS: dict[str, dict] = {}


def get_sweep(app_name: str) -> dict:
    """The (cached) full sweep for one application."""
    if app_name not in _SWEEPS:
        spec = next(s for s in FIGURES.values() if s.app == app_name)
        _SWEEPS[app_name] = run_sweep(
            spec.app_factory, node_counts(),
            steady_iterations=steady_iterations())
    return _SWEEPS[app_name]


def write_result(name: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture
def figure_runner(benchmark):
    """Run one figure: compute (cached) sweep, render, shape-check."""
    from repro.bench.figures import check_shape, figure_series, render_series

    def run(figure_id: str):
        spec = FIGURES[figure_id]

        def once():
            return get_sweep(spec.app)

        sweep = benchmark.pedantic(once, rounds=1, iterations=1)
        series = figure_series(spec, sweep)
        text = render_series(spec, series)
        print("\n" + text)
        write_result(f"{figure_id}.tsv", text)
        from repro.bench.plots import plot_figure
        write_result(f"{figure_id}.txt", plot_figure(spec, series))
        problems = check_shape(spec, sweep)
        assert not problems, f"{figure_id} shape violations: {problems}"
        return series

    return run
