"""Ablation: the z-buffer extension's precision/distribution trade.

The z-buffer (the fourth classic visibility algorithm, implemented beyond
the paper in ``repro/visibility/zbuffer.py``) computes maximally precise
dependences from per-element records — but its canonical table is one
mutable, unreplicable object.  On the simulated machine every analysis
must touch it, so the control node serializes the whole machine *even
under DCR*: the cleanest demonstration of why the paper's algorithms
track coherence with distributable structures (composite views,
equivalence sets) instead of per-element state.
"""

import os

from repro.apps import CircuitApp
from repro.machine import simulate_app

from benchmarks.conftest import write_result


def test_zbuffer_scaling_ablation(benchmark):
    max_nodes = min(64, int(os.environ.get("REPRO_BENCH_MAX_NODES", "512")))
    scales = [n for n in (4, 16, 64) if n <= max_nodes]

    def once():
        rows = []
        for nodes in scales:
            cells = {}
            for algo, dcr in (("raycast", True), ("zbuffer", True),
                              ("zbuffer", False)):
                app = CircuitApp(pieces=nodes, nodes_per_piece=16,
                                 wires_per_piece=24)
                r = simulate_app(app, algo, dcr=dcr, steady_iterations=2)
                cells[r.system] = r.throughput_per_node
            rows.append((nodes, cells))
        return rows

    rows = benchmark.pedantic(once, rounds=1, iterations=1)
    systems = list(rows[0][1])
    lines = ["# ablation: z-buffer weak scaling (wires/s per node)",
             "nodes\t" + "\t".join(systems)]
    for nodes, cells in rows:
        lines.append(f"{nodes}\t" + "\t".join(f"{cells[s]:.4g}"
                                              for s in systems))
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_zbuffer.tsv", text)

    largest = rows[-1][1]
    # the centralized table caps the z-buffer regardless of DCR
    assert largest["raycast_dcr"] > 2.0 * largest["zbuffer_dcr"]
    # and DCR barely helps it (the bottleneck is the table, not the origin)
    assert largest["zbuffer_dcr"] < 3.0 * largest["zbuffer_nodcr"]
