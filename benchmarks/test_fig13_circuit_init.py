"""Regenerate Figure 13: Circuit initialization time.

Replays the circuit task stream through each algorithm at 1..N simulated
nodes and reports the paper's "init" metric; the shape claims of
section 8 are asserted by check_shape.
"""


def test_fig13_circuit_init(figure_runner):
    figure_runner("fig13")
