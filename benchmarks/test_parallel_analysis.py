"""Parallel shard-analysis executor benchmark (honest wall clock).

Unlike the figure benchmarks — which replay metered operation counts onto
a *simulated* machine — this one measures real elapsed time: the same
8-shard stencil stream analyzed by the serial, thread and process
backends with deterministic-merge verification on.  It writes
``parallel_analysis.tsv`` with per-phase perf counters (analysis wall
clock, slowest shard window, merge/verify time, pickled bytes shipped)
and asserts the cross-backend determinism contract on every run; the
process-beats-serial wall-clock assertion additionally requires real
parallel hardware (≥ 2 usable cores) — on a single core all backends
time-slice the same CPU and only overheads differ.
"""

from __future__ import annotations

import os

import pytest

from repro.apps import APPS
from repro.bench.harness import render_parallel_rows, run_parallel_analysis

from benchmarks.conftest import write_result

SHARDS = 8
BACKENDS = ("serial", "thread", "process")


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="parallel-analysis")
def test_parallel_analysis_backends(benchmark):
    rows = benchmark.pedantic(
        lambda: run_parallel_analysis(
            lambda shards: APPS["stencil"](pieces=shards),
            shards=SHARDS, backends=BACKENDS),
        rounds=1, iterations=1)
    text = render_parallel_rows(rows)
    print("\n" + text)
    write_result("parallel_analysis.tsv", text)

    # determinism contract: every backend reaches the identical analysis
    assert len({row.fingerprint for row in rows}) == 1, rows
    by_backend = {row.backend: row for row in rows}
    assert by_backend["process"].ship_bytes > 0
    assert all(row.verify_time > 0 for row in rows)

    if _usable_cores() >= 2:
        assert (by_backend["process"].analyze_time
                < by_backend["serial"].analyze_time), (
            "process backend should beat serial on parallel hardware: "
            + text)
