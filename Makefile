# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test check chaos lint bench bench-quick report examples \
	introspect-smoke service-smoke telemetry-smoke columnar-smoke \
	blackbox-smoke clean help

help:
	@echo "install      editable install (offline-friendly)"
	@echo "test         run the full test suite"
	@echo "check        lint (bytecode compile) + tier-1 tests (CI entry)"
	@echo "chaos        fault-injection / SIGKILL recovery matrix"
	@echo "bench        regenerate every figure + ablation (1-512 nodes)"
	@echo "bench-quick  same sweep capped at 64 nodes"
	@echo "report       assemble benchmarks/results into markdown"
	@echo "examples     run every example script"
	@echo "introspect-smoke  census -> validate -> self-diff -> explain"
	@echo "service-smoke  boot the analysis service, 3 tenants, chaos + verify"
	@echo "telemetry-smoke  serve --telemetry-out -> validate stream -> top --once"
	@echo "columnar-smoke  differential fingerprint check, columnar on vs off"
	@echo "blackbox-smoke  chaos serve with flight recorder -> validate dump -> render"
	@echo "clean        remove build/caches/results"

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples

check: lint
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	PYTHONPATH=src $(PYTHON) -m pytest -q --benchmark-disable \
		benchmarks/test_micro_analysis.py
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/distributed/test_precedence_differential.py -k "not Sharded"

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest -m chaos -q

introspect-smoke:
	PYTHONPATH=src $(PYTHON) -m repro census --app stencil --pieces 4 \
		--iterations 2 --json > census.json
	PYTHONPATH=src $(PYTHON) -c "import json; \
		from repro.obs.census import validate_census; \
		validate_census(json.load(open('census.json'))); \
		print('census.json: schema valid')"
	PYTHONPATH=src $(PYTHON) -m repro census-diff census.json census.json
	PYTHONPATH=src $(PYTHON) -m repro explain 7 --app stencil --pieces 4 \
		--iterations 2

service-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/service/
	PYTHONPATH=src $(PYTHON) -m repro serve --backend process \
		--tenants 3 --sessions 24 --seed 2023 \
		--max-inflight 32 --queue-limit 32 --rate 1000 --burst 64 --verify
	PYTHONPATH=src $(PYTHON) -m repro serve --chaos 7 --fault-rate 0.1 \
		--tenants 3 --sessions 24 --seed 2023 \
		--max-inflight 32 --queue-limit 32 --rate 1000 --burst 64 --verify

telemetry-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/obs/test_telemetry.py \
		tests/obs/test_slo.py tests/obs/test_top.py
	rm -rf telemetry-out
	PYTHONPATH=src $(PYTHON) -m repro serve --backend process \
		--tenants 3 --sessions 24 --seed 2023 \
		--max-inflight 32 --queue-limit 32 --rate 1000 --burst 64 \
		--telemetry-out telemetry-out --telemetry-interval 0.1
	PYTHONPATH=src $(PYTHON) -c "from repro.obs.telemetry import \
		validate_telemetry; problems = validate_telemetry('telemetry-out'); \
		assert not problems, problems; \
		print('telemetry-out: repro.telemetry/1 schema valid')"
	PYTHONPATH=src $(PYTHON) -m repro top telemetry-out --once --window 5m

columnar-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/distributed/test_columnar_differential.py -k "not sharded"
	PYTHONPATH=src $(PYTHON) -m repro analyze --app stencil --pieces 4 \
		--iterations 2 --shards 2 --parallel 2 --no-columnar --profile

blackbox-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/obs/test_flight.py \
		tests/obs/test_doctor.py tests/service/test_blackbox.py
	rm -rf blackbox-out
	PYTHONPATH=src $(PYTHON) -m repro serve --chaos 7 --fault-rate 0.3 \
		--tenants 3 --sessions 24 --seed 2023 \
		--max-inflight 32 --queue-limit 32 --rate 1000 --burst 64 \
		--flight-out blackbox-out --flight-cooldown 0.1
	PYTHONPATH=src $(PYTHON) -c "import glob, sys; \
		from repro.obs.flight import load_blackbox; \
		paths = sorted(glob.glob('blackbox-out/blackbox-*.json')); \
		assert paths, 'chaos run produced no blackbox dump'; \
		[load_blackbox(p) for p in paths]; \
		print(f'blackbox-out: {len(paths)} repro.blackbox/1 dump(s) valid')"
	PYTHONPATH=src $(PYTHON) -m repro doctor
	PYTHONPATH=src sh -c '$(PYTHON) -m repro blackbox \
		"$$(ls blackbox-out/blackbox-*.json | tail -1)" --top 3'

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_MAX_NODES=64 $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro report --output benchmarks/results/REPORT.md

examples:
	@for ex in examples/*.py; do \
		echo "== $$ex"; $(PYTHON) $$ex || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis \
		benchmarks/results telemetry-out blackbox-out census.json
	find . -name __pycache__ -type d -exec rm -rf {} +
