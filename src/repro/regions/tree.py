"""The region tree container."""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

import numpy as np

from repro.errors import RegionTreeError
from repro.geometry.index_space import IndexSpace
from repro.geometry.point import Extent
from repro.regions.field import FieldSpace
from repro.regions.region import Region


class RegionTree:
    """A root region, its field space, and every region derived from it.

    Parameters
    ----------
    space:
        Domain of the root region — an :class:`IndexSpace`, an
        :class:`Extent` (dense grid), or a plain element count.
    fields:
        Mapping of field name to dtype, or a prebuilt :class:`FieldSpace`.
    name:
        Root region name (defaults to ``"A"``, matching section 4).
    """

    def __init__(self, space: IndexSpace | Extent | int,
                 fields: Mapping[str, np.dtype | type | str] | FieldSpace,
                 name: str = "A") -> None:
        if isinstance(space, int):
            if space <= 0:
                raise RegionTreeError("root element count must be positive")
            self.extent: Optional[Extent] = Extent((space,))
            root_space = IndexSpace.from_range(0, space)
        elif isinstance(space, Extent):
            self.extent = space
            root_space = IndexSpace.from_range(0, space.volume)
        elif isinstance(space, IndexSpace):
            self.extent = None
            if space.is_empty:
                raise RegionTreeError("root index space must be non-empty")
            root_space = space
        else:
            raise RegionTreeError(f"unsupported root space: {space!r}")

        self.field_space = (fields if isinstance(fields, FieldSpace)
                            else FieldSpace(fields))
        self._regions: list[Region] = []
        self._next_uid = 0
        self.root = self._new_region(root_space, name, None)

    # ------------------------------------------------------------------
    def _new_region(self, space: IndexSpace, name: str, parent_partition) -> Region:
        region = Region(self, space, name, parent_partition, self._next_uid)
        self._next_uid += 1
        self._regions.append(region)
        return region

    # ------------------------------------------------------------------
    @property
    def regions(self) -> tuple[Region, ...]:
        """Every region of the tree, in creation order."""
        return tuple(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def walk(self) -> Iterator[Region]:
        """Pre-order traversal from the root."""
        yield self.root
        yield from self.root.descendants()

    def find_disjoint_complete_partition(self, region: Optional[Region] = None):
        """First disjoint-and-complete partition *of* ``region`` (default:
        the root).

        This is the heuristic of section 7.1: ray casting keys its
        equivalence sets to the leaves of a disjoint-complete partition
        subtree when one exists.  The partition must belong to the region
        itself — a disjoint-complete partition of some deeper subregion
        does not cover the region's elements and cannot serve as its
        bucket decomposition.  Returns ``None`` otherwise (the K-d tree
        fallback case).
        """
        start = region or self.root
        for part in start.partitions.values():
            if part.disjoint and part.complete:
                return part
        return None

    def __repr__(self) -> str:
        return (f"RegionTree(root={self.root.name!r}, "
                f"elements={self.root.space.size}, regions={len(self)})")
