"""Field spaces: the per-element record structure of a region tree.

The running example of the paper (Figure 1) declares ``struct Node { up,
down }``; tasks then request privileges on *specific fields* of a region.
Because accesses to different fields can never interfere, the runtime keeps
one independent coherence-algorithm instance per field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.errors import RegionTreeError


@dataclass(frozen=True)
class Field:
    """A single named field with a NumPy dtype."""

    name: str
    dtype: np.dtype

    def __repr__(self) -> str:
        return f"Field({self.name!r}, {np.dtype(self.dtype).name})"


class FieldSpace:
    """An ordered collection of named fields.

    Parameters
    ----------
    fields:
        Mapping of field name to dtype (anything ``np.dtype`` accepts).
    """

    def __init__(self, fields: Mapping[str, np.dtype | type | str]) -> None:
        if not fields:
            raise RegionTreeError("FieldSpace requires at least one field")
        self._fields: dict[str, Field] = {}
        for name, dtype in fields.items():
            if not name or not isinstance(name, str):
                raise RegionTreeError(f"invalid field name {name!r}")
            self._fields[name] = Field(name, np.dtype(dtype))

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __getitem__(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise RegionTreeError(
                f"unknown field {name!r}; known: {sorted(self._fields)}"
            ) from None

    def __iter__(self) -> Iterator[Field]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    @property
    def names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(self._fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.dtype.name}" for f in self)
        return f"FieldSpace({inner})"
