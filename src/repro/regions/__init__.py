"""Region trees: hierarchical, possibly aliased views of collections.

The region tree (Figure 2c) is the program-facing naming structure: a root
region holds all elements of a collection; *partitions* name arrays of
subregions; subregions may themselves be partitioned.  Partitions carry two
independent properties the coherence algorithms exploit:

* **disjoint** — no element appears in two subregions (the primary
  partition of Figure 2a), vs. **aliased** (the ghost partition, 2b);
* **complete** — every element of the parent appears in some subregion,
  vs. incomplete.

Fields are orthogonal to the spatial structure: a region tree is created
over a :class:`~repro.regions.field.FieldSpace`, and coherence is tracked
per field.
"""

from repro.regions.field import Field, FieldSpace
from repro.regions.region import Region
from repro.regions.partition import Partition
from repro.regions.tree import RegionTree

__all__ = ["Field", "FieldSpace", "Region", "Partition", "RegionTree"]
