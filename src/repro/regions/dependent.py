"""Dependent partitioning: computing partitions from data and functions.

Section 2 of the paper leans on Legion's partitioning sublanguage
[Treichler et al., OOPSLA 2013/2016]: programs *name* subregions by
computing partitions — by field value, by the image of a relation (where
do my wires' endpoints live?), by preimage, or by set operations on
existing partitions.  The ghost partition of Figure 2(b) is exactly

    G = image(wires, P) \\ P        (per piece)

These operators build ordinary :class:`~repro.regions.partition.Partition`
objects, so everything downstream (the coherence algorithms, the BVH
bucket selection) works unchanged.  All operators are deterministic and
vectorized.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import RegionTreeError
from repro.geometry.index_space import IndexSpace
from repro.regions.partition import Partition
from repro.regions.region import Region


def partition_by_field(region: Region, name: str, colors: np.ndarray,
                       num_colors: Optional[int] = None) -> Partition:
    """Partition a region by a per-element color array.

    ``colors[k]`` is the color of ``region.space.indices[k]``; a negative
    color leaves the element out of every subregion (so the result may be
    incomplete).  The result is always disjoint.
    """
    colors = np.asarray(colors)
    if colors.shape != (region.space.size,):
        raise RegionTreeError(
            f"colors shape {colors.shape} does not match region size "
            f"{region.space.size}")
    colors = colors.astype(np.int64)
    if num_colors is None:
        num_colors = int(colors.max()) + 1 if colors.size else 0
    if num_colors < 1:
        raise RegionTreeError("partition_by_field needs at least one color")
    indices = region.space.indices
    subs = [IndexSpace(indices[colors == c], trusted=True)
            for c in range(num_colors)]
    return region.create_partition(name, subs, disjoint=True)


def image_partition(target: Region, name: str,
                    relation: Sequence[np.ndarray],
                    clip: bool = True) -> Partition:
    """Partition ``target`` by the image of a relation.

    ``relation[i]`` is an array of element indices that piece ``i`` points
    *to* (e.g. the endpoints of piece i's wires).  Subregion ``i`` of the
    result is the set of those indices that lie inside ``target`` —
    typically aliased and incomplete, like the ghost partition.
    """
    out: list[IndexSpace] = []
    tspace = target.space
    for arr in relation:
        space = IndexSpace.from_indices(np.asarray(arr, dtype=np.int64))
        if clip:
            space = space & tspace
        elif not space.issubset(tspace):
            raise RegionTreeError("image escapes the target region")
        out.append(space)
    return target.create_partition(name, out)


def preimage_partition(source: Region, name: str,
                       pointers: np.ndarray,
                       through: Partition) -> Partition:
    """Partition ``source`` by the preimage of a pointer field.

    ``pointers[k]`` is the element (in ``through``'s parent) that source
    element ``source.space.indices[k]`` points to; source subregion ``i``
    holds the elements pointing into ``through[i]``.  Disjoint iff
    ``through`` is disjoint.
    """
    pointers = np.asarray(pointers, dtype=np.int64)
    if pointers.shape != (source.space.size,):
        raise RegionTreeError(
            f"pointers shape {pointers.shape} does not match region size "
            f"{source.space.size}")
    indices = source.space.indices
    subs = []
    for sub in through.subregions:
        hit = np.isin(pointers, sub.space.indices)
        subs.append(IndexSpace(indices[hit], trusted=True))
    return source.create_partition(name, subs)


def difference_partition(region: Region, name: str,
                         left: Partition, right: Partition) -> Partition:
    """Pairwise difference of two partitions' subregions.

    ``result[i] = left[i] \\ right[i]``; the canonical use is carving the
    ghost partition out of a zone-view partition:
    ``G = difference(view, owned)``.
    """
    if len(left) != len(right):
        raise RegionTreeError("partition arity mismatch")
    subs = [l.space - r.space for l, r in zip(left, right)]
    return region.create_partition(name, subs)


def intersection_partition(region: Region, name: str,
                           left: Partition, right: Partition) -> Partition:
    """Pairwise intersection: ``result[i] = left[i] ∩ right[i]``."""
    if len(left) != len(right):
        raise RegionTreeError("partition arity mismatch")
    subs = [l.space & r.space for l, r in zip(left, right)]
    return region.create_partition(name, subs)


def union_partition(region: Region, name: str,
                    left: Partition, right: Partition) -> Partition:
    """Pairwise union: ``result[i] = left[i] ∪ right[i]``.

    The zone-view partition of a mesh is the union of the owned points and
    the ghost points.
    """
    if len(left) != len(right):
        raise RegionTreeError("partition arity mismatch")
    subs = [l.space | r.space for l, r in zip(left, right)]
    return region.create_partition(name, subs)


def equal_partition(region: Region, name: str, pieces: int) -> Partition:
    """Split a region into ``pieces`` nearly equal disjoint blocks (the
    `partition ... equal` operator)."""
    if pieces < 1 or pieces > region.space.size:
        raise RegionTreeError(
            f"cannot split {region.space.size} elements into {pieces}")
    bounds = np.linspace(0, region.space.size, pieces + 1).astype(np.int64)
    indices = region.space.indices
    subs = [IndexSpace(indices[a:b], trusted=True)
            for a, b in zip(bounds, bounds[1:])]
    return region.create_partition(name, subs, disjoint=True, complete=True)


def partition_by_predicate(region: Region, name: str,
                           predicates: Sequence[Callable[[np.ndarray],
                                                         np.ndarray]]
                           ) -> Partition:
    """Partition by vectorized predicates over element indices.

    Each predicate maps the element-index array to a boolean mask;
    subregion ``i`` holds the elements whose predicate ``i`` is true.
    Useful for structured carve-outs (boundaries, halos, stripes).
    """
    indices = region.space.indices
    subs = []
    for pred in predicates:
        mask = np.asarray(pred(indices), dtype=bool)
        if mask.shape != indices.shape:
            raise RegionTreeError("predicate mask shape mismatch")
        subs.append(IndexSpace(indices[mask], trusted=True))
    return region.create_partition(name, subs)
