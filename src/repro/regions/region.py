"""Region nodes of the region tree."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from repro.errors import RegionTreeError
from repro.geometry.index_space import IndexSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.regions.partition import Partition
    from repro.regions.tree import RegionTree


class Region:
    """A named subset of a collection's elements.

    Regions are nodes of a :class:`~repro.regions.tree.RegionTree`: the root
    covers the whole collection; every other region is a subregion of some
    partition.  A region may be further partitioned any number of times
    (the root in Figure 2c carries both the primary and ghost partitions).

    Regions are identified by object identity; ``uid`` gives a stable,
    creation-ordered integer used for deterministic iteration.
    """

    __slots__ = ("tree", "space", "name", "parent_partition", "uid",
                 "depth", "_partitions")

    def __init__(self, tree: "RegionTree", space: IndexSpace, name: str,
                 parent_partition: Optional["Partition"], uid: int) -> None:
        self.tree = tree
        self.space = space
        self.name = name
        self.parent_partition = parent_partition
        self.uid = uid
        self.depth = (0 if parent_partition is None
                      else parent_partition.parent.depth + 1)
        self._partitions: dict[str, "Partition"] = {}

    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        """True for the tree's root region."""
        return self.parent_partition is None

    @property
    def parent(self) -> Optional["Region"]:
        """The parent region (the partitioned region), or None at the root."""
        return None if self.parent_partition is None else self.parent_partition.parent

    @property
    def partitions(self) -> dict[str, "Partition"]:
        """Partitions created on this region, by name."""
        return dict(self._partitions)

    def partition(self, name: str) -> "Partition":
        """Look up a partition of this region by name."""
        try:
            return self._partitions[name]
        except KeyError:
            raise RegionTreeError(
                f"region {self.name!r} has no partition {name!r}; "
                f"known: {sorted(self._partitions)}"
            ) from None

    def create_partition(self, name: str,
                         subspaces: Sequence[IndexSpace],
                         *,
                         disjoint: Optional[bool] = None,
                         complete: Optional[bool] = None) -> "Partition":
        """Partition this region into named subregions.

        Parameters
        ----------
        name:
            Partition name, unique among this region's partitions.
        subspaces:
            One index space per subregion.  Each must be a subset of this
            region's space; they may alias (Figure 2b) and need not cover
            the parent.
        disjoint, complete:
            Declared properties.  When omitted they are *computed*; when
            given they are verified, so a program can never lie to the
            analysis (a disjointness lie would break every algorithm).
        """
        from repro.regions.partition import Partition  # local: cycle guard

        if name in self._partitions:
            raise RegionTreeError(
                f"region {self.name!r} already has a partition {name!r}")
        if not subspaces:
            raise RegionTreeError("partition requires at least one subregion")
        for i, sub in enumerate(subspaces):
            if not sub.issubset(self.space):
                raise RegionTreeError(
                    f"subregion {i} of partition {name!r} is not a subset "
                    f"of region {self.name!r}")
        part = Partition._create(self, name, list(subspaces),
                                 disjoint=disjoint, complete=complete)
        self._partitions[name] = part
        return part

    # ------------------------------------------------------------------
    def path_from_root(self) -> list["Region"]:
        """Regions from the root down to (and including) this one."""
        path: list[Region] = []
        node: Optional[Region] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def descendants(self) -> Iterator["Region"]:
        """All regions strictly below this one (pre-order)."""
        for part in self._partitions.values():
            for sub in part.subregions:
                yield sub
                yield from sub.descendants()

    def overlaps(self, other: "Region") -> bool:
        """Whether the two regions share any element."""
        return self.space.overlaps(other.space)

    def __repr__(self) -> str:
        return f"Region({self.name!r}, size={self.space.size})"
