"""Partitions: named arrays of subregions (paper section 2)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.errors import RegionTreeError
from repro.geometry.index_space import IndexSpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.regions.region import Region


class Partition:
    """An array of subregions of a parent region.

    The two properties below drive every acceleration decision in the
    coherence algorithms:

    * ``disjoint`` — pairwise-disjoint subregions.  The optimized painter's
      algorithm skips composite-view creation between siblings of a
      disjoint partition (section 5.1); ray casting selects a subtree of
      *disjoint and complete* partitions as its BVH (section 7.1).
    * ``complete`` — subregions cover the parent.

    Use :meth:`Region.create_partition` to construct.
    """

    __slots__ = ("parent", "name", "subregions", "disjoint", "complete")

    def __init__(self) -> None:  # pragma: no cover - guarded constructor
        raise RegionTreeError("use Region.create_partition to build partitions")

    @classmethod
    def _create(cls, parent: "Region", name: str,
                subspaces: list[IndexSpace], *,
                disjoint: Optional[bool], complete: Optional[bool]) -> "Partition":
        self = object.__new__(cls)
        self.parent = parent
        self.name = name

        actual_disjoint = _compute_disjoint(subspaces)
        actual_complete = _compute_complete(parent.space, subspaces)
        if disjoint is not None and disjoint != actual_disjoint:
            raise RegionTreeError(
                f"partition {name!r} declared disjoint={disjoint} but "
                f"actually disjoint={actual_disjoint}")
        if complete is not None and complete != actual_complete:
            raise RegionTreeError(
                f"partition {name!r} declared complete={complete} but "
                f"actually complete={actual_complete}")
        self.disjoint = actual_disjoint
        self.complete = actual_complete

        tree = parent.tree
        self.subregions = [
            tree._new_region(space, f"{parent.name}.{name}[{i}]", self)
            for i, space in enumerate(subspaces)
        ]
        return self

    # ------------------------------------------------------------------
    @property
    def is_aliased(self) -> bool:
        """True when some element belongs to more than one subregion."""
        return not self.disjoint

    def __getitem__(self, index: int) -> "Region":
        return self.subregions[index]

    def __len__(self) -> int:
        return len(self.subregions)

    def __iter__(self) -> Iterator["Region"]:
        return iter(self.subregions)

    def subregions_overlapping(self, space: IndexSpace) -> list["Region"]:
        """Subregions whose space intersects ``space``."""
        return [r for r in self.subregions if r.space.overlaps(space)]

    def __repr__(self) -> str:
        props = []
        props.append("disjoint" if self.disjoint else "aliased")
        props.append("complete" if self.complete else "incomplete")
        return (f"Partition({self.name!r}, n={len(self.subregions)}, "
                f"{'+'.join(props)})")


def _compute_disjoint(subspaces: list[IndexSpace]) -> bool:
    """Pairwise disjointness via one sort of all elements."""
    total = sum(s.size for s in subspaces)
    if total == 0:
        return True
    merged = np.concatenate([s.indices for s in subspaces if s.size])
    return np.unique(merged).size == merged.size


def _compute_complete(parent: IndexSpace, subspaces: list[IndexSpace]) -> bool:
    """Whether the subregions cover the parent."""
    union = IndexSpace.union_all(list(subspaces))
    return parent.issubset(union)
