"""Privileges and the interference relation (paper section 4).

Each region argument of a task carries one privilege:

* ``READ`` — the task only observes values,
* ``READ_WRITE`` — the task may overwrite values (fully opaque in the
  visibility analogy of section 3.1),
* ``reduce(f)`` — the task folds contributions with operator ``f``
  (partially transparent).

Two privileges *interfere* when tasks holding them on overlapping data may
not be reordered.  The only non-interfering combinations are read/read and
reduce_f/reduce_f with the **same** operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.errors import PrivilegeError
from repro.reductions import ReductionOp, get_reduction


class PrivilegeKind(Enum):
    """The three access kinds of the model."""

    READ = "read"
    READ_WRITE = "read-write"
    REDUCE = "reduce"


@dataclass(frozen=True)
class Privilege:
    """A privilege: kind plus, for reductions, the operator.

    Use the module-level constants :data:`READ` / :data:`READ_WRITE` and the
    factory :func:`reduce` rather than constructing directly.
    """

    kind: PrivilegeKind
    redop: Optional[ReductionOp] = None
    #: Kind flags, precomputed: the interference test runs once per
    #: history entry per analysis, so these must be attribute loads, not
    #: property calls.
    is_read: bool = field(init=False, compare=False, default=False)
    is_write: bool = field(init=False, compare=False, default=False)
    is_reduce: bool = field(init=False, compare=False, default=False)

    def __post_init__(self) -> None:
        if self.kind is PrivilegeKind.REDUCE and self.redop is None:
            raise PrivilegeError("reduce privilege requires a reduction operator")
        if self.kind is not PrivilegeKind.REDUCE and self.redop is not None:
            raise PrivilegeError(f"{self.kind.value} privilege takes no operator")
        object.__setattr__(self, "is_read",
                           self.kind is PrivilegeKind.READ)
        object.__setattr__(self, "is_write",
                           self.kind is PrivilegeKind.READ_WRITE)
        object.__setattr__(self, "is_reduce",
                           self.kind is PrivilegeKind.REDUCE)

    def interferes(self, other: "Privilege") -> bool:
        """Whether two tasks with these privileges on overlapping data may
        have a dependence (section 4's interference relation)."""
        if self.is_read and other.is_read:
            return False
        if self.is_reduce and other.is_reduce and self.redop is other.redop:
            return False
        return True

    def __repr__(self) -> str:
        if self.is_reduce:
            assert self.redop is not None
            return f"reduce({self.redop.name})"
        return self.kind.value


READ = Privilege(PrivilegeKind.READ)
"""The plain read privilege (fully transparent)."""

READ_WRITE = Privilege(PrivilegeKind.READ_WRITE)
"""The read-write privilege (fully opaque)."""


def reduce(op: str | ReductionOp) -> Privilege:
    """Build a reduction privilege from an operator or its registry name."""
    if isinstance(op, str):
        op = get_reduction(op)
    return Privilege(PrivilegeKind.REDUCE, op)


def interferes(a: Privilege, b: Privilege) -> bool:
    """Module-level convenience wrapper for :meth:`Privilege.interferes`."""
    return a.interferes(b)
