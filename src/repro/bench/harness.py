"""Experiment runner emitting the artifact's measurement schema.

The paper's artifact (appendix A.4) reports one TSV row per run:

    system  nodes  procs_per_node  rep  init_time  elapsed_time

``system`` is ``<algorithm>_<dcr|nodcr>`` (the artifact's ``neweqcr`` is
our ``raycast``, ``oldeqcr`` is ``warnock``, ``paint`` is the optimized
painter).  The simulator is deterministic, so every rep of a configuration
produces identical times; the rep column is kept for schema compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from repro.apps.base import Application
from repro.machine.costmodel import CostModel
from repro.machine.simulator import SimResult, simulate_app
from repro.machine.topology import MachineSpec
from repro.visibility.meter import PhaseProfile

#: The five configurations of section 8's figures, in legend order.
PAPER_CONFIGS: tuple[tuple[str, bool], ...] = (
    ("raycast", True),
    ("raycast", False),
    ("warnock", True),
    ("warnock", False),
    ("tree_painter", False),   # "Paint, No DCR" — predates DCR
)

#: Map from our algorithm names to the artifact's directory names.
ARTIFACT_NAMES = {
    "raycast": "neweqcr",
    "warnock": "oldeqcr",
    "tree_painter": "paint",
    "painter": "paint_naive",
}


@dataclass(frozen=True)
class BenchRow:
    """One TSV row of the artifact schema."""

    system: str
    nodes: int
    procs_per_node: int
    rep: int
    init_time: float
    elapsed_time: float

    def tsv(self) -> str:
        return (f"{self.system}\t{self.nodes}\t{self.procs_per_node}\t"
                f"{self.rep}\t{self.init_time:.6f}\t{self.elapsed_time:.6f}")


def run_sweep(app_factory: Callable[[int], Application],
              node_counts: Sequence[int],
              configs: Sequence[tuple[str, bool]] = PAPER_CONFIGS,
              steady_iterations: int = 3,
              spec: Optional[MachineSpec] = None,
              cost_model: Optional[CostModel] = None
              ) -> dict[tuple[str, int], SimResult]:
    """Run every (config, nodes) cell of one figure's sweep.

    Returns results keyed by (system, nodes); one sweep feeds both the
    initialization figure and the weak-scaling figure of its application.
    """
    out: dict[tuple[str, int], SimResult] = {}
    for nodes in node_counts:
        for algorithm, dcr in configs:
            app = app_factory(nodes)
            result = simulate_app(app, algorithm, dcr=dcr,
                                  steady_iterations=steady_iterations,
                                  spec=spec, cost_model=cost_model)
            out[(result.system, nodes)] = result
    return out


def sweep_to_rows(sweep: dict[tuple[str, int], SimResult],
                  reps: int = 5) -> list[BenchRow]:
    """Expand a sweep into artifact-schema rows.

    The simulator is deterministic; the paper runs 5 reps per job, so we
    emit ``reps`` identical rows per cell to match the schema exactly.
    """
    rows: list[BenchRow] = []
    for (system, nodes), result in sorted(sweep.items()):
        algo, dcr = system.rsplit("_", 1)
        artifact_system = f"{ARTIFACT_NAMES.get(algo, algo)}_{dcr}"
        for rep in range(reps):
            rows.append(BenchRow(
                system=artifact_system, nodes=nodes, procs_per_node=1,
                rep=rep, init_time=result.init_time,
                elapsed_time=result.elapsed_time))
    return rows


def render_rows(rows: Sequence[BenchRow]) -> str:
    """Render rows as the artifact's parse_results.py TSV table."""
    header = "system\tnodes\tprocs_per_node\trep\tinit_time\telapsed_time"
    return "\n".join([header, *(r.tsv() for r in rows)])


# ----------------------------------------------------------------------
# machine-readable bench documents (BENCH_<bench>.json) and environment
# ----------------------------------------------------------------------
#: Version tag carried in every bench JSON document; checked by
#: :mod:`repro.bench.gate`.
BENCH_SCHEMA_ID = "repro.bench/1"


def bench_environment() -> dict:
    """Provenance block stamped into every bench document: interpreter,
    platform, numpy version, CPU count, and (best effort) git commit —
    enough to judge whether two documents are comparable at all."""
    import os
    import platform
    import subprocess

    import numpy

    env = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy.__version__,
        "cpus": os.cpu_count() or 1,
    }
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
            cwd=Path(__file__).resolve().parent)
        if proc.returncode == 0 and proc.stdout.strip():
            env["commit"] = proc.stdout.strip()
    except OSError:  # pragma: no cover - no git in the environment
        pass
    return env


def write_bench_json(path, bench: str,
                     rows: Sequence[Mapping[str, object]],
                     extra: Optional[Mapping[str, object]] = None) -> Path:
    """Write one ``BENCH_<bench>.json`` document.

    ``rows`` is a list of dicts, each carrying a unique ``name`` plus
    numeric metrics (``seconds`` is the one the gate compares).  The
    document embeds :func:`bench_environment` so CI artifacts are
    self-describing; ``extra`` merges additional top-level keys.
    """
    import json

    names = [row.get("name") for row in rows]
    if None in names:
        raise ValueError("every bench row needs a 'name'")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate bench row names: {names}")
    doc: dict = {
        "schema": BENCH_SCHEMA_ID,
        "bench": bench,
        "environment": bench_environment(),
        "rows": [dict(row) for row in rows],
    }
    if extra:
        doc.update(extra)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


# ----------------------------------------------------------------------
# parallel shard-analysis benchmark (honest wall clock, not simulated)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParallelAnalysisRow:
    """One backend × shard-count cell of the parallel-analysis bench.

    ``analyze_time``/``verify_time`` are wall-clock seconds from the
    :class:`PhaseProfile`; ``shard_time_max`` is the slowest single
    shard's analysis window; ``ship_bytes`` counts pickled payload moved
    to worker processes; ``speedup`` is serial analyze time over this
    backend's (1.0 for the serial row itself).
    """

    backend: str
    shards: int
    tasks: int
    analyze_time: float
    shard_time_max: float
    verify_time: float
    ship_bytes: int
    speedup: float
    fingerprint: str

    def tsv(self) -> str:
        return (f"{self.backend}\t{self.shards}\t{self.tasks}\t"
                f"{self.analyze_time:.6f}\t{self.shard_time_max:.6f}\t"
                f"{self.verify_time:.6f}\t{self.ship_bytes}\t"
                f"{self.speedup:.3f}\t{self.fingerprint[:16]}")


def run_parallel_analysis(app_factory: Callable[[int], Application],
                          shards: int = 8,
                          backends: Sequence[str] = ("serial", "thread",
                                                     "process"),
                          steady_iterations: int = 3,
                          algorithm: str = "raycast"
                          ) -> list[ParallelAnalysisRow]:
    """Benchmark the replicated shard analysis across execution backends.

    Runs the same application stream through every backend at the given
    shard count, with deterministic-merge verification on; returns one
    row per backend, including the cross-checked analysis fingerprint
    (all rows must agree — the caller should assert it).
    """
    from repro.distributed import ShardedRuntime
    from repro.runtime.task import TaskStream

    rows: list[ParallelAnalysisRow] = []
    serial_time: Optional[float] = None
    for backend in backends:
        app = app_factory(shards)
        stream = TaskStream()
        stream.extend_from(app.init_stream())
        for _ in range(steady_iterations):
            stream.extend_from(app.iteration_stream())
        profile = PhaseProfile()
        with ShardedRuntime(app.tree, app.initial, shards=shards,
                            algorithm=algorithm, backend=backend,
                            profile=profile) as srt:
            reports = srt.analyze(stream)
        analyze = profile.stat("analyze").seconds
        if serial_time is None:
            serial_time = analyze
        rows.append(ParallelAnalysisRow(
            backend=backend, shards=shards, tasks=len(stream),
            analyze_time=analyze,
            shard_time_max=max(r.seconds for r in reports),
            verify_time=profile.stat("verify").seconds,
            ship_bytes=profile.stat("ship").bytes,
            speedup=serial_time / analyze if analyze > 0 else float("inf"),
            fingerprint=reports[0].fingerprint))
    return rows


def render_parallel_rows(rows: Sequence[ParallelAnalysisRow]) -> str:
    """TSV table for the parallel-analysis bench (one row per backend)."""
    header = ("backend\tshards\ttasks\tanalyze_time\tshard_time_max\t"
              "verify_time\tship_bytes\tspeedup\tfingerprint")
    return "\n".join([header, *(r.tsv() for r in rows)])


# ----------------------------------------------------------------------
# chaos-recovery benchmark (seeded fault injection, honest wall clock)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosRow:
    """One fault-rate cell of the chaos-recovery bench.

    ``faults`` counts injected faults the supervisor detected;
    ``recovery_time`` is wall-clock seconds spent inside recovery
    (respawn + restore + replay); ``replayed_tasks`` counts task
    launches re-analyzed during replay; ``matches_baseline`` records
    whether the recovered run reproduced the fault-free fingerprint
    (the whole point — it must always be 1).
    """

    fault_rate: float
    shards: int
    tasks: int
    faults: int
    retries: int
    respawns: int
    replayed_tasks: int
    workers_lost: int
    recovery_time: float
    analyze_time: float
    matches_baseline: int
    fingerprint: str

    def tsv(self) -> str:
        return (f"{self.fault_rate:.3f}\t{self.shards}\t{self.tasks}\t"
                f"{self.faults}\t{self.retries}\t{self.respawns}\t"
                f"{self.replayed_tasks}\t{self.workers_lost}\t"
                f"{self.recovery_time:.6f}\t{self.analyze_time:.6f}\t"
                f"{self.matches_baseline}\t{self.fingerprint[:16]}")


def run_chaos_bench(app_factory: Callable[[int], Application],
                    shards: int = 4,
                    fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
                    seed: int = 7,
                    steady_iterations: int = 3,
                    algorithm: str = "raycast",
                    max_workers: Optional[int] = None,
                    recv_timeout: float = 2.0,
                    checkpoint_interval: int = 2
                    ) -> list[ChaosRow]:
    """Benchmark supervised recovery under seeded fault injection.

    Analyzes the same application stream — one iteration window at a
    time, so checkpoints and replay have stream boundaries to work with —
    once per fault rate on the process backend, and compares every
    recovered fingerprint against the fault-free (rate 0) baseline.
    """
    from repro.distributed import FaultPlan, ShardedRuntime
    from repro.runtime.task import TaskStream

    rows: list[ChaosRow] = []
    baseline: Optional[str] = None
    for rate in fault_rates:
        app = app_factory(shards)
        windows = [app.init_stream()]
        windows += [app.iteration_stream() for _ in range(steady_iterations)]
        faults = FaultPlan(seed=seed, rate=rate)
        profile = PhaseProfile()
        tasks = 0
        with ShardedRuntime(app.tree, app.initial, shards=shards,
                            algorithm=algorithm, backend="process",
                            max_workers=max_workers, profile=profile,
                            faults=faults, recv_timeout=recv_timeout,
                            checkpoint_interval=checkpoint_interval) as srt:
            for window in windows:
                stream = TaskStream()
                stream.extend_from(window)
                tasks += len(stream)
                reports = srt.analyze(stream)
            recovery = srt.recovery.copy()
        fingerprint = reports[0].fingerprint
        if baseline is None:
            baseline = fingerprint
        rows.append(ChaosRow(
            fault_rate=rate, shards=shards, tasks=tasks,
            faults=recovery.total_faults, retries=recovery.retries,
            respawns=recovery.respawns,
            replayed_tasks=recovery.replayed_tasks,
            workers_lost=recovery.workers_lost,
            recovery_time=recovery.recovery_seconds,
            analyze_time=profile.stat("analyze").seconds,
            matches_baseline=int(fingerprint == baseline),
            fingerprint=fingerprint))
    return rows


def render_chaos_rows(rows: Sequence[ChaosRow]) -> str:
    """TSV table for the chaos-recovery bench (one row per fault rate)."""
    header = ("fault_rate\tshards\ttasks\tfaults\tretries\trespawns\t"
              "replayed_tasks\tworkers_lost\trecovery_time\tanalyze_time\t"
              "matches_baseline\tfingerprint")
    return "\n".join([header, *(r.tsv() for r in rows)])
