"""Terminal plots of benchmark series.

The paper's figures are log-linear plots of five configurations across
machine sizes; :func:`ascii_plot` renders the same series as a text chart
so `python -m repro figure --plot` and the markdown report can show the
*shape* without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

#: Per-series glyphs, in legend order.
GLYPHS = "RrWwPzabcdef"

#: Glyph drawn where two series land on the same cell.
COLLISION = "+"


def _log2(x: float) -> float:
    return math.log2(max(x, 1e-300))


def _log10(x: float) -> float:
    return math.log10(max(x, 1e-300))


def ascii_plot(series: Mapping[str, Sequence[tuple[float, float]]],
               *, width: int = 64, height: int = 16,
               log_x: bool = True, log_y: bool = True,
               title: str = "") -> str:
    """Render named (x, y) series as an ASCII chart with a legend.

    ``log_x`` suits the paper's power-of-two node counts; ``log_y`` suits
    quantities spanning decades (init times, throughput).  Empty input
    yields a stub chart rather than an error.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    lines: list[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no data)")
        return "\n".join(lines)

    fx = _log2 if log_x else float
    fy = _log10 if log_y else float
    xs = [fx(x) for x, _ in points]
    ys = [fy(y) for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = round((fx(x) - x_lo) / x_span * (width - 1))
        row = round((fy(y) - y_lo) / y_span * (height - 1))
        return (height - 1 - row), col

    for k, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS[k % len(GLYPHS)]
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = COLLISION if grid[r][c] not in (" ", glyph) \
                else glyph

    top = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    bottom = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    margin = max(len(top), len(bottom)) + 1
    for i, row in enumerate(grid):
        label = top if i == 0 else bottom if i == height - 1 else ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    left = f"{(2 ** x_lo if log_x else x_lo):.6g}"
    right = f"{(2 ** x_hi if log_x else x_hi):.6g}"
    axis = " " * margin + " +" + "-" * width
    lines.append(axis)
    lines.append(" " * margin + f"  {left}" +
                 f"{right:>{max(1, width - len(left))}}")
    legend = "   ".join(f"{GLYPHS[k % len(GLYPHS)]}={name}"
                        for k, name in enumerate(series))
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def plot_figure(spec, series: Mapping[str, Sequence[tuple[float, float]]]
                ) -> str:
    """Plot one figure's series with the paper's axes and legend order."""
    from repro.bench.figures import SERIES_ORDER

    ordered = {name: series[name] for name in SERIES_ORDER
               if name in series}
    for name in series:
        ordered.setdefault(name, series[name])
    return ascii_plot(ordered, title=f"{spec.figure}: {spec.title} "
                                     f"[{spec.unit}]  (log-log)")
