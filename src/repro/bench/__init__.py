"""Benchmark harness: regenerate the paper's figures and tables.

* :mod:`repro.bench.harness` — run one application across machine scales
  and configurations, producing rows in the artifact's TSV schema
  (``system nodes procs_per_node rep init_time elapsed_time``).
* :mod:`repro.bench.figures` — the six figure definitions of section 8
  (Figures 12–17) plus shape checks that encode who-wins orderings.
"""

from repro.bench.harness import (BenchRow, render_rows, run_sweep,
                                 sweep_to_rows)
from repro.bench.figures import (FIGURES, FigureSpec, figure_series,
                                 render_series)

__all__ = ["BenchRow", "FIGURES", "FigureSpec", "figure_series",
           "render_rows", "render_series", "run_sweep", "sweep_to_rows"]
