"""Markdown report generation from benchmark result tables.

``pytest benchmarks/ --benchmark-only`` writes one TSV per figure/ablation
under ``benchmarks/results/``; this module assembles them into a single
markdown report (the machine-generated companion to EXPERIMENTS.md),
available via ``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

#: Render order and captions for known result files.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("fig12.tsv", "Figure 12 — Stencil initialization time (s)"),
    ("fig13.tsv", "Figure 13 — Circuit initialization time (s)"),
    ("fig14.tsv", "Figure 14 — Pennant initialization time (s)"),
    ("fig15.tsv", "Figure 15 — Stencil weak scaling (points/s per node)"),
    ("fig16.tsv", "Figure 16 — Circuit weak scaling (wires/s per node)"),
    ("fig17.tsv", "Figure 17 — Pennant weak scaling (zones/s per node)"),
    ("artifact_a4_stencil.tsv", "Artifact A.4 — Stencil sample table"),
    ("artifact_a4_circuit.tsv", "Artifact A.4 — Circuit sample table"),
    ("artifact_a4_pennant.tsv", "Artifact A.4 — Pennant sample table"),
    ("ablation_eqsets.tsv", "Ablation — equivalence-set counts"),
    ("ablation_paint_scan.tsv", "Ablation — painter scan growth"),
    ("ablation_precision.tsv", "Ablation — dependence-graph precision"),
    ("ablation_tracing.tsv", "Ablation — dynamic tracing"),
    ("ablation_memo.tsv", "Ablation — §6.1 equivalence-set memoization"),
    ("ablation_comm.tsv", "Ablation — implicit cross-shard communication"),
    ("ablation_zbuffer.tsv", "Ablation — z-buffer precision/distribution trade"),
    ("parallel_analysis.tsv",
     "Parallel shard analysis — backend wall clock (analysis/merge/ship)"),
)


def tsv_to_markdown(text: str) -> str:
    """Convert one result TSV (optionally with ``#`` comment lines) into a
    markdown table."""
    comments: list[str] = []
    rows: list[list[str]] = []
    for line in text.strip().splitlines():
        if line.startswith("#"):
            comments.append(line.lstrip("# ").rstrip())
        elif line.strip():
            rows.append(line.split("\t"))
    out: list[str] = []
    for comment in comments:
        out.append(f"*{comment}*")
        out.append("")
    if rows:
        header, *body = rows
        out.append("| " + " | ".join(header) + " |")
        out.append("|" + "---|" * len(header))
        for row in body:
            out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def generate_report(results_dir: Path | str,
                    title: str = "Benchmark report") -> str:
    """Assemble every known result table into one markdown document.

    Unknown ``.tsv`` files in the directory are appended under their file
    names so nothing silently disappears.  Raises ``FileNotFoundError``
    when the directory does not exist.
    """
    results = Path(results_dir)
    if not results.is_dir():
        raise FileNotFoundError(
            f"no benchmark results at {results} — run "
            "`pytest benchmarks/ --benchmark-only` first")
    known = {name for name, _ in SECTIONS}
    parts: list[str] = [f"# {title}", ""]
    found = 0
    for name, caption in SECTIONS:
        path = results / name
        if not path.exists():
            continue
        found += 1
        parts.append(f"## {caption}")
        parts.append("")
        parts.append(tsv_to_markdown(path.read_text()))
        parts.append("")
    for path in sorted(results.glob("*.tsv")):
        if path.name in known:
            continue
        found += 1
        parts.append(f"## {path.name}")
        parts.append("")
        parts.append(tsv_to_markdown(path.read_text()))
        parts.append("")
    if found == 0:
        parts.append("*(no result tables found)*")
    return "\n".join(parts).rstrip() + "\n"
