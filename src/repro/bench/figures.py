"""The six figures of section 8, as executable specifications.

Each :class:`FigureSpec` records what the paper plots (which application,
which metric, which unit scale) and the qualitative *shape claims* the
text makes about it; :func:`check_shape` asserts those claims against a
sweep so the benchmark suite fails loudly if a change to the algorithms
breaks the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.apps import CircuitApp, PennantApp, StencilApp
from repro.apps.base import Application
from repro.machine.simulator import SimResult

#: The machine scales of section 8 (Piz Daint, 1–512 nodes).
PAPER_NODE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


@dataclass(frozen=True)
class FigureSpec:
    """One of Figures 12–17."""

    figure: str          # "fig12" ... "fig17"
    title: str
    app: str             # stencil / circuit / pennant
    metric: str          # "init" or "weak"
    unit: str            # y-axis unit label
    unit_scale: float    # divide throughput by this for the paper's axis
    app_factory: Callable[[int], Application]


def _stencil(nodes: int) -> Application:
    return StencilApp(pieces=nodes, tile=8)


def _circuit(nodes: int) -> Application:
    return CircuitApp(pieces=nodes, nodes_per_piece=24, wires_per_piece=32)


def _pennant(nodes: int) -> Application:
    return PennantApp(pieces=nodes, zones_x=6, zones_y=6)


FIGURES: dict[str, FigureSpec] = {
    "fig12": FigureSpec("fig12", "Stencil initialization time", "stencil",
                        "init", "seconds", 1.0, _stencil),
    "fig13": FigureSpec("fig13", "Circuit initialization time", "circuit",
                        "init", "seconds", 1.0, _circuit),
    "fig14": FigureSpec("fig14", "Pennant initialization time", "pennant",
                        "init", "seconds", 1.0, _pennant),
    "fig15": FigureSpec("fig15", "Stencil weak scaling", "stencil",
                        "weak", "points/s per node", 1.0, _stencil),
    "fig16": FigureSpec("fig16", "Circuit weak scaling", "circuit",
                        "weak", "wires/s per node", 1.0, _circuit),
    "fig17": FigureSpec("fig17", "Pennant weak scaling", "pennant",
                        "weak", "zones/s per node", 1.0, _pennant),
}

#: Legend order used in the paper's plots.
SERIES_ORDER = ("raycast_dcr", "raycast_nodcr", "warnock_dcr",
                "warnock_nodcr", "tree_painter_nodcr")


def figure_series(spec: FigureSpec,
                  sweep: dict[tuple[str, int], SimResult]
                  ) -> dict[str, list[tuple[int, float]]]:
    """Extract one figure's plotted series from its application's sweep."""
    series: dict[str, list[tuple[int, float]]] = {}
    for (system, nodes), result in sorted(sweep.items()):
        if spec.metric == "init":
            value = result.init_time
        else:
            value = result.throughput_per_node / spec.unit_scale
        series.setdefault(system, []).append((nodes, value))
    return {name: sorted(pts) for name, pts in series.items()}


def render_series(spec: FigureSpec,
                  series: dict[str, list[tuple[int, float]]]) -> str:
    """Render one figure as an aligned text table (nodes × series)."""
    systems = [s for s in SERIES_ORDER if s in series] + \
        sorted(set(series) - set(SERIES_ORDER))
    nodes = sorted({n for pts in series.values() for n, _ in pts})
    lines = [f"# {spec.figure}: {spec.title} [{spec.unit}]"]
    lines.append("nodes\t" + "\t".join(systems))
    for n in nodes:
        cells = []
        for s in systems:
            val = dict(series[s]).get(n)
            cells.append("-" if val is None else f"{val:.6g}")
        lines.append(f"{n}\t" + "\t".join(cells))
    return "\n".join(lines)


def check_shape(spec: FigureSpec,
                sweep: dict[tuple[str, int], SimResult]) -> list[str]:
    """Verify the qualitative claims section 8 makes about this figure.

    Returns a list of violated claims (empty = reproduction holds).
    """
    series = figure_series(spec, sweep)
    problems: list[str] = []
    largest = max(n for pts in series.values() for n, _ in pts)

    def at(system: str, nodes: int) -> float:
        return dict(series[system])[nodes]

    if spec.metric == "init":
        # ray casting "easily performs the best"
        for other in ("warnock_dcr", "warnock_nodcr", "tree_painter_nodcr"):
            if other in series and at("raycast_dcr", largest) > \
                    at(other, largest) * 1.05:
                problems.append(
                    f"raycast_dcr init not best at {largest} nodes "
                    f"(vs {other})")
        # Warnock's eq-set growth: worse than raycast like-for-like
        for suffix in ("dcr", "nodcr"):
            w, r = f"warnock_{suffix}", f"raycast_{suffix}"
            if w in series and r in series and at(w, largest) < at(r, largest):
                problems.append(
                    f"warnock_{suffix} init unexpectedly beats raycast "
                    f"at {largest} nodes")
        # the painter's centralized composite views: worst at scale
        if "tree_painter_nodcr" in series and largest >= 64:
            if at("tree_painter_nodcr", largest) < \
                    at("warnock_nodcr", largest):
                problems.append(
                    f"painter init unexpectedly beats warnock at {largest}")
    else:
        # weak scaling: raycast ≥ warnock ≥ painter, like-for-like
        for suffix in ("dcr", "nodcr"):
            w, r = f"warnock_{suffix}", f"raycast_{suffix}"
            if w in series and r in series:
                if at(r, largest) < at(w, largest) * 0.95:
                    problems.append(
                        f"raycast_{suffix} throughput below warnock at "
                        f"{largest} nodes")
        if "tree_painter_nodcr" in series and largest >= 32:
            if at("tree_painter_nodcr", largest) > \
                    at("warnock_nodcr", largest):
                problems.append(
                    f"painter throughput unexpectedly beats warnock at "
                    f"{largest}")
        # DCR must help at scale
        for algo in ("raycast", "warnock"):
            d, n = f"{algo}_dcr", f"{algo}_nodcr"
            if d in series and n in series and largest >= 32:
                if at(d, largest) < at(n, largest):
                    problems.append(f"DCR does not help {algo} at {largest}")
    return problems
