"""Soft benchmark gate: compare a ``BENCH_<bench>.json`` document
against a committed baseline.

Usage (CI runs this after the micro-analysis smoke)::

    python -m repro.bench.gate BENCH_micro_analysis.json \
        benchmarks/baseline.json [--metric seconds] \
        [--warn 0.10] [--fail 2.0]

Rows are matched by ``name``; for each pair the gate computes
``current / baseline`` on the chosen metric.  Ratios within
``1 + warn`` pass, ratios above it *warn* (printed, exit 0 — timing
noise across machines is expected), and ratios above ``fail`` fail the
gate (exit 1 — a 2x regression is a real one even on a noisy runner).
Rows new in the current document are reported and pass; rows missing
from it warn (a benchmark silently disappearing is how regressions
hide).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.harness import BENCH_SCHEMA_ID


@dataclass(frozen=True)
class GateRow:
    """One compared benchmark row."""

    name: str
    current: Optional[float]
    baseline: Optional[float]
    ratio: Optional[float]
    status: str  # "ok" | "warn" | "fail" | "new" | "missing"


def load_bench(path) -> dict:
    """Load and schema-check one bench JSON document."""
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: bench document must be a dict")
    if doc.get("schema") != BENCH_SCHEMA_ID:
        raise ValueError(f"{path}: unknown bench schema "
                         f"{doc.get('schema')!r} "
                         f"(expected {BENCH_SCHEMA_ID!r})")
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: bench document missing 'rows' list")
    for row in rows:
        if not isinstance(row, dict) or "name" not in row:
            raise ValueError(f"{path}: every bench row needs a 'name'")
    return doc


def subset_rows(rows: Sequence[dict],
                subsets: Optional[Sequence[str]]) -> list[dict]:
    """Filter rows to those whose name starts with any given prefix.

    ``None``/empty keeps everything.  This is what lets one committed
    ``baseline.json`` hold rows from several benches (micro-analysis,
    service load, ...) while each CI job gates only its own slice —
    without the other slices showing up as spurious ``missing`` rows.
    """
    if not subsets:
        return list(rows)
    return [row for row in rows
            if any(str(row["name"]).startswith(p) for p in subsets)]


def compare(current: dict, baseline: dict, metric: str = "seconds",
            warn: float = 0.10, fail: float = 2.0,
            subsets: Optional[Sequence[str]] = None) -> list[GateRow]:
    """Match rows by name and classify each ratio.

    ``warn`` is the tolerated *relative* slowdown (0.10 ⇒ warn above
    1.10x); ``fail`` is the absolute ratio that fails the gate;
    ``subsets`` restricts both documents via :func:`subset_rows`.
    """
    cur_rows = {row["name"]: row
                for row in subset_rows(current["rows"], subsets)}
    base_rows = {row["name"]: row
                 for row in subset_rows(baseline["rows"], subsets)}
    out: list[GateRow] = []
    for name in sorted(set(cur_rows) | set(base_rows)):
        cur = cur_rows.get(name)
        base = base_rows.get(name)
        if base is None:
            out.append(GateRow(name, float(cur[metric]), None, None, "new"))
            continue
        if cur is None:
            out.append(GateRow(name, None, float(base[metric]), None,
                               "missing"))
            continue
        cur_v = float(cur[metric])
        base_v = float(base[metric])
        ratio = cur_v / base_v if base_v > 0 else float("inf")
        if ratio > fail:
            status = "fail"
        elif ratio > 1.0 + warn:
            status = "warn"
        else:
            status = "ok"
        out.append(GateRow(name, cur_v, base_v, ratio, status))
    return out


def render(rows: Sequence[GateRow], metric: str = "seconds") -> str:
    """Aligned gate table."""
    table = [("benchmark", f"current {metric}", f"baseline {metric}",
              "ratio", "status")]
    for row in rows:
        table.append((
            row.name,
            "-" if row.current is None else f"{row.current:.6f}",
            "-" if row.baseline is None else f"{row.baseline:.6f}",
            "-" if row.ratio is None else f"{row.ratio:.2f}x",
            row.status.upper()))
    widths = [max(len(r[k]) for r in table) for k in range(5)]
    return "\n".join(
        "  ".join(col.ljust(w) if k == 0 else col.rjust(w)
                  for k, (col, w) in enumerate(zip(row, widths)))
        for row in table)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.gate",
        description="soft benchmark gate: current vs baseline bench JSON")
    parser.add_argument("current", help="BENCH_<bench>.json to check")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--metric", default="seconds",
                        help="row metric to compare (default: seconds)")
    parser.add_argument("--warn", type=float, default=0.10, metavar="FRAC",
                        help="warn above 1+FRAC slowdown (default 0.10)")
    parser.add_argument("--fail", type=float, default=2.0, metavar="RATIO",
                        help="fail above RATIO slowdown (default 2.0)")
    parser.add_argument("--subset", action="append", default=None,
                        metavar="PREFIX",
                        help="gate only rows whose name starts with "
                             "PREFIX (repeatable); lets one baseline "
                             "file serve several benches")
    args = parser.parse_args(argv)
    try:
        current = load_bench(args.current)
        baseline = load_bench(args.baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = compare(current, baseline, metric=args.metric,
                   warn=args.warn, fail=args.fail, subsets=args.subset)
    if not rows:
        print(f"error: no rows match subset(s) {args.subset}",
              file=sys.stderr)
        return 2
    print(render(rows, metric=args.metric))
    env = current.get("environment", {})
    base_env = baseline.get("environment", {})
    if env.get("platform") != base_env.get("platform"):
        print(f"note: environments differ "
              f"({env.get('platform')} vs {base_env.get('platform')}): "
              f"absolute ratios are advisory")
    warns = [r for r in rows if r.status in ("warn", "missing")]
    fails = [r for r in rows if r.status == "fail"]
    if fails:
        print(f"GATE FAILED: {len(fails)} benchmark(s) regressed beyond "
              f"{args.fail:.1f}x: {[r.name for r in fails]}")
        return 1
    if warns:
        print(f"gate passed with {len(warns)} warning(s): "
              f"{[r.name for r in warns]}")
    else:
        print("gate passed: all benchmarks within "
              f"{1.0 + args.warn:.2f}x of baseline")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
