"""Realm events: first-class, mergeable, poisonable completion handles.

An event is a one-shot boolean that transitions untriggered → triggered
exactly once, possibly carrying *poison* (the operation it represents
failed, or a poisoned precondition cascaded into it).  Consumers register
callbacks that fire exactly once, on or after the trigger, from whichever
thread triggers — the core deferred-execution primitive.

Threading model: a lock per event protects the transition; callbacks fire
outside the lock.  ``wait`` blocks a host thread on a condition variable
(only sensible with a threaded :class:`~repro.realm.runtime.RealmRuntime`).
"""

from __future__ import annotations

import itertools
import threading
from typing import Callable, Iterable, Optional

from repro.errors import ReproError


class RealmError(ReproError):
    """Misuse of the Realm layer (double trigger, wait deadlock...)."""


_event_uid = itertools.count()

# callback signature: poisoned -> None
Callback = Callable[[bool], None]


class Event:
    """A one-shot completion handle.

    Use :meth:`Event.nil` for the pre-triggered no-precondition event and
    :meth:`Event.merge` to combine preconditions.  Events compare by
    identity; ``uid`` is for debugging.
    """

    __slots__ = ("uid", "_lock", "_cond", "_triggered", "_poisoned",
                 "_callbacks")

    def __init__(self) -> None:
        self.uid = next(_event_uid)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._triggered = False
        self._poisoned = False
        self._callbacks: list[Callback] = []

    # ------------------------------------------------------------------
    @staticmethod
    def nil() -> "Event":
        """The pre-triggered, unpoisoned event (Realm's NO_EVENT)."""
        event = Event()
        event._triggered = True
        return event

    @staticmethod
    def merge(events: Iterable["Event"]) -> "Event":
        """An event that triggers when *all* inputs have triggered, poisoned
        iff any input is poisoned (Realm's merge semantics)."""
        events = list(events)
        if not events:
            return Event.nil()
        if len(events) == 1:
            return events[0]
        merged = Event()
        state = {"remaining": len(events), "poisoned": False}
        state_lock = threading.Lock()

        def arm(poisoned: bool) -> None:
            with state_lock:
                if poisoned:
                    state["poisoned"] = True
                state["remaining"] -= 1
                done = state["remaining"] == 0
                poison = state["poisoned"]
            if done:
                merged._trigger(poison)

        for event in events:
            event.add_callback(arm)
        return merged

    # ------------------------------------------------------------------
    def has_triggered(self) -> bool:
        """Whether the event has fired (poisoned or not)."""
        with self._lock:
            return self._triggered

    def is_poisoned(self) -> bool:
        """Whether the event fired poisoned; False while untriggered."""
        with self._lock:
            return self._triggered and self._poisoned

    def add_callback(self, callback: Callback) -> None:
        """Run ``callback(poisoned)`` once, on or after the trigger.

        If the event already fired, the callback runs immediately on the
        calling thread.
        """
        with self._lock:
            if not self._triggered:
                self._callbacks.append(callback)
                return
            poisoned = self._poisoned
        callback(poisoned)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block the calling thread until the trigger; returns the poison
        state.  Raises :class:`RealmError` on timeout."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._triggered,
                                       timeout=timeout):
                raise RealmError(f"timeout waiting on event {self.uid}")
            return self._poisoned

    # ------------------------------------------------------------------
    def _trigger(self, poisoned: bool = False) -> None:
        with self._lock:
            if self._triggered:
                raise RealmError(f"event {self.uid} triggered twice")
            self._triggered = True
            self._poisoned = poisoned
            callbacks = self._callbacks
            self._callbacks = []
            self._cond.notify_all()
        for callback in callbacks:
            callback(poisoned)

    def __repr__(self) -> str:
        state = ("poisoned" if self.is_poisoned()
                 else "triggered" if self.has_triggered() else "pending")
        return f"Event({self.uid}, {state})"


class UserEvent(Event):
    """An event the application triggers explicitly.

    Created through :meth:`RealmRuntime.create_user_event` (or directly);
    trigger exactly once with :meth:`trigger`, optionally poisoned.
    """

    def trigger(self, poisoned: bool = False) -> None:
        """Fire the event (at most once)."""
        self._trigger(poisoned)
