"""Executing analyzed task streams as Realm event graphs.

This is the hand-off the Legion stack performs: the coherence/dependence
analysis (this repository's `visibility` layer) produces a dependence
graph; the runtime lowers it onto Realm by spawning one deferred operation
per task, preconditioned on the **merge of its dependences' completion
events**.  Realm then extracts whatever parallelism the graph allows.

Poison propagation gives failure semantics for free: a task body that
raises poisons its completion event, every transitively dependent task is
skipped (its event poisons too), and *independent* tasks still run —
strictly better than the sequential executor's halt-on-error.
"""

from __future__ import annotations

import threading
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import TaskError
from repro.obs import tracer as obs
from repro.realm.events import Event
from repro.realm.runtime import RealmRuntime
from repro.regions.tree import RegionTree
from repro.runtime.dependence import DependenceGraph
from repro.runtime.task import Task


class RealmExecutor:
    """Run an analyzed task stream on a :class:`RealmRuntime`."""

    def __init__(self, tree: RegionTree,
                 initial: Mapping[str, np.ndarray],
                 runtime: Optional[RealmRuntime] = None) -> None:
        self.tree = tree
        self._owns_runtime = runtime is None
        self.runtime = runtime if runtime is not None else RealmRuntime(4)
        self._fields: dict[str, np.ndarray] = {}
        root_size = tree.root.space.size
        for name in tree.field_space.names:
            if name not in initial:
                raise TaskError(f"missing initial values for field {name!r}")
            values = np.asarray(initial[name])
            if values.shape != (root_size,):
                raise TaskError(
                    f"initial values for {name!r} have shape "
                    f"{values.shape}, expected ({root_size},)")
            self._fields[name] = values.copy()
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task], graph: DependenceGraph,
            timeout: Optional[float] = 60.0) -> dict[int, bool]:
        """Lower the graph to events and execute it.

        Returns a map task id → poisoned (True for tasks that failed or
        were skipped because a dependence failed).
        """
        by_id = {t.task_id: t for t in tasks}
        if set(by_id) != set(graph.task_ids):
            raise TaskError("graph and task list disagree on task ids")

        with obs.span("realm.run", "realm", tasks=len(tasks)):
            completion: dict[int, Event] = {}
            for tid in sorted(by_id):  # program order: deps precede dependents
                deps = graph.dependences_of(tid)
                precondition = Event.merge(
                    [completion[d] for d in sorted(deps)])
                task = by_id[tid]
                completion[tid] = self.runtime.spawn(
                    lambda task=task: self._execute_one(task),
                    wait_on=precondition)

            self.runtime.wait_for_quiescence(timeout=timeout)
        return {tid: event.is_poisoned()
                for tid, event in completion.items()}

    # ------------------------------------------------------------------
    def _execute_one(self, task: Task) -> None:
        with obs.span(task.name, "realm", task_id=task.task_id):
            self._execute_body(task)

    def _execute_body(self, task: Task) -> None:
        root_space = self.tree.root.space
        positions = []
        buffers = []
        with self._state_lock:
            for req in task.requirements:
                pos = root_space.positions_of(req.region.space)
                positions.append(pos)
                if req.privilege.is_reduce:
                    assert req.privilege.redop is not None
                    buf = req.privilege.redop.identity_array(
                        pos.size, self._fields[req.field].dtype)
                else:
                    buf = self._fields[req.field][pos].copy()
                    if req.privilege.is_read:
                        buf.setflags(write=False)
                buffers.append(buf)

        if task.body is not None:
            task.body(*buffers)

        with self._state_lock:
            for req, pos, buf in zip(task.requirements, positions, buffers):
                if req.privilege.is_write:
                    self._fields[req.field][pos] = buf
                elif req.privilege.is_reduce:
                    assert req.privilege.redop is not None
                    current = self._fields[req.field]
                    current[pos] = req.privilege.redop.fold(current[pos], buf)

    # ------------------------------------------------------------------
    def field(self, name: str) -> np.ndarray:
        """Current values of a field over the root region (copy)."""
        with self._state_lock:
            return self._fields[name].copy()

    def fields(self) -> dict[str, np.ndarray]:
        """Snapshot of every field."""
        with self._state_lock:
            return {k: v.copy() for k, v in self._fields.items()}

    def close(self) -> None:
        """Shut the owned runtime down (no-op for shared runtimes)."""
        if self._owns_runtime:
            self.runtime.shutdown()

    def __enter__(self) -> "RealmExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
