"""The Realm runtime: processors executing deferred operations.

``spawn`` defers a Python callable behind an event precondition and
returns its completion event immediately — nothing blocks.  When the
precondition triggers cleanly, the operation is enqueued on a processor
(a worker thread, or the deterministic inline work list when
``num_procs=0``); when it triggers poisoned, the operation is *skipped*
and its completion event fires poisoned (Realm's cascade semantics).  An
operation that raises poisons its completion event instead of crashing a
worker.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional, Sequence

from repro.realm.events import Event, RealmError, UserEvent


class _Operation:
    __slots__ = ("fn", "completion")

    def __init__(self, fn: Callable[[], None], completion: UserEvent) -> None:
        self.fn = fn
        self.completion = completion

    def run(self) -> None:
        try:
            self.fn()
        except BaseException:
            self.completion.trigger(poisoned=True)
        else:
            self.completion.trigger(poisoned=False)


class RealmRuntime:
    """A pool of processors executing event-preconditioned operations.

    Parameters
    ----------
    num_procs:
        Worker threads.  ``0`` selects the deterministic inline mode:
        ready operations run on the thread that made them ready (spawner
        or triggerer), via an explicit work list so deep event chains
        cannot overflow the stack.
    """

    def __init__(self, num_procs: int = 2) -> None:
        if num_procs < 0:
            raise RealmError("num_procs must be >= 0")
        self.num_procs = num_procs
        self._shutdown = False
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._quiescent = threading.Condition(self._pending_lock)
        self._inline_list: list[_Operation] = []
        self._inline_lock = threading.Lock()
        self._inline_running = False
        self._queue: "queue.Queue[Optional[_Operation]]" = queue.Queue()
        self._workers: list[threading.Thread] = []
        for w in range(num_procs):
            thread = threading.Thread(target=self._worker,
                                      name=f"realm-proc-{w}", daemon=True)
            thread.start()
            self._workers.append(thread)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def create_user_event(self) -> UserEvent:
        """A fresh application-triggered event."""
        return UserEvent()

    def spawn(self, fn: Callable[[], None],
              wait_on: Optional[Event] = None) -> Event:
        """Defer ``fn`` behind ``wait_on``; returns its completion event.

        A poisoned precondition skips ``fn`` and poisons the completion.
        """
        if self._shutdown:
            raise RealmError("runtime is shut down")
        completion = UserEvent()
        op = _Operation(fn, completion)
        precondition = wait_on if wait_on is not None else Event.nil()
        with self._pending_lock:
            self._pending += 1
        completion.add_callback(self._op_done)

        def on_ready(poisoned: bool) -> None:
            if poisoned:
                completion.trigger(poisoned=True)
            else:
                self._enqueue(op)

        precondition.add_callback(on_ready)
        return completion

    def merge_events(self, events: Sequence[Event]) -> Event:
        """Convenience wrapper for :meth:`Event.merge`."""
        return Event.merge(events)

    def wait_for_quiescence(self, timeout: Optional[float] = None) -> None:
        """Block until every spawned operation has completed."""
        with self._quiescent:
            if not self._quiescent.wait_for(lambda: self._pending == 0,
                                            timeout=timeout):
                raise RealmError("timeout waiting for quiescence")

    def shutdown(self, timeout: Optional[float] = 30.0) -> None:
        """Drain outstanding work and stop the processors."""
        self.wait_for_quiescence(timeout=timeout)
        self._shutdown = True
        for _ in self._workers:
            self._queue.put(None)
        for thread in self._workers:
            thread.join(timeout=timeout)

    def __enter__(self) -> "RealmRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _op_done(self, poisoned: bool) -> None:
        with self._pending_lock:
            self._pending -= 1
            if self._pending == 0:
                self._quiescent.notify_all()

    def _enqueue(self, op: _Operation) -> None:
        if self.num_procs > 0:
            self._queue.put(op)
            return
        # deterministic inline mode: run via an explicit work list so a
        # chain of trigger→spawn→trigger cannot recurse unboundedly
        with self._inline_lock:
            self._inline_list.append(op)
            if self._inline_running:
                return
            self._inline_running = True
        try:
            while True:
                with self._inline_lock:
                    if not self._inline_list:
                        self._inline_running = False
                        return
                    next_op = self._inline_list.pop(0)
                next_op.run()
        except BaseException:  # pragma: no cover - run() never raises
            with self._inline_lock:
                self._inline_running = False
            raise

    def _worker(self) -> None:
        while True:
            op = self._queue.get()
            if op is None:
                return
            op.run()
