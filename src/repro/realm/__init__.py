"""A miniature Realm: the event-based low-level runtime beneath Legion.

The paper's experiments all run on Realm [Treichler et al., *Realm: An
Event-Based Low-Level Runtime for Distributed Memory Architectures*,
PACT 2014], the deferred-execution substrate Legion compiles its analyzed
task graphs onto.  This package reproduces Realm's core programming
model:

* :class:`~repro.realm.events.Event` — first-class completion handles;
  every operation returns one and can be made to wait on one.  Events
  merge (:meth:`Event.merge`) and *poison*: a failed operation poisons its
  completion event, and poison propagates through everything downstream
  (Realm's fault model).
* :class:`~repro.realm.events.UserEvent` — events triggered explicitly by
  the application.
* :class:`~repro.realm.runtime.RealmRuntime` — processors (worker
  threads) executing deferred operations whose preconditions have
  triggered.  A ``num_procs=0`` runtime is deterministic: operations run
  inline on a work list, which the tests use to exhaustively check event
  semantics.
* :class:`~repro.realm.executor.RealmExecutor` — executes a coherence-
  analyzed task stream by translating the dependence graph into an event
  graph: one deferred task per launch, preconditioned on the merge of its
  dependences' completion events.  This is exactly the hand-off Legion
  performs after the analyses this repository reproduces.
"""

from repro.realm.events import Event, UserEvent
from repro.realm.runtime import RealmRuntime
from repro.realm.executor import RealmExecutor

__all__ = ["Event", "RealmExecutor", "RealmRuntime", "UserEvent"]
