"""The runtime context: Figure 6's ``run_task`` loop made concrete.

A :class:`Runtime` owns one coherence-algorithm instance per field (all
sharing one :class:`~repro.visibility.meter.CostMeter`) and processes task
launches: materialize every region argument, execute the body on the
materialized buffers, commit every argument, and record the reported
dependences in a :class:`~repro.runtime.dependence.DependenceGraph`.

The runtime is the public entry point applications use::

    tree = RegionTree(Extent((64,)), {"x": np.float64})
    part = tree.root.create_partition("P", tiles)
    rt = Runtime(tree, {"x": np.zeros(64)}, algorithm="raycast")
    rt.launch("init", [RegionRequirement(part[0], "x", READ_WRITE)], body)
    values = rt.read_field("x")
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.errors import TaskError
from repro.obs import provenance as prov
from repro.obs import tracer as obs
from repro.privileges import Privilege
from repro.regions.partition import Partition
from repro.regions.tree import RegionTree
from repro.runtime.dependence import DependenceGraph
from repro.runtime.order import PrecedenceOracle, scan_pruning_enabled
from repro.runtime.task import (RegionRequirement, Task, TaskBody,
                                validate_requirements)
from repro.visibility.base import CoherenceAlgorithm, make_algorithm
from repro.visibility.meter import CostMeter, TaskCost


class Runtime:
    """An implicitly-parallel runtime analyzing one region tree.

    Parameters
    ----------
    tree:
        The region tree applications name their data through.
    initial:
        Initial values per field, aligned with the root space.
    algorithm:
        Registry name of the coherence algorithm: ``painter``,
        ``tree_painter``, ``warnock`` or ``raycast`` (the default — the
        algorithm the paper's results put in production).
    meter:
        Optional shared :class:`CostMeter`; created when omitted.
    record_costs:
        When True, keep a per-task :class:`TaskCost` log (used by the
        machine simulator).
    precedence_oracle:
        Opt-in O(1) precedence pruning (see :mod:`repro.runtime.order`):
        the visibility algorithms skip history entries already
        transitively ordered, recording them as ``"transitive"`` prune
        records.  Changes meter counts (fewer intersection tests) and
        prunes redundant edges — transitive closures stay identical.
        ``None`` (the default) defers to the ``REPRO_PRECEDENCE``
        environment default; ``REPRO_NO_PRECEDENCE`` force-disables.
    """

    def __init__(self, tree: RegionTree, initial: Mapping[str, np.ndarray],
                 algorithm: str = "raycast",
                 meter: Optional[CostMeter] = None,
                 record_costs: bool = False,
                 precedence_oracle: Optional[bool] = None) -> None:
        self.tree = tree
        self.algorithm_name = algorithm
        self.meter = meter if meter is not None else CostMeter()
        self._algorithms: dict[str, CoherenceAlgorithm] = {}
        root_size = tree.root.space.size
        for name in tree.field_space.names:
            if name not in initial:
                raise TaskError(f"missing initial values for field {name!r}")
            values = np.asarray(initial[name])
            if values.shape != (root_size,):
                raise TaskError(
                    f"initial values for {name!r} have shape {values.shape}, "
                    f"expected ({root_size},)")
            self._algorithms[name] = make_algorithm(
                algorithm, tree, name, values, self.meter)
        self.graph = DependenceGraph()
        # Order labels are assigned as launch/_launch_traced record each
        # task (graph.add_task); the oracle view is handed to every
        # algorithm only when scan pruning is opted in, because skipping
        # entries changes meter counts.
        self.order: Optional[PrecedenceOracle] = None
        if scan_pruning_enabled(precedence_oracle) \
                and self.graph.order_maintainer is not None:
            self.order = PrecedenceOracle(self.graph.order_maintainer)
            for alg in self._algorithms.values():
                alg.order = self.order
        self._tasks: list[Task] = []
        self._record_costs = record_costs
        self.cost_log: list[TaskCost] = []
        self._tracer = None

    # ------------------------------------------------------------------
    @property
    def tasks(self) -> tuple[Task, ...]:
        """Every launched task, in program order."""
        return tuple(self._tasks)

    @property
    def next_task_id(self) -> int:
        """The id the next launched task will receive.

        Dense and len-aligned in this runtime, but exposed as the single
        allocation authority: the trace recorder rebases dependence
        offsets against *this* (and against launched tasks' actual ids),
        never against ``len(tasks)``, so runtimes whose internal
        operations consume ids stay traceable.
        """
        return len(self._tasks)

    def algorithm_for(self, field: str) -> CoherenceAlgorithm:
        """The coherence-algorithm instance tracking one field."""
        return self._algorithms[field]

    # ------------------------------------------------------------------
    def launch(self, name: str,
               requirements: Sequence[RegionRequirement],
               body: Optional[TaskBody] = None,
               point: Optional[int] = None) -> Task:
        """Launch one task: analyze, execute, commit.

        Returns the recorded :class:`Task`; its dependences are available
        via ``runtime.graph.dependences_of(task.task_id)``.
        """
        requirements = tuple(requirements)
        validate_requirements(requirements, name)
        for req in requirements:
            if req.region.tree is not self.tree:
                raise TaskError(
                    f"task {name!r} names a region from a different tree")
        task_id = self.next_task_id

        self.meter.begin_task()
        deps: set[int] = set()
        buffers: list[np.ndarray] = []
        # One enabled-check for the whole launch; when recording, every
        # materialize/commit gets its own provenance access record.
        led = prov._LEDGER
        recording = led.enabled
        # Task spans carry the task id and (once the scan finishes) the
        # dependence list, so the critical-path analyzer can rebuild the
        # task DAG from a trace file alone.
        with obs.span(name, "task", task_id=task_id) as sp:
            for req in requirements:
                if recording:
                    led.begin_access(task_id, req.field, self.algorithm_name,
                                     req.privilege, req.region.space)
                outcome = self._algorithms[req.field].materialize(
                    req.privilege, req.region)
                if recording:
                    led.end_access()
                deps.update(outcome.dependences)
                buf = outcome.values
                if req.privilege.is_read:
                    buf.setflags(write=False)
                buffers.append(buf)
            sp.set(deps=sorted(deps))

            if body is not None:
                body(*buffers)

            for req, buf in zip(requirements, buffers):
                commit_values = None if req.privilege.is_read else buf
                if recording:
                    led.begin_access(task_id, req.field, self.algorithm_name,
                                     req.privilege, req.region.space,
                                     phase="commit")
                self._algorithms[req.field].commit(
                    req.privilege, req.region, commit_values, task_id)
                if recording:
                    led.end_access(keep_empty=False)
        if self._record_costs:
            self.cost_log.append(self.meter.end_task())

        task = Task(task_id, name, requirements, body, point)
        self._tasks.append(task)
        # records the task and assigns its order label from these deps
        self.graph.add_task(task_id, deps)
        return task

    def index_launch(self, name: str, partition: Partition, field: str,
                     privilege: Privilege,
                     body_factory: Optional[Callable[[int], TaskBody]] = None,
                     extra: Optional[Callable[[int], Sequence[RegionRequirement]]]
                     = None) -> list[Task]:
        """Launch one task per subregion of a partition (Legion-style index
        launch, the ``for i = 1..3 t1(P[i], G[i])`` pattern of Figure 1).

        ``extra(i)`` may supply additional requirements per point task (the
        ghost-region argument); ``body_factory(i)`` supplies each body.
        """
        out: list[Task] = []
        for i, sub in enumerate(partition.subregions):
            reqs: list[RegionRequirement] = [
                RegionRequirement(sub, field, privilege)]
            if extra is not None:
                reqs.extend(extra(i))
            body = None if body_factory is None else body_factory(i)
            out.append(self.launch(f"{name}[{i}]", reqs, body, point=i))
        return out

    # ------------------------------------------------------------------
    def execute_trace(self, name: str, stream,
                      validate: bool = False) -> list[Task]:
        """Run a :class:`TaskStream` under dynamic tracing.

        The first structurally-identical execution runs untraced, the
        second captures the dependence template, and later executions
        replay it, skipping the dependence scans (see
        :mod:`repro.runtime.tracing`).  ``validate=True`` replays with
        full analysis and cross-checks the template.
        """
        from repro.runtime.tracing import TraceRecorder

        if self._tracer is None:
            self._tracer = TraceRecorder(self)
        return self._tracer.execute(name, stream, validate=validate)

    @property
    def tracer(self):
        """The trace registry, if any trace has been executed."""
        return self._tracer

    def _launch_traced(self, template: Task, deps: frozenset[int]) -> Task:
        """Replay one task with memoized dependences (tracing fast path)."""
        task_id = self.next_task_id
        self.meter.begin_task()
        buffers: list[np.ndarray] = []
        led = prov._LEDGER
        recording = led.enabled
        with obs.span(template.name, "task", task_id=task_id,
                      deps=sorted(deps), replayed=True):
            for req in template.requirements:
                if recording:
                    led.begin_access(task_id, req.field, self.algorithm_name,
                                     req.privilege, req.region.space,
                                     phase="replay")
                buf = self._algorithms[req.field].materialize_values(
                    req.privilege, req.region)
                if recording:
                    led.end_access(keep_empty=False)
                if req.privilege.is_read:
                    buf.setflags(write=False)
                buffers.append(buf)
            if template.body is not None:
                template.body(*buffers)
            for req, buf in zip(template.requirements, buffers):
                commit_values = None if req.privilege.is_read else buf
                if recording:
                    led.begin_access(task_id, req.field, self.algorithm_name,
                                     req.privilege, req.region.space,
                                     phase="commit")
                self._algorithms[req.field].commit(
                    req.privilege, req.region, commit_values, task_id)
                if recording:
                    led.end_access(keep_empty=False)
        if self._record_costs:
            self.cost_log.append(self.meter.end_task())
        task = Task(task_id, template.name, template.requirements,
                    template.body, template.point)
        self._tasks.append(task)
        # replayed tasks get order labels too — from the memoized deps
        self.graph.add_task(task_id, deps)
        return task

    # ------------------------------------------------------------------
    def read_field(self, field: str) -> np.ndarray:
        """Coherent values of a field over the whole root region.

        Counts as an observation, not a task: it does not enter the task
        stream (but does exercise the algorithm's materialize path).
        """
        return self._algorithms[field].read_root()

    def replay(self, stream) -> None:
        """Launch every task of a :class:`TaskStream` in order."""
        for task in stream:
            self.launch(task.name, task.requirements, task.body, task.point)

    def __repr__(self) -> str:
        return (f"Runtime(algorithm={self.algorithm_name!r}, "
                f"tasks={len(self._tasks)})")
