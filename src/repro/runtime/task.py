"""Tasks and region requirements (paper section 4).

A task call ``T(P1 R1, ..., Pn Rn)`` names, for each region argument, the
privilege the task holds on it.  The runtime enforces the model's one
restriction on argument aliasing: two region arguments on the same field
must have disjoint domains unless their privileges are non-interfering
(both reads, or both reductions with the same operator) — intra-task
coherence is out of scope (paper footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import TaskError
from repro.privileges import Privilege
from repro.regions.region import Region

#: A task body receives one NumPy buffer per requirement, in declaration
#: order, and mutates them in place.  Read buffers arrive write-protected;
#: reduce buffers arrive identity-filled and the body folds contributions
#: into them.
TaskBody = Callable[..., None]


@dataclass(frozen=True)
class RegionRequirement:
    """One region argument: which elements, which field, which privilege."""

    region: Region
    field: str
    privilege: Privilege

    def __post_init__(self) -> None:
        if self.field not in self.region.tree.field_space:
            raise TaskError(
                f"region tree has no field {self.field!r}; known: "
                f"{self.region.tree.field_space.names}")

    @staticmethod
    def for_fields(region: Region, fields: Sequence[str],
                   privilege: Privilege) -> list["RegionRequirement"]:
        """One requirement per field — Legion's field-set requirements,
        expanded (coherence is tracked per field, so a multi-field
        requirement is exactly this list)."""
        if not fields:
            raise TaskError("for_fields requires at least one field")
        return [RegionRequirement(region, f, privilege) for f in fields]

    def interferes(self, other: "RegionRequirement") -> bool:
        """Whether two requirements could carry a dependence: same field,
        interfering privileges, overlapping domains."""
        if self.field != other.field:
            return False
        if not self.privilege.interferes(other.privilege):
            return False
        return self.region.space.overlaps(other.region.space)

    def __repr__(self) -> str:
        return (f"Req({self.region.name}.{self.field}, "
                f"{self.privilege!r})")


@dataclass(frozen=True)
class Task:
    """A recorded task launch.

    ``task_id`` is assigned by the runtime in program order — the "global
    clock" of section 3.1.
    """

    task_id: int
    name: str
    requirements: tuple[RegionRequirement, ...]
    body: Optional[TaskBody] = None
    #: Index-launch point: which piece of the machine this task belongs to.
    #: Used by the simulator's sharding functor (DCR assigns the analysis of
    #: point ``i`` to shard ``i % nodes``); None for singleton launches.
    point: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.requirements:
            raise TaskError(f"task {self.name!r} has no region requirements")
        validate_requirements(self.requirements, self.name)

    def __repr__(self) -> str:
        reqs = ", ".join(repr(r) for r in self.requirements)
        return f"Task(t{self.task_id} {self.name!r}: {reqs})"


def validate_requirements(requirements: Sequence[RegionRequirement],
                          task_name: str = "<task>") -> None:
    """Enforce the section 4 restriction on intra-task argument aliasing."""
    trees = {r.region.tree for r in requirements}
    if len(trees) > 1:
        raise TaskError(
            f"task {task_name!r} mixes regions from different region trees")
    for i, a in enumerate(requirements):
        for b in requirements[i + 1:]:
            if a.interferes(b):
                raise TaskError(
                    f"task {task_name!r}: arguments {a!r} and {b!r} alias "
                    "with interfering privileges (intra-task coherence is "
                    "not supported)")


class TaskStream:
    """An ordered sequence of task launches, replayable onto any executor.

    Streams decouple *what the application does* from *which algorithm
    analyzes it*: the apps build streams, and tests/benchmarks replay one
    stream through the reference executor and through all coherence
    algorithms, comparing results.
    """

    def __init__(self) -> None:
        self._tasks: list[Task] = []

    def append(self, name: str,
               requirements: Iterable[RegionRequirement],
               body: Optional[TaskBody] = None,
               point: Optional[int] = None) -> Task:
        """Record one launch; ids are assigned densely in program order."""
        task = Task(len(self._tasks), name, tuple(requirements), body, point)
        self._tasks.append(task)
        return task

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, i: int) -> Task:
        return self._tasks[i]

    def extend_from(self, other: "TaskStream") -> None:
        """Append a re-numbered copy of another stream's launches."""
        for task in other:
            self.append(task.name, task.requirements, task.body, task.point)

    def __repr__(self) -> str:
        return f"TaskStream(n={len(self._tasks)})"
