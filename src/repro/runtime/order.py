"""Order maintenance: O(1) precedence queries over the dependence DAG.

Dependence pruning repeatedly asks "does task A already precede task B?"
— and before this module every such query was a BFS over the dependence
graph (``DependenceGraph.ancestors_of``), which makes the soundness
harness and transitive-edge reasoning quadratic-ish on long task streams.
DePa [Westrick, Wang & Acar, *DePa: Simple, Provably Efficient, and
Practical Order Maintenance for Task Parallelism*, PAPERS.md] shows that
fork-join ordering can be maintained with compact per-task labels
answering precedence in O(1).  Our task DAGs are more general than
series-parallel (any earlier task can be a dependence), so the label here
is a DePa-flavoured hybrid:

* ``index`` — position in program order, which for this runtime *is* a
  topological order (every dependence points at a smaller id).  Gives the
  necessary condition ``a.index < b.index`` in one comparison.
* ``level`` — longest-path depth.  Every strict ancestor has a strictly
  smaller level, so ``a.level >= b.level`` rejects in one comparison.
* ``low`` — smallest ancestor index.  ``a.index < b.low`` rejects
  accesses that reach back before anything ``b`` can see.
* ``reach`` — a packed ancestor bitmap (an arbitrary-precision int, one
  bit per earlier task, machine-word parallel).  The exact answer is a
  single shift-and-mask; no graph traversal, ever.

The first three fields answer the common negative queries without
touching the bitmap; the bitmap makes the oracle *exact* on arbitrary
DAGs (where interval-only labellings cannot be).  Maintenance is O(1)
amortized label work per dependence edge (one bitwise OR per edge —
word-parallel over the stream length); queries never walk the graph.

Two cooperating consumers:

* :class:`~repro.runtime.dependence.DependenceGraph` maintains an
  :class:`OrderMaintainer` on ``add_task`` and answers
  ``contains_transitively`` / ``missing_pairs`` from labels instead of
  repeated BFS (pure acceleration — answers are bit-identical, with an
  opt-in differential mode cross-checking both paths).
* :class:`PrecedenceOracle` — the query front-end the visibility
  algorithms use (behind the opt-in ``precedence_oracle`` runtime flag)
  to *skip* history entries already transitively ordered during
  ``scan_dependences``.  Skipping changes meter counts (fewer
  intersection tests) and prunes redundant edges, so it is off by
  default; pruned candidates are recorded as ``"transitive"``
  :class:`~repro.obs.provenance.PruneRecord` entries and hit/miss
  counters publish as ``order.*`` metrics.

Environment knobs (mirroring the geometry fast path's hygiene):

* ``REPRO_NO_PRECEDENCE`` — hard escape hatch: disables label
  maintenance *and* scan pruning everywhere (graphs fall back to BFS).
* ``REPRO_PRECEDENCE`` — turns scan pruning on by default for every
  :class:`~repro.runtime.context.Runtime` (set by ``repro-cli analyze
  --precedence-oracle`` so forked worker processes inherit it).
* ``REPRO_PRECEDENCE_DIFFERENTIAL`` — cross-check every label answer
  against BFS inside the soundness helpers (tests/debugging).
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

#: Hard escape hatch: any truthy value disables label maintenance and
#: scan pruning everywhere.
ENV_DISABLE = "REPRO_NO_PRECEDENCE"

#: Opt-in default for scan pruning (``repro-cli analyze
#: --precedence-oracle`` sets this so worker processes inherit it).
ENV_ENABLE = "REPRO_PRECEDENCE"

#: Cross-check label answers against BFS in the soundness helpers.
ENV_DIFFERENTIAL = "REPRO_PRECEDENCE_DIFFERENTIAL"

_TRUTHY = ("1", "true", "yes", "on")


def _truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def order_maintenance_enabled() -> bool:
    """Whether graphs maintain order labels (default on; pure
    acceleration, bit-identical answers)."""
    return not _truthy(ENV_DISABLE)


def scan_pruning_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the opt-in scan-pruning setting for one runtime.

    ``flag`` is the explicit ``Runtime(precedence_oracle=...)`` argument;
    ``None`` defers to the :data:`ENV_ENABLE` environment default.  The
    :data:`ENV_DISABLE` escape hatch wins over everything.
    """
    if _truthy(ENV_DISABLE):
        return False
    if flag is None:
        return _truthy(ENV_ENABLE)
    return bool(flag)


def differential_enabled() -> bool:
    """Whether the soundness helpers cross-check labels against BFS."""
    return _truthy(ENV_DIFFERENTIAL)


class OrderLabel:
    """Compact order label of one task (see module docstring).

    ``reach`` includes the task's own bit — the closure composes by
    plain bitwise OR: ``reach(t) = bit(t) | OR(reach(d) for d in deps)``.
    """

    __slots__ = ("index", "level", "low", "reach")

    def __init__(self, index: int, level: int, low: int, reach: int) -> None:
        self.index = index
        self.level = level
        self.low = low
        self.reach = reach

    def __repr__(self) -> str:
        return (f"OrderLabel(index={self.index}, level={self.level}, "
                f"low={self.low}, ancestors={bin(self.reach).count('1') - 1})")


class OrderMaintainer:
    """Assigns and stores one :class:`OrderLabel` per task.

    Labels are assigned online, in topological (= program) order, from
    the direct dependences each visibility algorithm reported — exactly
    the edges :meth:`DependenceGraph.add_task` records.  Plain ints and
    dicts throughout: instances pickle with the graphs that own them
    (process-backend checkpoints ship them inside runtimes).
    """

    def __init__(self) -> None:
        self._labels: dict[int, OrderLabel] = {}

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._labels

    def label(self, task_id: int) -> Optional[OrderLabel]:
        """The label of one task (None when never assigned)."""
        return self._labels.get(task_id)

    def assign(self, task_id: int, dependences: Iterable[int]) -> OrderLabel:
        """Label a new task from its direct dependences.

        All dependence ids must already be labelled (the runtime launches
        in program order, so they are).  One bitwise OR per edge — no
        traversal.
        """
        reach = 1 << task_id
        level = 0
        low = task_id
        for d in dependences:
            dl = self._labels[d]
            reach |= dl.reach
            if dl.level >= level:
                level = dl.level + 1
            if dl.low < low:
                low = dl.low
        label = OrderLabel(task_id, level, low, reach)
        self._labels[task_id] = label
        return label

    # ------------------------------------------------------------------
    def precedes(self, a: int, b: int) -> Optional[bool]:
        """Exact label answer to "does ``a`` strictly precede ``b``?"

        Returns ``None`` when ``b`` has no label (caller falls back to
        BFS); an unlabelled or out-of-universe ``a`` trivially does not
        precede anything, which the bitmap answers correctly.
        """
        lb = self._labels.get(b)
        if lb is None:
            return None
        if a < 0 or a >= b:
            return False
        la = self._labels.get(a)
        if la is not None and (la.level >= lb.level or la.index < lb.low):
            return False  # O(1) prefilters: no int shift needed
        return bool((lb.reach >> a) & 1)

    def ancestors(self, task_id: int) -> Optional[set[int]]:
        """The full ancestor set decoded from the bitmap (None when
        unlabelled).  Used by differential checks and tests — the hot
        paths only ever test single bits."""
        label = self._labels.get(task_id)
        if label is None:
            return None
        mask = label.reach & ~(1 << task_id)
        out: set[int] = set()
        index = 0
        while mask:
            low_bits = mask & 0xFFFFFFFF
            if low_bits:
                for bit in range(32):
                    if (low_bits >> bit) & 1:
                        out.add(index + bit)
            mask >>= 32
            index += 32
        return out

    def reach_mask(self, task_id: int) -> int:
        """``ancestors(task_id) | {task_id}`` as a packed bitmap; 0 for
        unlabelled ids (including the pre-program ``INITIAL_TASK_ID``)."""
        label = self._labels.get(task_id)
        return 0 if label is None else label.reach


class PrecedenceOracle:
    """O(1) precedence queries plus the scan-pruning bookkeeping.

    Wraps an :class:`OrderMaintainer` (usually the one owned by the
    runtime's :class:`~repro.runtime.dependence.DependenceGraph`) with
    the counters the observability layer publishes as ``order.*``
    metrics:

    * ``queries``/``comparisons`` — ``precedes`` calls and the label
      comparisons they cost (one per query: the operation-counting test
      asserts the ratio stays exactly 1, i.e. no hidden traversal);
    * ``hits``/``misses`` — scan-pruning coverage tests that did / did
      not prove an entry transitively ordered (a hit skips the
      intersection test and prunes the candidate edge).
    """

    def __init__(self, maintainer: OrderMaintainer) -> None:
        self.maintainer = maintainer
        self.queries = 0
        self.comparisons = 0
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def precedes(self, a: int, b: int) -> bool:
        """Whether task ``a`` strictly precedes task ``b`` in the
        recorded partial order.  O(1) label comparison, no traversal."""
        self.queries += 1
        self.comparisons += 1
        answer = self.maintainer.precedes(a, b)
        return bool(answer)

    def label(self, task_id: int) -> Optional[OrderLabel]:
        return self.maintainer.label(task_id)

    def reach_mask(self, task_id: int) -> int:
        """Closure bitmap of one task (0 when unlabelled) — scan loops
        accumulate these into a running coverage mask."""
        return self.maintainer.reach_mask(task_id)

    def covered(self, mask: int, task_id: int) -> bool:
        """Whether ``task_id`` lies under a coverage mask built from
        :meth:`reach_mask` calls.  Counts as one oracle hit or miss."""
        if task_id >= 0 and (mask >> task_id) & 1:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def transitive_reduce(self, deps: set[int]) -> tuple[set[int], list[int]]:
        """Drop every dependence already implied by another one.

        Returns ``(kept, dropped)``.  A dependence ``d`` is redundant
        when it precedes some other collected dependence — the closure is
        unchanged because precedence is transitive and acyclic (dropped
        ids always lead to a kept maximal element).  Used by the Z-buffer,
        whose element tables collect dependences wholesale rather than
        entry by entry.
        """
        if len(deps) < 2:
            return deps, []
        combined = 0
        for d in deps:
            label = self.maintainer.label(d)
            if label is not None:
                # ancestors only: d must never knock itself out
                combined |= label.reach & ~(1 << d)
        dropped = [d for d in deps
                   if d >= 0 and self.covered(combined, d)]
        if not dropped:
            return deps, dropped
        return deps.difference(dropped), dropped

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (all plain ints, JSON-ready)."""
        return {
            "labels": len(self.maintainer),
            "queries": int(self.queries),
            "comparisons": int(self.comparisons),
            "hits": int(self.hits),
            "misses": int(self.misses),
        }

    def publish_to(self, registry, **labels) -> None:
        """Publish the counters as ``order.*`` gauges (idempotent,
        last-value-wins — same contract as the other bridges)."""
        for key, value in self.stats().items():
            registry.gauge(f"order.{key}", **labels).set(value)

    def __repr__(self) -> str:
        s = self.stats()
        return (f"PrecedenceOracle(labels={s['labels']}, "
                f"queries={s['queries']}, hits={s['hits']}, "
                f"misses={s['misses']})")
