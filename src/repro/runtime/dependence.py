"""Dependence graphs and the exact interference oracle (section 3.2).

Dependence analysis relaxes the sequential program order into a partial
order.  The graph built by the runtime records, per task, the earlier tasks
each coherence algorithm reported; the **oracle** recomputes the exact
relation pairwise (O(n²), content-based: privileges interfere *and*
domains truly intersect).

Soundness criterion (used throughout the tests): every oracle pair must lie
in the *transitive closure* of the algorithm's graph — algorithms are free
to report a path instead of a direct edge (e.g. after a write clears a
history, later tasks depend on the write, which depends on what it
occluded).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs import tracer as obs
from repro.runtime import order as order_mod
from repro.runtime.order import OrderMaintainer
from repro.runtime.task import Task


class DependenceGraph:
    """A DAG over task ids with edges pointing from a task to the earlier
    tasks it depends on.

    Alongside the edge lists the graph maintains a compact
    :class:`~repro.runtime.order.OrderMaintainer` label per task (one
    bitwise OR per edge on ``add_task``), so the transitive-closure
    helpers (``contains_transitively`` / ``missing_pairs``) answer from
    labels instead of repeated BFS — pure acceleration, bit-identical
    answers, with a BFS fallback when labels are absent
    (``maintain_labels=False`` or the ``REPRO_NO_PRECEDENCE`` escape
    hatch) and a differential mode cross-checking both paths
    (``differential=True`` or ``REPRO_PRECEDENCE_DIFFERENTIAL``).
    """

    def __init__(self, maintain_labels: Optional[bool] = None,
                 differential: Optional[bool] = None) -> None:
        self._deps: dict[int, frozenset[int]] = {}
        self._levels: Optional[dict[int, int]] = None
        if maintain_labels is None:
            maintain_labels = order_mod.order_maintenance_enabled()
        self._order: Optional[OrderMaintainer] = (
            OrderMaintainer() if maintain_labels else None)
        if differential is None:
            differential = order_mod.differential_enabled()
        self._differential = bool(differential)

    # ------------------------------------------------------------------
    def add_task(self, task_id: int, dependences: Iterable[int]) -> None:
        """Record a task and its dependences (all ids must be earlier).

        Assigns the task's order label in the same step (the ids in
        ``dependences`` are labelled already — they are earlier tasks).
        """
        deps = frozenset(dependences)
        for d in deps:
            if d >= task_id:
                raise ValueError(
                    f"task {task_id} cannot depend on later task {d}")
            if d not in self._deps:
                raise ValueError(f"dependence on unknown task {d}")
        self._deps[task_id] = deps
        self._levels = None
        if self._order is not None:
            if task_id < 0:
                # negative ids have no bit position; degrade to BFS-only
                self._order = None
            else:
                self._order.assign(task_id, deps)

    @property
    def order_maintainer(self) -> Optional[OrderMaintainer]:
        """The label store backing the O(1) precedence fast path (None
        when label maintenance is disabled)."""
        return self._order

    def dependences_of(self, task_id: int) -> frozenset[int]:
        """Direct dependences of one task."""
        return self._deps[task_id]

    @property
    def task_ids(self) -> list[int]:
        """All recorded tasks, in program order."""
        return sorted(self._deps)

    def __len__(self) -> int:
        return len(self._deps)

    def edge_count(self) -> int:
        """Total direct edges (a precision metric: fewer is sharper)."""
        return sum(len(d) for d in self._deps.values())

    # ------------------------------------------------------------------
    def levels(self) -> dict[int, int]:
        """Longest-path level of each task: level 0 tasks have no
        dependences; a task's level is 1 + max level of its dependences.

        Tasks sharing a level can run concurrently — the parallel schedule
        of section 3.2's example assigns t0–2, t3–5, t6–8 to levels 0,1,2.

        Cached until the next ``add_task``: ``critical_path_length``,
        ``max_width`` and ``schedule_levels`` all consume the same pass.
        Callers must treat the returned mapping as read-only.
        """
        if self._levels is None:
            self._levels = self._compute_levels()
        return self._levels

    def _compute_levels(self) -> dict[int, int]:
        """One full longest-path pass (the unit the cache memoizes —
        overridable by counting subclasses in the regression tests)."""
        out: dict[int, int] = {}
        for tid in sorted(self._deps):
            deps = self._deps[tid]
            out[tid] = 0 if not deps else 1 + max(out[d] for d in deps)
        return out

    def critical_path_length(self) -> int:
        """Number of levels (1 + max level); the serial fraction."""
        if not self._deps:
            return 0
        return 1 + max(self.levels().values())

    def max_width(self) -> int:
        """Largest number of tasks on one level (peak parallelism)."""
        if not self._deps:
            return 0
        counts: dict[int, int] = {}
        for level in self.levels().values():
            counts[level] = counts.get(level, 0) + 1
        return max(counts.values())

    def ancestors_of(self, task_id: int) -> set[int]:
        """Every task reachable through dependences (transitive)."""
        seen: set[int] = set()
        queue = deque(self._deps[task_id])
        while queue:
            t = queue.popleft()
            if t in seen:
                continue
            seen.add(t)
            queue.extend(self._deps[t] - seen)
        return seen

    def _covers(self, earlier: int, later: int,
                cache: dict[int, set[int]]) -> bool:
        """One (earlier, later) path query: O(1) label test when labels
        are available, cached BFS otherwise (and, in differential mode,
        both — asserting they agree)."""
        if self._order is not None:
            answer = self._order.precedes(earlier, later)
            if answer is not None:
                if self._differential:
                    if later not in cache:
                        cache[later] = self.ancestors_of(later)
                    bfs = earlier in cache[later]
                    if bfs != answer:
                        raise AssertionError(
                            f"precedence differential: labels say "
                            f"{earlier} precedes {later} is {answer}, "
                            f"BFS says {bfs}")
                return answer
        if later not in cache:
            cache[later] = self.ancestors_of(later)
        return earlier in cache[later]

    def contains_transitively(self, pairs: Iterable[tuple[int, int]]) -> bool:
        """Whether each (earlier, later) pair is connected by a path."""
        cache: dict[int, set[int]] = {}
        for earlier, later in pairs:
            if not self._covers(earlier, later, cache):
                return False
        return True

    def missing_pairs(self, pairs: Iterable[tuple[int, int]]
                      ) -> list[tuple[int, int]]:
        """The subset of (earlier, later) pairs *not* covered by a path —
        empty for a sound analysis (diagnostics for test failures)."""
        cache: dict[int, set[int]] = {}
        out = []
        for earlier, later in pairs:
            if not self._covers(earlier, later, cache):
                out.append((earlier, later))
        return out


def oracle_dependences(tasks: Sequence[Task]) -> set[tuple[int, int]]:
    """The exact content-based interference relation, computed pairwise.

    Returns (earlier_id, later_id) for every ordered pair of tasks with at
    least one pair of requirements on the same field whose privileges
    interfere and whose domains intersect.
    """
    pairs: set[tuple[int, int]] = set()
    with obs.span("oracle_dependences", "runtime.dependence",
                  tasks=len(tasks)):
        for i, earlier in enumerate(tasks):
            for later in tasks[i + 1:]:
                if _tasks_interfere(earlier, later):
                    pairs.add((earlier.task_id, later.task_id))
    return pairs


def _tasks_interfere(a: Task, b: Task) -> bool:
    for ra in a.requirements:
        for rb in b.requirements:
            if ra.interferes(rb):
                return True
    return False


def schedule_levels(graph: DependenceGraph) -> list[list[int]]:
    """Group task ids into parallel waves by dependence level."""
    with obs.span("schedule_levels", "runtime.dependence"):
        waves: dict[int, list[int]] = {}
        for tid, level in graph.levels().items():
            waves.setdefault(level, []).append(tid)
        return [sorted(waves[level]) for level in sorted(waves)]
