"""Index launches with projection functors.

Legion's index launches name, per region requirement, a *projection*: a
function from the launch point to the subregion that point task uses
(`t1(P[i], G[i])` in Figure 1 projects the same point through two
different partitions).  This module provides the general form; the
simpler :meth:`Runtime.index_launch` remains for the common
one-partition-plus-extras case.

Example — the Figure 1 inner loop as one declaration::

    spec = IndexLaunchSpec(
        name="t1",
        requirements=[
            ProjectedRequirement(partition_projection(P), "up", READ_WRITE),
            ProjectedRequirement(partition_projection(G), "down",
                                 reduce("sum")),
        ],
        body_factory=lambda i: t1_body)
    tasks = spec.launch(runtime, points=range(3))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import TaskError
from repro.privileges import Privilege
from repro.regions.partition import Partition
from repro.regions.region import Region
from repro.runtime.task import RegionRequirement, Task, TaskBody

#: Maps a launch point to the region that point task names.
ProjectionFunctor = Callable[[int], Region]


def identity_projection(region: Region) -> ProjectionFunctor:
    """Every point names the same region (a broadcast argument)."""
    return lambda point: region


def partition_projection(partition: Partition,
                         index_map: Optional[Callable[[int], int]] = None
                         ) -> ProjectionFunctor:
    """Point ``i`` names ``partition[index_map(i)]`` (default: ``i``).

    The default is Legion's identity projection functor; ``index_map``
    expresses shifted neighbours (e.g. ``lambda i: (i + 1) % n`` for a
    ring exchange).
    """
    if index_map is None:
        return lambda point: partition[point]
    return lambda point: partition[index_map(point)]


@dataclass(frozen=True)
class ProjectedRequirement:
    """One region requirement of an index launch, before projection."""

    projection: ProjectionFunctor
    field: str
    privilege: Privilege

    def at(self, point: int) -> RegionRequirement:
        """The concrete requirement of one point task."""
        return RegionRequirement(self.projection(point), self.field,
                                 self.privilege)


@dataclass(frozen=True)
class IndexLaunchSpec:
    """A reusable index-launch declaration.

    Attributes
    ----------
    name:
        Base task name; point tasks are ``name[i]``.
    requirements:
        The projected requirements, in argument order.
    body_factory:
        Optional ``point -> body``; ``None`` launches bodiless tasks.
    """

    name: str
    requirements: tuple[ProjectedRequirement, ...]
    body_factory: Optional[Callable[[int], Optional[TaskBody]]] = None

    def __init__(self, name: str,
                 requirements: Sequence[ProjectedRequirement],
                 body_factory: Optional[Callable[[int],
                                                 Optional[TaskBody]]] = None
                 ) -> None:
        if not requirements:
            raise TaskError(f"index launch {name!r} has no requirements")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "requirements", tuple(requirements))
        object.__setattr__(self, "body_factory", body_factory)

    def launch(self, runtime, points: Iterable[int]) -> list[Task]:
        """Launch one point task per point, in point order."""
        out: list[Task] = []
        for point in points:
            reqs = [pr.at(point) for pr in self.requirements]
            body = None if self.body_factory is None \
                else self.body_factory(point)
            out.append(runtime.launch(f"{self.name}[{point}]", reqs, body,
                                      point=point))
        return out
