"""The implicitly-parallel task runtime substrate.

This package is the Legion-shaped harness around the visibility algorithms:
applications launch tasks carrying region requirements (region + field +
privilege); the runtime materializes coherent arguments, runs the task
body, commits its effects, and accumulates the dependence graph that a
scheduler would use to relax program order into parallel execution
(section 3.2).

Ground truth for every test lives here too: the
:class:`~repro.runtime.executor.SequentialExecutor` applies the same task
stream eagerly in program order with no analysis at all, and the
:func:`~repro.runtime.dependence.oracle_dependences` oracle computes the
exact pairwise interference relation.
"""

from repro.runtime.task import RegionRequirement, Task, TaskStream
from repro.runtime.order import (OrderLabel, OrderMaintainer,
                                 PrecedenceOracle)
from repro.runtime.dependence import DependenceGraph, oracle_dependences
from repro.runtime.executor import SequentialExecutor
from repro.runtime.context import Runtime

__all__ = [
    "DependenceGraph",
    "OrderLabel",
    "OrderMaintainer",
    "PrecedenceOracle",
    "RegionRequirement",
    "Runtime",
    "SequentialExecutor",
    "Task",
    "TaskStream",
    "oracle_dependences",
]
