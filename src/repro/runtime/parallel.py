"""Parallel execution of analyzed task streams.

Dependence analysis exists so the runtime can *relax* program order
(section 3.2).  This module closes the loop: given a task stream and the
dependence graph some coherence algorithm computed for it, execute the
tasks on a thread pool, releasing each task the moment its dependences
complete.  If the graph is sound, the result is identical to sequential
execution for **every** schedule the pool happens to pick — which is
exactly what the tests assert, many schedules at a time.

Execution uses eager full-field storage (like the sequential reference
executor): task inputs are gathered under a state lock before the body
runs, bodies run concurrently outside the lock, effects are committed
under the lock.  Dependences guarantee gather-after-commit ordering
between interfering tasks; the lock only protects the physical arrays
from torn scatter/gather, not the logical ordering.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import TaskError
from repro.regions.tree import RegionTree
from repro.runtime.dependence import DependenceGraph
from repro.runtime.task import Task
from repro.visibility.meter import PhaseProfile


@dataclass
class ExecutionLog:
    """What actually happened during one parallel run."""

    start_order: list[int] = field(default_factory=list)
    finish_order: list[int] = field(default_factory=list)
    max_in_flight: int = 0

    @property
    def reordered(self) -> bool:
        """Whether execution deviated from program order at all."""
        return self.finish_order != sorted(self.finish_order)


class ParallelExecutor:
    """Execute analyzed tasks concurrently, respecting a dependence graph."""

    def __init__(self, tree: RegionTree,
                 initial: Mapping[str, np.ndarray],
                 max_workers: int = 4) -> None:
        if max_workers < 1:
            raise TaskError("max_workers must be positive")
        self.tree = tree
        self.max_workers = max_workers
        self._fields: dict[str, np.ndarray] = {}
        root_size = tree.root.space.size
        for name in tree.field_space.names:
            if name not in initial:
                raise TaskError(f"missing initial values for field {name!r}")
            values = np.asarray(initial[name])
            if values.shape != (root_size,):
                raise TaskError(
                    f"initial values for {name!r} have shape "
                    f"{values.shape}, expected ({root_size},)")
            self._fields[name] = values.copy()
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[Task], graph: DependenceGraph,
            log: Optional[ExecutionLog] = None,
            profile: Optional[PhaseProfile] = None) -> None:
        """Execute every task, releasing each when its dependences finish.

        ``graph`` must contain exactly the tasks' ids.  Raises if the
        graph references unknown tasks or contains a cycle (impossible for
        graphs built by the runtime, possible for hand-built ones).
        ``profile``, when given, records the run under the
        ``parallel.execute`` phase (wall clock and task count).
        """
        if profile is not None:
            with profile.phase("parallel.execute"):
                self._run(tasks, graph, log)
            return
        self._run(tasks, graph, log)

    def _run(self, tasks: Sequence[Task], graph: DependenceGraph,
             log: Optional[ExecutionLog] = None) -> None:
        by_id = {t.task_id: t for t in tasks}
        if set(by_id) != set(graph.task_ids):
            raise TaskError("graph and task list disagree on task ids")

        children: dict[int, list[int]] = {tid: [] for tid in by_id}
        indegree: dict[int, int] = {}
        for tid in by_id:
            deps = graph.dependences_of(tid)
            indegree[tid] = len(deps)
            for d in deps:
                children[d].append(tid)

        done = threading.Event()
        dispatch_lock = threading.Lock()
        in_flight = 0
        remaining = len(by_id)
        failure: list[BaseException] = []

        if log is None:
            log = ExecutionLog()

        pool = ThreadPoolExecutor(max_workers=self.max_workers)

        def submit(tid: int) -> None:
            nonlocal in_flight
            in_flight += 1
            log.max_in_flight = max(log.max_in_flight, in_flight)
            log.start_order.append(tid)
            pool.submit(execute, tid)

        def execute(tid: int) -> None:
            nonlocal in_flight, remaining
            try:
                self._execute_one(by_id[tid])
            except BaseException as exc:  # propagate to the caller
                with dispatch_lock:
                    failure.append(exc)
                    done.set()
                return
            with dispatch_lock:
                in_flight -= 1
                remaining -= 1
                log.finish_order.append(tid)
                for child in children[tid]:
                    indegree[child] -= 1
                    if indegree[child] == 0:
                        submit(child)
                if remaining == 0:
                    done.set()

        with dispatch_lock:
            ready = [tid for tid, deg in indegree.items() if deg == 0]
            if not ready and by_id:
                raise TaskError("dependence graph has no ready task (cycle?)")
            for tid in sorted(ready):
                submit(tid)
            if not by_id:
                done.set()
        done.wait()
        pool.shutdown(wait=True)
        if failure:
            raise failure[0]
        if remaining != 0:
            raise TaskError("deadlock: tasks left unexecuted "
                            "(cycle in dependence graph?)")

    # ------------------------------------------------------------------
    def _execute_one(self, task: Task) -> None:
        root_space = self.tree.root.space
        positions = []
        buffers = []
        with self._state_lock:
            for req in task.requirements:
                pos = root_space.positions_of(req.region.space)
                positions.append(pos)
                if req.privilege.is_reduce:
                    assert req.privilege.redop is not None
                    buf = req.privilege.redop.identity_array(
                        pos.size, self._fields[req.field].dtype)
                else:
                    buf = self._fields[req.field][pos].copy()
                    if req.privilege.is_read:
                        buf.setflags(write=False)
                buffers.append(buf)

        if task.body is not None:
            task.body(*buffers)

        with self._state_lock:
            for req, pos, buf in zip(task.requirements, positions, buffers):
                if req.privilege.is_write:
                    self._fields[req.field][pos] = buf
                elif req.privilege.is_reduce:
                    assert req.privilege.redop is not None
                    current = self._fields[req.field]
                    current[pos] = req.privilege.redop.fold(current[pos], buf)

    # ------------------------------------------------------------------
    def field(self, name: str) -> np.ndarray:
        """Current values of a field over the root region (copy)."""
        return self._fields[name].copy()

    def fields(self) -> dict[str, np.ndarray]:
        """Snapshot of every field."""
        return {k: v.copy() for k, v in self._fields.items()}
