"""The sequential reference executor — ground truth for coherence.

Applies every task eagerly in program order against full per-field arrays,
with none of the lazy-reduction or history machinery: a write stores, a
reduction folds immediately, a read observes.  By section 3.1's definition
of the blending function ``B``, this *is* the specification each visibility
algorithm must match; every equivalence test in the suite compares against
it.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import TaskError
from repro.obs import tracer as obs
from repro.regions.tree import RegionTree
from repro.runtime.task import Task, TaskStream


class SequentialExecutor:
    """Eager, in-order execution with a global view of every field."""

    def __init__(self, tree: RegionTree,
                 initial: Mapping[str, np.ndarray]) -> None:
        self.tree = tree
        self._fields: dict[str, np.ndarray] = {}
        root_size = tree.root.space.size
        for name in tree.field_space.names:
            if name not in initial:
                raise TaskError(f"missing initial values for field {name!r}")
            values = np.asarray(initial[name])
            if values.shape != (root_size,):
                raise TaskError(
                    f"initial values for {name!r} have shape {values.shape}, "
                    f"expected ({root_size},)")
            self._fields[name] = values.copy()

    # ------------------------------------------------------------------
    def run(self, task: Task) -> None:
        """Execute one task eagerly."""
        with obs.span(task.name, "runtime.execute", task_id=task.task_id):
            self._run(task)

    def _run(self, task: Task) -> None:
        root_space = self.tree.root.space
        buffers: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        for req in task.requirements:
            pos = root_space.positions_of(req.region.space)
            positions.append(pos)
            if req.privilege.is_reduce:
                assert req.privilege.redop is not None
                buf = req.privilege.redop.identity_array(
                    pos.size, self._fields[req.field].dtype)
            else:
                buf = self._fields[req.field][pos].copy()
                if req.privilege.is_read:
                    buf.setflags(write=False)
            buffers.append(buf)

        if task.body is not None:
            task.body(*buffers)

        for req, pos, buf in zip(task.requirements, positions, buffers):
            if req.privilege.is_write:
                self._fields[req.field][pos] = buf
            elif req.privilege.is_reduce:
                assert req.privilege.redop is not None
                current = self._fields[req.field]
                current[pos] = req.privilege.redop.fold(current[pos], buf)

    def run_stream(self, stream: TaskStream) -> None:
        """Execute every task of a stream in program order."""
        for task in stream:
            self.run(task)

    # ------------------------------------------------------------------
    def field(self, name: str) -> np.ndarray:
        """Current values of a field over the root region (copy)."""
        return self._fields[name].copy()

    def fields(self) -> dict[str, np.ndarray]:
        """Snapshot of every field."""
        return {k: v.copy() for k, v in self._fields.items()}

    def fingerprint(self) -> str:
        """Stable digest of the current field contents.

        The differential tests compare this against
        :meth:`ShardedRuntime.state_fingerprint` of a sharded run: equal
        digests mean bit-identical distributed state without
        materializing a field-by-field comparison.
        """
        from repro.distributed.verify import fields_fingerprint

        return fields_fingerprint(self._fields)
