"""Dynamic tracing: memoization of the dependence analysis.

Legion's tracing [Lee et al., *Dynamic Tracing: Memoization of Task Graphs
for Dynamic Task-Based Runtimes*, SC 2018] observes that iterative
applications launch the same task sequence every loop iteration, so the
dependence analysis can be captured once and replayed.  The paper's
evaluation **disables** tracing precisely because it would hide the cost
of the coherence algorithms being compared (section 8); we implement it as
the natural extension, with an ablation benchmark quantifying how much
analysis it removes.

Semantics: the first execution of a named trace runs untraced (its
dependence pattern is *not* representative — a loop's first iteration has
no previous iteration to depend on).  The **second** structurally
identical execution runs the full analysis and records, per task, its
dependences as offsets relative to the trace start (negative offsets reach
tasks launched before the trace — the previous iteration, which by then
has the steady-state shape).  Replays skip dependence computation
entirely: values are still materialized and effects still committed (the
coherence state must stay current), but the recorded dependence template
is re-based instead of recomputed.  A sequence that no longer matches the
recording invalidates the trace and restarts the capture protocol.

Replay soundness rests on the same idempotency assumption as Legion's
tracing: consecutive executions of a trace must be separated by the same
intervening context (the steady-state loop case).  ``validate=True``
replays with full analysis and cross-checks the template — useful in
tests and when diagnosing a suspect trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

from repro.errors import TaskError
from repro.runtime.task import Task, TaskStream

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.context import Runtime


def _privilege_key(privilege) -> Hashable:
    if privilege.is_reduce:
        return ("reduce", privilege.redop.name)
    return privilege.kind.value


def trace_signature(stream: TaskStream) -> tuple:
    """Structural fingerprint of a task sequence: names, launch points,
    regions, fields, privileges — everything the dependence analysis can
    observe.  The point matters even though the scan itself never reads
    it: sharded runtimes assign tasks to shards by point, so two streams
    differing only in points must not replay each other's template."""
    out = []
    for task in stream:
        reqs = tuple((r.region.uid, r.field, _privilege_key(r.privilege))
                     for r in task.requirements)
        out.append((task.name, task.point, reqs))
    return tuple(out)


def signature_digest(stream: TaskStream) -> str:
    """Process-stable hex digest of :func:`trace_signature`.

    Tuples hash differently across processes (Python hash randomization),
    so the parallel analysis path and the CLI identify streams by this
    digest instead when labelling reports.
    """
    from repro.distributed.verify import fingerprint_tokens

    return fingerprint_tokens(trace_signature(stream))


@dataclass
class RecordedTrace:
    """One captured trace: its fingerprint and dependence template."""

    signature: tuple
    #: per task, dependences as offsets from the trace's first task id
    #: (negative = a task launched before this trace instance)
    relative_deps: list[tuple[int, ...]]
    replays: int = 0


class TraceRecorder:
    """Per-runtime trace registry (used via :meth:`Runtime.execute_trace`)."""

    def __init__(self, runtime: "Runtime") -> None:
        self._runtime = runtime
        self._traces: dict[str, RecordedTrace] = {}
        self._seen: dict[str, tuple] = {}

    # ------------------------------------------------------------------
    def execute(self, name: str, stream: TaskStream,
                validate: bool = False) -> list[Task]:
        """Run ``stream`` under trace ``name``.

        First structurally-identical occurrence: untraced; second: capture;
        later: replay (or, with ``validate=True``, replay with full
        analysis and cross-check the memoized template).
        """
        signature = trace_signature(stream)
        trace = self._traces.get(name)
        if trace is not None and trace.signature == signature:
            if validate:
                return self._validate(name, trace, stream)
            return self._replay(trace, stream)
        if self._seen.get(name) == signature:
            return self._capture(name, signature, stream)
        # first sighting (or shape change): run untraced, arm the capture
        self._seen[name] = signature
        self._traces.pop(name, None)
        rt = self._runtime
        return [rt.launch(t.name, t.requirements, t.body, t.point)
                for t in stream]

    def trace(self, name: str) -> RecordedTrace:
        """Look up a captured trace (diagnostics/tests)."""
        try:
            return self._traces[name]
        except KeyError:
            raise TaskError(f"no trace named {name!r} captured yet") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._traces))

    # ------------------------------------------------------------------
    def _capture(self, name: str, signature: tuple,
                 stream: TaskStream) -> list[Task]:
        rt = self._runtime
        tasks = [rt.launch(t.name, t.requirements, t.body, t.point)
                 for t in stream]
        # Rebase against the first task's *actual* id, not len(rt.tasks):
        # the two diverge on runtimes whose internal operations consume
        # task ids, and a wrong base silently records shifted offsets.
        base = tasks[0].task_id if tasks else rt.next_task_id
        relative = []
        for task in tasks:
            deps = rt.graph.dependences_of(task.task_id)
            relative.append(tuple(sorted(d - base for d in deps)))
        self._traces[name] = RecordedTrace(signature, relative)
        rt.meter.count("traces_captured")
        return tasks

    def _replay(self, trace: RecordedTrace, stream: TaskStream) -> list[Task]:
        rt = self._runtime
        base = rt.next_task_id  # the id the first replayed task will get
        if trace.relative_deps and min(
                (off for offs in trace.relative_deps for off in offs),
                default=0) + base < 0:
            raise TaskError(
                "trace replay would reference tasks before program start")
        out: list[Task] = []
        for k, task in enumerate(stream):
            deps = frozenset(base + off for off in trace.relative_deps[k])
            out.append(rt._launch_traced(task, deps))
        trace.replays += 1
        rt.meter.count("traces_replayed")
        return out

    def _validate(self, name: str, trace: RecordedTrace,
                  stream: TaskStream) -> list[Task]:
        """Replay with full analysis, checking the memoized template."""
        rt = self._runtime
        tasks = [rt.launch(t.name, t.requirements, t.body, t.point)
                 for t in stream]
        base = tasks[0].task_id if tasks else rt.next_task_id
        for k, task in enumerate(tasks):
            got = tuple(sorted(d - base
                               for d in rt.graph.dependences_of(task.task_id)))
            if got != trace.relative_deps[k]:
                raise TaskError(
                    f"trace {name!r} failed validation at task {k}: "
                    f"recorded offsets {trace.relative_deps[k]}, "
                    f"recomputed {got} — the trace's idempotency "
                    "assumption does not hold for this program")
        trace.replays += 1
        rt.meter.count("traces_validated")
        return tasks
