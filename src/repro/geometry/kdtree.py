"""K-d tree over the linearized index dimension (section 7.1 fallback).

When a program offers no disjoint-and-complete partition subtree, the
ray-casting implementation "creates a K-d tree" [paper §7.1, citing
Bentley 1975] to organize equivalence sets.  Over our 1-D linearized index
space a K-d tree degenerates to a balanced binary space partition on index
value: every node splits the key range at a plane, items are routed to the
side(s) their bounding interval touches.

Unlike :class:`~repro.geometry.bvh.BVH` (object partitioning), the K-d tree
is a *space* partitioning structure: items spanning a split plane are
referenced from both subtrees, so removal uses an id-indexed registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.errors import GeometryError
from repro.geometry.index_space import IndexSpace

_MAX_DEPTH = 48
_LEAF_CAPACITY = 8


@dataclass
class _KDNode:
    lo: int
    hi: int
    split: Optional[int] = None
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None
    items: list[int] = field(default_factory=list)  # item ids

    @property
    def is_leaf(self) -> bool:
        return self.split is None


class KDTree:
    """A dynamic 1-D K-d (binary space partition) tree over index bounds.

    ``insert``/``remove`` are incremental; leaves split when they exceed
    capacity.  ``query`` returns payloads whose bounding interval intersects
    the query interval (conservative, like the BVH).
    """

    def __init__(self, lo: int, hi: int, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if hi < lo:
            raise GeometryError("KDTree requires a non-empty key range")
        self._root = _KDNode(lo=lo, hi=hi)
        self._leaf_capacity = leaf_capacity
        self._items: dict[int, tuple[tuple[int, int], IndexSpace, Any]] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live items."""
        return len(self._items)

    def insert(self, space: IndexSpace, payload: Any) -> int:
        """Index ``payload`` under ``space``'s bounds; returns an item id."""
        if space.is_empty:
            raise GeometryError("cannot insert an empty space into a KDTree")
        lo, hi = space.bounds
        if lo < self._root.lo or hi > self._root.hi:
            raise GeometryError("item bounds exceed the tree's key range")
        item_id = self._next_id
        self._next_id += 1
        self._items[item_id] = ((lo, hi), space, payload)
        self._insert_into(self._root, item_id, lo, hi, 0)
        return item_id

    def remove(self, item_id: int) -> Any:
        """Remove a previously inserted item by id; returns its payload."""
        if item_id not in self._items:
            raise GeometryError(f"unknown KDTree item id {item_id}")
        (lo, hi), _, payload = self._items.pop(item_id)
        self._remove_from(self._root, item_id, lo, hi)
        return payload

    def query(self, space: IndexSpace) -> list[Any]:
        """Payloads whose bounding interval overlaps ``space``'s bounds."""
        if space.is_empty:
            return []
        lo, hi = space.bounds
        return self.query_interval(lo, hi)

    def query_interval(self, lo: int, hi: int) -> list[Any]:
        """Payloads whose bounding interval overlaps ``[lo, hi]``."""
        seen: set[int] = set()
        out: list[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.hi < lo or hi < node.lo:
                continue
            if node.is_leaf:
                for item_id in node.items:
                    if item_id in seen:
                        continue
                    (ilo, ihi), _, payload = self._items[item_id]
                    if ilo <= hi and lo <= ihi:
                        seen.add(item_id)
                        out.append(payload)
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        return out

    def query_exact(self, space: IndexSpace) -> list[Any]:
        """Payloads whose index space truly overlaps ``space``.

        The conservative interval walk narrows to candidates; one batched
        interference pass resolves them all.
        """
        from repro.geometry.fastpath import batch_overlaps

        if space.is_empty:
            return []
        lo, hi = space.bounds
        seen: set[int] = set()
        candidates: list[tuple[IndexSpace, Any]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.hi < lo or hi < node.lo:
                continue
            if node.is_leaf:
                for item_id in node.items:
                    if item_id in seen:
                        continue
                    (ilo, ihi), item_space, payload = self._items[item_id]
                    if ilo <= hi and lo <= ihi:
                        seen.add(item_id)
                        candidates.append((item_space, payload))
            else:
                assert node.left is not None and node.right is not None
                stack.append(node.left)
                stack.append(node.right)
        if not candidates:
            return []
        hits = batch_overlaps(space, [s for s, _ in candidates])
        return [payload for (_, payload), hit in zip(candidates, hits)
                if hit]

    def __iter__(self) -> Iterator[Any]:
        for (_, _, payload) in self._items.values():
            yield payload

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def _insert_into(self, node: _KDNode, item_id: int, lo: int, hi: int,
                     depth: int) -> None:
        if node.is_leaf:
            node.items.append(item_id)
            if (len(node.items) > self._leaf_capacity
                    and depth < _MAX_DEPTH and node.hi > node.lo):
                self._split(node)
            return
        assert node.split is not None
        if lo <= node.split:
            assert node.left is not None
            self._insert_into(node.left, item_id, lo, hi, depth + 1)
        if hi > node.split:
            assert node.right is not None
            self._insert_into(node.right, item_id, lo, hi, depth + 1)

    def _split(self, node: _KDNode) -> None:
        split = (node.lo + node.hi) // 2
        node.split = split
        node.left = _KDNode(lo=node.lo, hi=split)
        node.right = _KDNode(lo=split + 1, hi=node.hi)
        for item_id in node.items:
            (lo, hi), _, _ = self._items[item_id]
            if lo <= split:
                node.left.items.append(item_id)
            if hi > split:
                node.right.items.append(item_id)
        node.items = []

    def _remove_from(self, node: _KDNode, item_id: int, lo: int, hi: int) -> None:
        if node.is_leaf:
            try:
                node.items.remove(item_id)
            except ValueError:
                pass
            return
        assert node.split is not None
        if lo <= node.split:
            assert node.left is not None
            self._remove_from(node.left, item_id, lo, hi)
        if hi > node.split:
            assert node.right is not None
            self._remove_from(node.right, item_id, lo, hi)
