"""Immutable sparse index spaces with vectorized set algebra.

An :class:`IndexSpace` is the machine representation of a region *domain*
(paper section 4): a finite set of element indices.  It is stored as a
sorted, duplicate-free ``int64`` array, which makes every operator the
coherence algorithms need a single vectorized NumPy call:

* ``a & b``   — intersection (``X/Y`` restricted to domains),
* ``a - b``   — difference (``X\\Y``),
* ``a | b``   — union,
* ``a.overlaps(b)`` / ``a.isdisjoint(b)`` — the interference tests that
  dominate dependence-analysis cost and are therefore metered.

Index spaces cache their bounding interval ``[lo, hi]`` so disjointness can
usually be decided without touching element data — the same trick bounding
boxes play in the graphics visibility algorithms the paper adapts.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Extent, Rect

_EMPTY = np.empty(0, dtype=np.int64)
_EMPTY.setflags(write=False)

#: Installed by :mod:`repro.geometry.fastpath`: a process-wide operation
#: cache the public set-algebra operators dispatch through.  ``None``
#: (before the fastpath module loads) means compute directly.
_op_cache = None


def _as_sorted_unique(values: Iterable[int] | np.ndarray) -> np.ndarray:
    if not isinstance(values, (np.ndarray, list, tuple)):
        values = list(values)  # sets, generators, ranges...
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim != 1:
        arr = arr.ravel()
    if arr.size == 0:
        return _EMPTY
    if arr.size > 1 and not (np.diff(arr) > 0).all():
        arr = np.unique(arr)
    return arr


class IndexSpace:
    """An immutable, sorted set of ``int64`` element indices.

    Construct with :meth:`from_indices`, :meth:`from_range`,
    :meth:`from_rect` or :meth:`from_mask`; the raw constructor trusts its
    input to already be sorted and unique (``trusted=True``) or normalizes
    it otherwise.
    """

    __slots__ = ("_indices", "_lo", "_hi", "_uid")

    def __init__(self, indices: Iterable[int] | np.ndarray = (), *,
                 trusted: bool = False) -> None:
        if trusted and isinstance(indices, np.ndarray) and indices.dtype == np.int64:
            arr = indices
        else:
            arr = _as_sorted_unique(indices)
        if arr.flags.writeable:
            # Freeze a *view*, never the caller's array: both the trusted
            # path and ``np.asarray`` can hand back the caller's own
            # buffer, whose writeability the caller still owns.
            arr = arr.view()
            arr.setflags(write=False)
        self._indices = arr
        if arr.size:
            self._lo = int(arr[0])
            self._hi = int(arr[-1])
        else:
            self._lo = 0
            self._hi = -1
        self._uid = None  # fastpath intern memo: (generation, uid)

    def __getstate__(self):
        # _uid is process-local (checkpoints pickle whole runtimes and may
        # be restored in another process); ship only the content.  Tuple-
        # wrapped: a bare empty array is falsy and pickle would then skip
        # __setstate__ entirely.
        return (self._indices,)

    def __setstate__(self, state) -> None:
        arr = np.asarray(state[0], dtype=np.int64)
        if arr.flags.writeable:
            arr = arr.view()
            arr.setflags(write=False)
        self._indices = arr
        if arr.size:
            self._lo = int(arr[0])
            self._hi = int(arr[-1])
        else:
            self._lo = 0
            self._hi = -1
        self._uid = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def empty() -> "IndexSpace":
        """The empty index space."""
        return _EMPTY_SPACE

    @staticmethod
    def from_indices(values: Iterable[int] | np.ndarray) -> "IndexSpace":
        """Build from any iterable of integers (deduplicated and sorted)."""
        return IndexSpace(values)

    @staticmethod
    def from_range(start: int, stop: int) -> "IndexSpace":
        """The half-open contiguous range ``[start, stop)``."""
        if stop < start:
            raise GeometryError(f"invalid range [{start}, {stop})")
        return IndexSpace(np.arange(start, stop, dtype=np.int64), trusted=True)

    @staticmethod
    def from_rect(rect: Rect, extent: Extent) -> "IndexSpace":
        """The row-major linearization of ``rect`` inside ``extent``."""
        return IndexSpace(rect.linearize(extent), trusted=True)

    @staticmethod
    def from_mask(mask: np.ndarray) -> "IndexSpace":
        """Build from a boolean mask over the flat root domain."""
        mask = np.asarray(mask, dtype=bool).ravel()
        return IndexSpace(np.flatnonzero(mask).astype(np.int64), trusted=True)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def indices(self) -> np.ndarray:
        """The sorted element indices (read-only view)."""
        return self._indices

    @property
    def size(self) -> int:
        """Number of elements."""
        return int(self._indices.size)

    @property
    def is_empty(self) -> bool:
        """True when the space has no elements."""
        return self._indices.size == 0

    @property
    def bounds(self) -> tuple[int, int]:
        """Inclusive bounding interval ``(lo, hi)``; ``(0, -1)`` if empty."""
        return (self._lo, self._hi)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self._indices)

    def __contains__(self, index: int) -> bool:
        if self.is_empty or index < self._lo or index > self._hi:
            return False
        pos = int(np.searchsorted(self._indices, index))
        return pos < self._indices.size and int(self._indices[pos]) == index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexSpace):
            return NotImplemented
        return (self._indices.size == other._indices.size
                and bool(np.array_equal(self._indices, other._indices)))

    def __hash__(self) -> int:
        return hash((self._indices.size, self._lo, self._hi,
                     self._indices.tobytes() if self._indices.size <= 64 else
                     self._indices[:: max(1, self._indices.size // 64)].tobytes()))

    def __repr__(self) -> str:
        if self.is_empty:
            return "IndexSpace(empty)"
        return f"IndexSpace(size={self.size}, bounds=[{self._lo}, {self._hi}])"

    # ------------------------------------------------------------------
    # set algebra
    # ------------------------------------------------------------------
    def bbox_overlaps(self, other: "IndexSpace") -> bool:
        """Cheap conservative overlap test on bounding intervals only."""
        if self.is_empty or other.is_empty:
            return False
        return self._lo <= other._hi and other._lo <= self._hi

    def intersection(self, other: "IndexSpace") -> "IndexSpace":
        """Elements present in both spaces (``X/Y`` on domains)."""
        if _op_cache is not None:
            return _op_cache.intersection(self, other)
        return self._intersection_raw(other)

    def _intersection_raw(self, other: "IndexSpace") -> "IndexSpace":
        if not self.bbox_overlaps(other):
            return _EMPTY_SPACE
        out = np.intersect1d(self._indices, other._indices, assume_unique=True)
        return IndexSpace(out, trusted=True)

    def difference(self, other: "IndexSpace") -> "IndexSpace":
        """Elements of this space not present in ``other`` (``X\\Y``)."""
        if _op_cache is not None:
            return _op_cache.difference(self, other)
        return self._difference_raw(other)

    def _difference_raw(self, other: "IndexSpace") -> "IndexSpace":
        if not self.bbox_overlaps(other):
            return self
        out = np.setdiff1d(self._indices, other._indices, assume_unique=True)
        return IndexSpace(out, trusted=True)

    def union(self, other: "IndexSpace") -> "IndexSpace":
        """Elements in either space."""
        if _op_cache is not None:
            return _op_cache.union(self, other)
        return self._union_raw(other)

    def _union_raw(self, other: "IndexSpace") -> "IndexSpace":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        out = np.union1d(self._indices, other._indices)
        return IndexSpace(out, trusted=True)

    def __and__(self, other: "IndexSpace") -> "IndexSpace":
        return self.intersection(other)

    def __sub__(self, other: "IndexSpace") -> "IndexSpace":
        return self.difference(other)

    def __or__(self, other: "IndexSpace") -> "IndexSpace":
        return self.union(other)

    def overlaps(self, other: "IndexSpace") -> bool:
        """True when the spaces share at least one element."""
        if _op_cache is not None:
            return _op_cache.overlaps(self, other)
        return self._overlaps_raw(other)

    def _overlaps_raw(self, other: "IndexSpace") -> bool:
        if not self.bbox_overlaps(other):
            return False
        # membership probe of the smaller into the larger beats a full
        # intersect1d when we only need a yes/no answer
        small, large = (self, other) if self.size <= other.size else (other, self)
        pos = np.searchsorted(large._indices, small._indices)
        pos = np.minimum(pos, large._indices.size - 1)
        return bool((large._indices[pos] == small._indices).any())

    def isdisjoint(self, other: "IndexSpace") -> bool:
        """True when the spaces share no element."""
        return not self.overlaps(other)

    def issubset(self, other: "IndexSpace") -> bool:
        """True when every element of this space is in ``other``."""
        if self.is_empty:
            return True
        if other.is_empty or self.size > other.size:
            return False
        if self._lo < other._lo or self._hi > other._hi:
            return False
        pos = np.searchsorted(other._indices, self._indices)
        if pos[-1] >= other._indices.size:
            return False
        return bool((other._indices[pos] == self._indices).all())

    def issuperset(self, other: "IndexSpace") -> bool:
        """True when every element of ``other`` is in this space."""
        return other.issubset(self)

    # ------------------------------------------------------------------
    # positioning helpers used by the value layer
    # ------------------------------------------------------------------
    def positions_of(self, subset: "IndexSpace") -> np.ndarray:
        """Positions of ``subset``'s elements within this space's array.

        ``subset`` must be a subset of this space; the result ``p`` satisfies
        ``self.indices[p] == subset.indices``.  This is the gather map used
        when blending region values (Figure 7's ``⊕`` lifted to value
        arrays).
        """
        if subset._indices.size == self._indices.size:
            # a same-size subset is the space itself: identity gather
            # (verified cheaply — a memcmp beats two searchsorted passes)
            if subset is self or np.array_equal(self._indices,
                                                subset._indices):
                return np.arange(self._indices.size)
            raise GeometryError("positions_of: argument is not a subset")
        pos = np.searchsorted(self._indices, subset._indices)
        if subset.size:
            if pos[-1] >= self._indices.size or not bool(
                (self._indices[np.minimum(pos, self._indices.size - 1)]
                 == subset._indices).all()
            ):
                raise GeometryError("positions_of: argument is not a subset")
        return pos

    def membership_mask(self, other: "IndexSpace") -> np.ndarray:
        """Boolean mask over this space's elements: which are in ``other``."""
        if self.is_empty:
            return np.empty(0, dtype=bool)
        if not self.bbox_overlaps(other):
            return np.zeros(self.size, dtype=bool)
        return np.isin(self._indices, other._indices, assume_unique=True)

    @staticmethod
    def union_all(spaces: Sequence["IndexSpace"]) -> "IndexSpace":
        """Union of many spaces in one pass."""
        arrays = [s._indices for s in spaces if s.size]
        if not arrays:
            return _EMPTY_SPACE
        if len(arrays) == 1:
            return IndexSpace(arrays[0], trusted=True)
        return IndexSpace(np.unique(np.concatenate(arrays)), trusted=True)

    def to_rect_coords(self, extent: Extent) -> np.ndarray:
        """Delinearize back to ``(n, dim)`` coordinates inside ``extent``."""
        return extent.delinearize(self._indices)

    def sample(self, k: int, rng: Optional[np.random.Generator] = None) -> "IndexSpace":
        """A random subset of at most ``k`` elements (for test workloads)."""
        if k >= self.size:
            return self
        rng = rng or np.random.default_rng()
        pick = rng.choice(self._indices, size=k, replace=False)
        return IndexSpace(pick)


_EMPTY_SPACE = IndexSpace(_EMPTY, trusted=True)
