"""Geometric substrate: points, rectangles, index spaces and spatial indexes.

Regions in the paper are arbitrary (possibly sparse, possibly aliased)
subsets of a root collection.  This subpackage provides the set algebra that
every coherence algorithm is built on:

* :class:`~repro.geometry.point.Rect` — dense n-dimensional integer
  rectangles (used by the structured applications).
* :class:`~repro.geometry.index_space.IndexSpace` — an immutable sorted set
  of linearized element indices with vectorized union / intersection /
  difference, the ``X/Y``, ``X\\Y`` and ``X ⊕ Y`` operators of Figure 7.
* :mod:`~repro.geometry.intervals` — run-length interval views used for
  compact summaries and fast disjointness tests.
* :class:`~repro.geometry.bvh.BVH` — a bounding-volume hierarchy over index
  spaces (section 6.1 / 7.1 acceleration structure).
* :class:`~repro.geometry.kdtree.KDTree` — the K-d tree fallback of
  section 7.1 for programs with no disjoint-and-complete partition.
* :mod:`~repro.geometry.fastpath` — the interning/caching layer and the
  batched interference kernel behind the ``IndexSpace`` operators.
"""

from repro.geometry.point import Extent, Rect
from repro.geometry.index_space import IndexSpace
from repro.geometry.intervals import IntervalSet, runs_of
from repro.geometry.bvh import BVH, BVHNode
from repro.geometry.kdtree import KDTree
# Imported last: installs the operation-cache hook into index_space.
from repro.geometry.fastpath import (GeometryCache, batch_overlaps,
                                     geometry_cache,
                                     geometry_cache_disabled,
                                     reset_geometry_cache,
                                     set_geometry_cache_enabled)

__all__ = [
    "Extent",
    "Rect",
    "IndexSpace",
    "IntervalSet",
    "runs_of",
    "BVH",
    "BVHNode",
    "KDTree",
    "GeometryCache",
    "batch_overlaps",
    "geometry_cache",
    "geometry_cache_disabled",
    "reset_geometry_cache",
    "set_geometry_cache_enabled",
]
