"""Run-length interval views over index spaces.

Sparse index spaces produced by partitioning structured grids are usually
highly *runny* — long stretches of consecutive indices.  An
:class:`IntervalSet` summarizes an index space as a list of inclusive runs
``[(start, stop)]``, which gives:

* O(runs) storage for what may be a large set,
* O(runs_a + runs_b) disjointness/overlap tests,
* the bounding structure the K-d tree fallback (section 7.1) splits on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GeometryError
from repro.geometry.index_space import IndexSpace


def runs_of(space: IndexSpace) -> np.ndarray:
    """Inclusive runs of an index space as an ``(n, 2)`` int64 array.

    Each row is ``(start, stop)`` with ``stop`` inclusive; rows are sorted
    and non-adjacent (``start[i+1] > stop[i] + 1``).
    """
    idx = space.indices
    if idx.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([idx[0]], idx[breaks + 1]))
    stops = np.concatenate((idx[breaks], [idx[-1]]))
    return np.stack([starts, stops], axis=1)


class IntervalSet:
    """A sorted set of disjoint inclusive integer intervals.

    This is the compact summary representation used where element-exact
    precision is unnecessary (BVH bounds, ownership maps, message size
    estimates).
    """

    __slots__ = ("_runs",)

    def __init__(self, runs: np.ndarray | list[tuple[int, int]]) -> None:
        arr = np.asarray(runs, dtype=np.int64).reshape(-1, 2)
        if arr.size and (arr[:, 0] > arr[:, 1]).any():
            raise GeometryError("interval with start > stop")
        if arr.shape[0] > 1:
            order = np.argsort(arr[:, 0], kind="stable")
            arr = arr[order]
            if (arr[1:, 0] <= arr[:-1, 1] + 1).any():
                arr = _coalesce(arr)
        arr.setflags(write=False)
        self._runs = arr

    @staticmethod
    def from_space(space: IndexSpace) -> "IntervalSet":
        """Exact interval summary of an index space."""
        return IntervalSet(runs_of(space))

    @staticmethod
    def empty() -> "IntervalSet":
        """The empty interval set."""
        return IntervalSet(np.empty((0, 2), dtype=np.int64))

    @property
    def runs(self) -> np.ndarray:
        """The ``(n, 2)`` array of inclusive runs (read-only)."""
        return self._runs

    @property
    def num_runs(self) -> int:
        """Number of maximal runs."""
        return int(self._runs.shape[0])

    @property
    def is_empty(self) -> bool:
        """True when there are no intervals."""
        return self._runs.shape[0] == 0

    @property
    def size(self) -> int:
        """Total number of integer points covered."""
        if self.is_empty:
            return 0
        return int((self._runs[:, 1] - self._runs[:, 0] + 1).sum())

    @property
    def bounds(self) -> tuple[int, int]:
        """Overall inclusive bounding interval; ``(0, -1)`` if empty."""
        if self.is_empty:
            return (0, -1)
        return (int(self._runs[0, 0]), int(self._runs[-1, 1]))

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter((int(a), int(b)) for a, b in self._runs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return bool(np.array_equal(self._runs, other._runs))

    def __hash__(self) -> int:
        # Defining __eq__ under __slots__ suppresses the inherited hash;
        # interval sets are immutable, so hash the canonical run list
        # (equal sets coalesce to identical run arrays).
        return hash((self._runs.shape[0], self._runs.tobytes()))

    def __repr__(self) -> str:
        return f"IntervalSet(runs={self.num_runs}, size={self.size})"

    def overlaps(self, other: "IntervalSet") -> bool:
        """True when any run of ``self`` intersects any run of ``other``.

        Linear merge over the two sorted run lists.
        """
        a, b = self._runs, other._runs
        i = j = 0
        while i < a.shape[0] and j < b.shape[0]:
            if a[i, 1] < b[j, 0]:
                i += 1
            elif b[j, 1] < a[i, 0]:
                j += 1
            else:
                return True
        return False

    def contains_point(self, index: int) -> bool:
        """True when ``index`` is covered by some run."""
        if self.is_empty:
            return False
        pos = int(np.searchsorted(self._runs[:, 0], index, side="right")) - 1
        return pos >= 0 and index <= int(self._runs[pos, 1])

    def to_space(self) -> IndexSpace:
        """Expand back to an element-exact index space."""
        if self.is_empty:
            return IndexSpace.empty()
        parts = [np.arange(a, b + 1, dtype=np.int64) for a, b in self._runs]
        return IndexSpace(np.concatenate(parts), trusted=True)


def _coalesce(sorted_runs: np.ndarray) -> np.ndarray:
    """Merge overlapping/adjacent sorted runs into maximal disjoint runs."""
    out: list[list[int]] = [[int(sorted_runs[0, 0]), int(sorted_runs[0, 1])]]
    for start, stop in sorted_runs[1:]:
        if start <= out[-1][1] + 1:
            out[-1][1] = max(out[-1][1], int(stop))
        else:
            out.append([int(start), int(stop)])
    return np.asarray(out, dtype=np.int64)
