"""The geometry fast path: interning, operation caching, batched tests.

The paper's initialization-time results (section 8, Figs 12-14) are
dominated by the interference tests the coherence algorithms issue —
``&``, ``-``, ``|`` and ``overlaps`` on :class:`IndexSpace`, one
Python-level NumPy call at a time.  Iterative applications repeat the same
task stream every loop, so the same pairs of spaces are tested over and
over.  This module removes that redundancy with three cooperating pieces:

* :class:`SpaceInterner` semantics inside :class:`GeometryCache` — every
  distinct index-space *content* gets a stable small uid (hash-consing by
  content digest), memoized on the instance so repeat lookups are one
  attribute read.
* A **versioned operation cache** keyed on uid pairs for intersection,
  difference, union and the overlap test.  Public ``IndexSpace`` operators
  consult it through a module-level hook, so every call site in the
  repository benefits without change.  Spaces are immutable, which makes
  cached results valid forever; :meth:`GeometryCache.invalidate` (wired to
  store mutations such as :meth:`BucketStore.rebucket`) drops results the
  stores no longer reference, bounding memory across phase changes.
* :func:`batch_overlaps` — a **batched interference kernel** testing one
  query space against N candidates in a single vectorized pass: a stacked
  bounds prefilter, cache lookups per surviving pair, then one merged
  ``searchsorted`` sweep resolving every remaining candidate at once.

Correctness stance: the fast path must be *observationally invisible*.
Cached results are value-equal to recomputed ones (immutability makes
sharing safe), the batched kernel computes exactly the per-pair
``overlaps`` answers, and nothing here touches a
:class:`~repro.visibility.meter.CostMeter` — so analysis fingerprints
(which hash both structure and meter counts) stay bit-identical with the
cache on or off.  ``tests/distributed/test_cache_differential.py`` proves
this for all five algorithms across the sharded backends.

Process hygiene: the cache is per-process state.  Sharded worker processes
call :func:`reset_geometry_cache` on (re)spawn so driver-side contents
never leak across workers; the ``REPRO_NO_GEOM_CACHE`` environment
variable (set by ``repro-cli analyze --no-geom-cache``) disables the fast
path and propagates to forked workers.

Thread note: the thread backend shares this process-wide cache across
replica analyses.  Individual dict operations are atomic under the GIL and
cached values are immutable, so races are benign — at worst two threads
duplicate a miss computation (equal results; last write wins) or a counter
increment is lost.  The hit/miss statistics are therefore approximate
under the thread backend; they are observability data, never part of a
fingerprint.
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.geometry import index_space as _ixmod
from repro.geometry.index_space import IndexSpace

#: Environment escape hatch: any truthy value disables the fast path
#: (read at cache construction/reset so forked workers inherit it).
ENV_DISABLE = "REPRO_NO_GEOM_CACHE"

_MISS = object()  # sentinel: cached False must be distinguishable

#: Globally unique generation tags.  Per-instance memos on IndexSpace
#: objects (``space._uid``) are tagged with the assigning cache's
#: generation; drawing generations from one process-wide counter means a
#: memo written by one cache instance can never be mistaken for an
#: assignment by another (tenant caches in the analysis service coexist
#: with the process-wide cache over the same interned spaces).
_GENERATIONS = iter(range(1 << 62)).__next__


def _env_enabled() -> bool:
    return os.environ.get(ENV_DISABLE, "").strip().lower() not in (
        "1", "true", "yes", "on")


class GeometryCache:
    """Process-wide interner + versioned operation cache for index spaces.

    ``capacity`` bounds each table (the intern table and each per-operator
    result table) independently; a full table is cleared wholesale —
    cheaper and simpler than LRU bookkeeping, and the working set of an
    iterative application re-warms in one iteration.  Interned uids are
    never reused (``_next_uid`` is monotonic), so clearing the intern
    table can only lose sharing, never correctness.
    """

    def __init__(self, capacity: int = 1 << 16,
                 enabled: Optional[bool] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._generation = _GENERATIONS()
        self._next_uid = 0
        self._init_state(enabled)

    def _init_state(self, enabled: Optional[bool]) -> None:
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self._intern: dict[tuple, int] = {}
        #: monotonically increasing; bumped by :meth:`invalidate`
        self.version = 0
        self._and: dict[tuple[int, int], IndexSpace] = {}
        self._or: dict[tuple[int, int], IndexSpace] = {}
        self._sub: dict[tuple[int, int], IndexSpace] = {}
        self._ovl: dict[tuple[int, int], bool] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def uid_of(self, space: IndexSpace) -> int:
        """The stable small uid of a space's *content*.

        Equal-content spaces share a uid (hash-consing); the assignment is
        memoized on the instance, tagged with the cache generation so
        memos from before a :meth:`reset` are never trusted.
        """
        memo = space._uid
        if memo is not None and memo[0] == self._generation:
            return memo[1]
        idx = space._indices
        key = (idx.size, space._lo, space._hi,
               hashlib.sha1(idx.tobytes()).digest())
        uid = self._intern.get(key)
        if uid is None:
            if len(self._intern) >= self.capacity:
                self.evictions += len(self._intern)
                self._intern.clear()
            uid = self._next_uid
            self._next_uid += 1
            self._intern[key] = uid
        space._uid = (self._generation, uid)
        return uid

    # ------------------------------------------------------------------
    # cached operators (called from IndexSpace via the module hook)
    # ------------------------------------------------------------------
    def _store(self, table: dict, key: tuple[int, int], value) -> None:
        if len(table) >= self.capacity:
            self.evictions += len(table)
            table.clear()
        table[key] = value

    def intersection(self, a: IndexSpace, b: IndexSpace) -> IndexSpace:
        if not self.enabled:
            return a._intersection_raw(b)
        ua, ub = self.uid_of(a), self.uid_of(b)
        key = (ua, ub) if ua <= ub else (ub, ua)
        got = self._and.get(key)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        out = a._intersection_raw(b)
        self._store(self._and, key, out)
        return out

    def union(self, a: IndexSpace, b: IndexSpace) -> IndexSpace:
        if not self.enabled:
            return a._union_raw(b)
        ua, ub = self.uid_of(a), self.uid_of(b)
        key = (ua, ub) if ua <= ub else (ub, ua)
        got = self._or.get(key)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        out = a._union_raw(b)
        self._store(self._or, key, out)
        return out

    def difference(self, a: IndexSpace, b: IndexSpace) -> IndexSpace:
        if not self.enabled:
            return a._difference_raw(b)
        key = (self.uid_of(a), self.uid_of(b))  # ordered: a - b != b - a
        got = self._sub.get(key)
        if got is not None:
            self.hits += 1
            return got
        self.misses += 1
        out = a._difference_raw(b)
        self._store(self._sub, key, out)
        return out

    def overlaps(self, a: IndexSpace, b: IndexSpace) -> bool:
        if not self.enabled:
            return a._overlaps_raw(b)
        ua, ub = self.uid_of(a), self.uid_of(b)
        key = (ua, ub) if ua <= ub else (ub, ua)
        got = self._ovl.get(key, _MISS)
        if got is not _MISS:
            self.hits += 1
            return got
        self.misses += 1
        out = a._overlaps_raw(b)
        self._store(self._ovl, key, out)
        return out

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached operation result and bump the version.

        Wired to store mutations that retire whole populations of spaces
        (e.g. :meth:`BucketStore.rebucket`): the results stay *valid* —
        spaces are immutable — but the stores will never ask about those
        pairs again, so holding them is pure memory pressure.  Interned
        uids survive (content-addressed, monotonic, never reused).
        """
        self._and.clear()
        self._or.clear()
        self._sub.clear()
        self._ovl.clear()
        self.version += 1
        self.invalidations += 1

    def reset(self, enabled: Optional[bool] = None) -> None:
        """Return to a pristine state, distrusting every per-instance memo.

        Sharded worker processes call this on (re)spawn: a forked worker
        inherits the driver's cache by memory copy, and per-process cache
        state must be rebuilt, not leaked.  Re-reads ``REPRO_NO_GEOM_CACHE``
        unless ``enabled`` is given explicitly.
        """
        self._generation = _GENERATIONS()
        self._init_state(enabled)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Counter snapshot (also the ``--profile`` table source)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "interned": len(self._intern),
            "entries": (len(self._and) + len(self._or)
                        + len(self._sub) + len(self._ovl)),
            "enabled": int(self.enabled),
        }

    def publish_to(self, registry, **labels) -> None:
        """Publish totals into a
        :class:`repro.obs.metrics.MetricsRegistry` as ``geom.cache.*``
        (idempotent, matching the ``CostMeter.publish_to`` pattern)."""
        s = self.stats()
        for event in ("hits", "misses", "evictions", "invalidations"):
            registry.counter(f"geom.cache.{event}", **labels).set_total(
                s[event])
        registry.gauge("geom.cache.interned", **labels).set(s["interned"])
        registry.gauge("geom.cache.entries", **labels).set(s["entries"])
        registry.gauge("geom.cache.enabled", **labels).set(s["enabled"])

    def render(self) -> str:
        """One-line summary for the CLI ``--profile`` output."""
        s = self.stats()
        total = s["hits"] + s["misses"]
        rate = (100.0 * s["hits"] / total) if total else 0.0
        state = "on" if s["enabled"] else "off"
        return (f"geometry cache [{state}]: {s['hits']} hits / "
                f"{s['misses']} misses ({rate:.1f}% hit rate), "
                f"{s['interned']} interned, {s['entries']} entries, "
                f"{s['evictions']} evicted, "
                f"{s['invalidations']} invalidations")

    def __repr__(self) -> str:
        return f"GeometryCache({self.render()})"


# ----------------------------------------------------------------------
# the process-wide instance and its hook into IndexSpace
# ----------------------------------------------------------------------
_CACHE = GeometryCache()
_ixmod._op_cache = _CACHE  # IndexSpace operators dispatch through this

# Per-thread cache overrides (tenant isolation for the analysis service).
# Routing is *engaged* only while at least one override is installed:
# the default state keeps IndexSpace dispatching straight at the global
# cache, so non-service runs pay nothing for this seam.
_TLS = threading.local()
_ROUTING_LOCK = threading.Lock()
_ROUTING = 0  # live override count; > 0 => router installed


class _CacheRouter:
    """Dispatch target installed while tenant overrides exist: routes
    each operator call to the calling thread's override cache, falling
    back to the process-wide cache for threads without one."""

    __slots__ = ()

    def intersection(self, a, b):
        return active_geometry_cache().intersection(a, b)

    def difference(self, a, b):
        return active_geometry_cache().difference(a, b)

    def union(self, a, b):
        return active_geometry_cache().union(a, b)

    def overlaps(self, a, b):
        return active_geometry_cache().overlaps(a, b)


_ROUTER = _CacheRouter()


def active_geometry_cache() -> GeometryCache:
    """The cache serving the calling thread: its installed override
    when routing is engaged, else the process-wide instance."""
    if _ROUTING:
        override = getattr(_TLS, "cache", None)
        if override is not None:
            return override
    return _CACHE


@contextmanager
def tenant_geometry_cache(cache: GeometryCache) -> Iterator[GeometryCache]:
    """Serve every geometry operation on the calling thread from
    ``cache`` for the duration of the block.

    The analysis service wraps each tenant session's driver-side
    analysis in this scope so one tenant's churn can never evict
    another's cached results (worker processes are already isolated:
    each tenant's backend owns its workers, and each worker resets its
    process-wide cache on spawn via :func:`reset_geometry_cache`).
    Overrides nest; restoring the outer value on exit.
    """
    global _ROUTING
    previous = getattr(_TLS, "cache", None)
    _TLS.cache = cache
    with _ROUTING_LOCK:
        _ROUTING += 1
        _ixmod._op_cache = _ROUTER
    try:
        yield cache
    finally:
        _TLS.cache = previous
        with _ROUTING_LOCK:
            _ROUTING -= 1
            if _ROUTING == 0:
                _ixmod._op_cache = _CACHE


def geometry_cache() -> GeometryCache:
    """The process-wide cache instance."""
    return _CACHE


def reset_geometry_cache(enabled: Optional[bool] = None) -> None:
    """Reset the process-wide cache (worker spawn/respawn hygiene)."""
    _CACHE.reset(enabled)


def set_geometry_cache_enabled(flag: bool) -> None:
    """Turn the fast path on or off without dropping its contents."""
    _CACHE.enabled = bool(flag)


@contextmanager
def geometry_cache_disabled() -> Iterator[None]:
    """Temporarily run uncached (differential harness / ablations)."""
    prev = _CACHE.enabled
    _CACHE.enabled = False
    try:
        yield
    finally:
        _CACHE.enabled = prev


# ----------------------------------------------------------------------
# the batched interference kernel
# ----------------------------------------------------------------------
def batch_overlaps(query: IndexSpace,
                   candidates: Sequence[IndexSpace], *,
                   lo: Optional[np.ndarray] = None,
                   hi: Optional[np.ndarray] = None,
                   nonempty: Optional[np.ndarray] = None) -> np.ndarray:
    """``[query.overlaps(c) for c in candidates]`` in one vectorized pass.

    Three stages, mirroring a graphics broad-phase/narrow-phase split:

    1. **Stacked bounds prefilter** — candidate ``(lo, hi)`` intervals are
       stacked into arrays and tested against the query's bounds with two
       vector comparisons; empty candidates and bbox-disjoint ones resolve
       to False without touching element data.
    2. **Cache probe** — pairs already answered by the operation cache are
       filled in directly.
    3. **Merged-run sweep** — every remaining candidate's indices are
       concatenated into one array, located in the query with a *single*
       ``searchsorted``, and reduced to per-candidate verdicts with one
       ``logical_or.reduceat`` over the segment starts.

    The per-pair answers are exactly what scalar ``overlaps`` returns
    (overlap is symmetric, so probing candidates into the query is
    equivalent to the scalar path's smaller-into-larger probe), and
    resolved pairs are stored back into the cache.  No meter is touched —
    callers that meter per-candidate tests keep doing so themselves.

    Callers holding the candidates in columnar form (a
    :class:`~repro.visibility.history.ColumnarHistory`) pass the stage-1
    inputs directly via ``lo``/``hi``/``nonempty`` — aligned arrays, one
    element per candidate — and skip the per-candidate attribute walks.
    """
    n = len(candidates)
    out = np.zeros(n, dtype=bool)
    if n == 0 or query.is_empty:
        return out
    qlo, qhi = query.bounds
    if lo is None:
        lo = np.fromiter((c._lo for c in candidates), dtype=np.int64,
                         count=n)
        hi = np.fromiter((c._hi for c in candidates), dtype=np.int64,
                         count=n)
        nonempty = np.fromiter((c._indices.size > 0 for c in candidates),
                               dtype=bool, count=n)
    live = np.flatnonzero(nonempty & (lo <= qhi) & (hi >= qlo))
    if live.size == 0:
        return out

    cache = active_geometry_cache()
    cache = cache if cache.enabled else None
    unresolved: list[tuple[int, Optional[tuple[int, int]]]] = []
    if cache is not None:
        uq = cache.uid_of(query)
        table = cache._ovl
        for i in live:
            uc = cache.uid_of(candidates[i])
            key = (uq, uc) if uq <= uc else (uc, uq)
            got = table.get(key, _MISS)
            if got is _MISS:
                unresolved.append((int(i), key))
            else:
                cache.hits += 1
                out[i] = got
    else:
        unresolved = [(int(i), None) for i in live]
    if not unresolved:
        return out

    qidx = query._indices
    segments = [candidates[i]._indices for i, _ in unresolved]
    lengths = np.fromiter((s.size for s in segments), dtype=np.int64,
                          count=len(segments))
    stacked = segments[0] if len(segments) == 1 else np.concatenate(segments)
    pos = np.searchsorted(qidx, stacked)
    np.minimum(pos, qidx.size - 1, out=pos)
    found = qidx[pos] == stacked
    starts = np.zeros(len(segments), dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    verdicts = np.logical_or.reduceat(found, starts)
    for (i, key), verdict in zip(unresolved, verdicts):
        hit = bool(verdict)
        out[i] = hit
        if cache is not None:
            cache.misses += 1
            cache._store(cache._ovl, key, hit)
    return out
