"""Bounding-volume hierarchy over index spaces.

Sections 6.1 and 7.1 of the paper accelerate equivalence-set lookup with a
BVH: interior nodes hold a bounding volume, leaves hold the actual sets, and
a query for region ``R`` descends only into children whose bounds intersect
``R``'s bounds.  Warnock's refinement tree *is* its own BVH (built in
:mod:`repro.visibility.warnock`); this module provides the standalone
structure used by the ray-casting K-d fallback and by tests.

Bounding volumes here are 1-D inclusive intervals over the linearized index
space — the exact analog of axis-aligned bounding boxes in graphics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

import numpy as np

from repro.errors import GeometryError
from repro.geometry.index_space import IndexSpace

# A leaf item is (bounds, space, payload).
Item = tuple[tuple[int, int], IndexSpace, Any]

_LEAF_CAPACITY = 8


@dataclass
class BVHNode:
    """One node of the hierarchy.

    Interior nodes carry ``children``; leaves carry ``items``.  ``lo``/``hi``
    is the inclusive bounding interval of everything beneath the node.
    """

    lo: int
    hi: int
    children: list["BVHNode"] = field(default_factory=list)
    items: list[Item] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True for nodes that store items directly."""
        return not self.children

    def overlaps(self, lo: int, hi: int) -> bool:
        """Interval-overlap test against the node's bounds."""
        return self.lo <= hi and lo <= self.hi


class BVH:
    """A rebuildable median-split BVH over (IndexSpace, payload) items.

    Insertions are buffered; the tree is rebuilt lazily once the buffer
    outgrows a fraction of the indexed set, giving amortized O(log n)
    queries without incremental-update complexity (mirroring how the Legion
    implementation rebuilds its acceleration structures when partition
    usage shifts, section 7.1).
    """

    def __init__(self, leaf_capacity: int = _LEAF_CAPACITY) -> None:
        if leaf_capacity < 1:
            raise GeometryError("leaf_capacity must be >= 1")
        self._leaf_capacity = leaf_capacity
        self._root: Optional[BVHNode] = None
        self._pending: list[Item] = []
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of live items in the index."""
        return self._count

    def insert(self, space: IndexSpace, payload: Any) -> None:
        """Index ``payload`` under the bounds of ``space``.

        Empty spaces are ignored: they can never overlap a query.
        """
        if space.is_empty:
            return
        self._pending.append((space.bounds, space, payload))
        self._count += 1
        if self._root is None or len(self._pending) * 4 > self._count:
            self._rebuild()

    def remove(self, payload: Any) -> bool:
        """Remove the first item whose payload is ``payload`` (by identity).

        Returns True when something was removed.
        """
        for bucket in self._buckets():
            for i, (_, _, p) in enumerate(bucket):
                if p is payload:
                    del bucket[i]
                    self._count -= 1
                    return True
        return False

    def query(self, space: IndexSpace) -> list[Any]:
        """Payloads whose *bounding interval* overlaps ``space``'s bounds.

        Conservative: callers must still run an exact intersection test —
        exactly like a graphics BVH returning candidate primitives.
        """
        if space.is_empty:
            return []
        lo, hi = space.bounds
        return self.query_interval(lo, hi)

    def query_interval(self, lo: int, hi: int) -> list[Any]:
        """Payloads whose bounding interval overlaps ``[lo, hi]``."""
        out: list[Any] = []
        for (ilo, ihi), _, payload in self._pending:
            if ilo <= hi and lo <= ihi:
                out.append(payload)
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                if not node.overlaps(lo, hi):
                    continue
                if node.is_leaf:
                    for (ilo, ihi), _, payload in node.items:
                        if ilo <= hi and lo <= ihi:
                            out.append(payload)
                else:
                    stack.extend(node.children)
        return out

    def query_exact(self, space: IndexSpace) -> list[Any]:
        """Payloads whose index space truly overlaps ``space``.

        Bounds-surviving candidates are resolved in one batched
        interference pass instead of per-item scalar tests.
        """
        from repro.geometry.fastpath import batch_overlaps

        if space.is_empty:
            return []
        lo, hi = space.bounds
        candidates: list[tuple[IndexSpace, Any]] = []
        for bucket in self._buckets():
            for (ilo, ihi), item_space, payload in bucket:
                if ilo <= hi and lo <= ihi:
                    candidates.append((item_space, payload))
        if not candidates:
            return []
        hits = batch_overlaps(space, [s for s, _ in candidates])
        return [payload for (_, payload), hit in zip(candidates, hits)
                if hit]

    def __iter__(self) -> Iterator[Any]:
        for bucket in self._buckets():
            for _, _, payload in bucket:
                yield payload

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    def _buckets(self) -> Iterator[list[Item]]:
        """Yield every mutable item bucket (pending + leaves)."""
        yield self._pending
        if self._root is not None:
            stack = [self._root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    yield node.items
                else:
                    stack.extend(node.children)

    def _rebuild(self) -> None:
        items = [it for bucket in self._buckets() for it in bucket]
        self._pending = []
        self._count = len(items)
        self._root = _build(items, self._leaf_capacity) if items else None

    def depth(self) -> int:
        """Height of the built tree (0 when empty); diagnostics only."""
        self._rebuild()
        if self._root is None:
            return 0

        def _d(node: BVHNode) -> int:
            if node.is_leaf:
                return 1
            return 1 + max(_d(c) for c in node.children)

        return _d(self._root)


def _build(items: list[Item], leaf_capacity: int) -> BVHNode:
    """Recursive median split on interval centers."""
    lo = min(b[0] for b, _, _ in items)
    hi = max(b[1] for b, _, _ in items)
    node = BVHNode(lo=lo, hi=hi)
    if len(items) <= leaf_capacity:
        node.items = list(items)
        return node
    centers = np.asarray([(b[0] + b[1]) / 2.0 for b, _, _ in items])
    order = np.argsort(centers, kind="stable")
    mid = len(items) // 2
    left = [items[i] for i in order[:mid]]
    right = [items[i] for i in order[mid:]]
    node.children = [_build(left, leaf_capacity), _build(right, leaf_capacity)]
    return node
