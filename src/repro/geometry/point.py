"""Dense n-dimensional integer geometry: extents and rectangles.

The structured applications (Stencil, and the mesh generators behind
Pennant) describe their data as dense n-D grids.  A :class:`Rect` is a
closed integer box ``[lo, hi]`` (inclusive on both ends, matching Legion's
convention); an :class:`Extent` is the shape of the root grid and provides
the row-major linearization used to embed n-D points into the 1-D index
space that :class:`~repro.geometry.index_space.IndexSpace` operates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import GeometryError


@dataclass(frozen=True)
class Extent:
    """Shape of a dense n-D root grid, with row-major linearization.

    Parameters
    ----------
    shape:
        Length of the grid in each dimension; every entry must be positive.
    """

    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.shape) == 0:
            raise GeometryError("Extent must have at least one dimension")
        if any(s <= 0 for s in self.shape):
            raise GeometryError(f"Extent dimensions must be positive: {self.shape}")

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def volume(self) -> int:
        """Total number of points in the grid."""
        return int(np.prod(self.shape))

    @property
    def strides(self) -> tuple[int, ...]:
        """Row-major strides, in points (not bytes)."""
        out = [1] * self.dim
        for d in range(self.dim - 2, -1, -1):
            out[d] = out[d + 1] * self.shape[d + 1]
        return tuple(out)

    def full_rect(self) -> "Rect":
        """The rectangle covering the whole grid."""
        return Rect(tuple(0 for _ in self.shape), tuple(s - 1 for s in self.shape))

    def linearize(self, coords: np.ndarray) -> np.ndarray:
        """Map an ``(n, dim)`` array of coordinates to flat indices.

        Coordinates outside the extent raise :class:`GeometryError`.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.ndim == 1:
            coords = coords.reshape(1, -1)
        if coords.shape[1] != self.dim:
            raise GeometryError(
                f"coordinate dim {coords.shape[1]} != extent dim {self.dim}"
            )
        shape = np.asarray(self.shape, dtype=np.int64)
        if coords.size and ((coords < 0) | (coords >= shape)).any():
            raise GeometryError("coordinates out of extent bounds")
        strides = np.asarray(self.strides, dtype=np.int64)
        return coords @ strides

    def delinearize(self, indices: np.ndarray) -> np.ndarray:
        """Map flat indices back to an ``(n, dim)`` coordinate array."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and ((indices < 0) | (indices >= self.volume)).any():
            raise GeometryError("flat indices out of extent bounds")
        out = np.empty((indices.shape[0], self.dim), dtype=np.int64)
        rem = indices
        for d, stride in enumerate(self.strides):
            out[:, d], rem = np.divmod(rem, stride)
        return out


@dataclass(frozen=True)
class Rect:
    """A closed n-D integer rectangle ``[lo, hi]`` (both bounds inclusive).

    An empty rectangle is represented by any ``lo[d] > hi[d]``; use
    :meth:`empty` as the canonical constructor for one.
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise GeometryError(f"lo/hi rank mismatch: {self.lo} vs {self.hi}")
        if len(self.lo) == 0:
            raise GeometryError("Rect must have at least one dimension")

    @staticmethod
    def empty(dim: int) -> "Rect":
        """The canonical empty rectangle of a given dimensionality."""
        return Rect(tuple(0 for _ in range(dim)), tuple(-1 for _ in range(dim)))

    @property
    def dim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def is_empty(self) -> bool:
        """True when the rectangle contains no points."""
        return any(l > h for l, h in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of integer points inside the rectangle."""
        if self.is_empty:
            return 0
        return int(np.prod([h - l + 1 for l, h in zip(self.lo, self.hi)]))

    def contains_point(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the rectangle."""
        if len(point) != self.dim:
            raise GeometryError("point rank mismatch")
        return all(l <= p <= h for p, l, h in zip(point, self.lo, self.hi))

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` is entirely inside this rectangle."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return all(sl <= ol and oh <= sh
                   for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi))

    def intersect(self, other: "Rect") -> "Rect":
        """The rectangle intersection (possibly empty)."""
        if other.dim != self.dim:
            raise GeometryError("rect rank mismatch")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        r = Rect(lo, hi)
        return r if not r.is_empty else Rect.empty(self.dim)

    def overlaps(self, other: "Rect") -> bool:
        """True when the two rectangles share at least one point."""
        return not self.intersect(other).is_empty

    def clamp(self, extent: Extent) -> "Rect":
        """Clip the rectangle to lie within ``extent``."""
        return self.intersect(extent.full_rect())

    def points(self) -> Iterator[tuple[int, ...]]:
        """Iterate all integer points in row-major order (small rects only)."""
        if self.is_empty:
            return
        ranges = [range(l, h + 1) for l, h in zip(self.lo, self.hi)]
        # row-major: last dimension varies fastest
        idx = [r.start for r in ranges]
        grids = np.meshgrid(*[np.arange(l, h + 1) for l, h in zip(self.lo, self.hi)],
                            indexing="ij")
        stacked = np.stack([g.ravel() for g in grids], axis=1)
        for row in stacked:
            yield tuple(int(x) for x in row)
        del idx, ranges

    def linearize(self, extent: Extent) -> np.ndarray:
        """Flat row-major indices of every point of the rect within ``extent``.

        The result is sorted ascending (a property the index-space layer
        relies on) and is computed fully vectorized.
        """
        if self.dim != extent.dim:
            raise GeometryError("rect/extent rank mismatch")
        clipped = self.clamp(extent)
        if clipped.is_empty:
            return np.empty(0, dtype=np.int64)
        strides = extent.strides
        axes = [np.arange(l, h + 1, dtype=np.int64) * strides[d]
                for d, (l, h) in enumerate(zip(clipped.lo, clipped.hi))]
        flat = axes[0]
        for ax in axes[1:]:
            flat = (flat[:, None] + ax[None, :]).ravel()
        return flat
