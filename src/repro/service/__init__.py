"""Always-on multi-tenant analysis service over ShardedRuntime.

Lazy exports (PEP 562): importing :mod:`repro.service` — or just its
leaf modules like :mod:`repro.service.metrics` — must stay cheap and
cycle-free, because the distributed layer may want to publish
``service.*`` metrics without pulling the asyncio front-end in.
"""

from __future__ import annotations

_EXPORTS = {
    "AnalysisService": "repro.service.service",
    "verify_sessions": "repro.service.service",
    "session_stream": "repro.service.service",
    "make_app": "repro.service.service",
    "SessionRequest": "repro.service.session",
    "SessionResult": "repro.service.session",
    "TokenBucket": "repro.service.admission",
    "WatermarkGate": "repro.service.admission",
    "DeadlineBudget": "repro.service.admission",
    "CircuitBreaker": "repro.service.breaker",
    "ServiceMetrics": "repro.service.metrics",
    "ServiceLedger": "repro.service.errors",
    "ServiceEvent": "repro.service.errors",
    "Overloaded": "repro.service.errors",
    "DeadlineExceeded": "repro.service.errors",
    "OK": "repro.service.errors",
    "OVERLOADED": "repro.service.errors",
    "DEADLINE_EXCEEDED": "repro.service.errors",
    "ERROR": "repro.service.errors",
    "STATUSES": "repro.service.errors",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
