"""Admission-control primitives: token bucket, watermark gate, deadline.

Every class here is a pure control-plane state machine over an
injectable clock (:class:`~repro.distributed.faults.SystemClock` /
:class:`~repro.distributed.faults.FakeClock`), so the unit tests in
``tests/service/test_admission.py`` drive refill, hysteresis and expiry
without ever sleeping.  None of them know about asyncio or tenants —
:class:`~repro.service.service.AnalysisService` composes them.
"""

from __future__ import annotations

from typing import Optional

from repro.distributed.faults import SystemClock
from repro.errors import MachineError


class TokenBucket:
    """A bounded per-tenant request budget.

    ``burst`` tokens maximum, refilled continuously at ``rate`` tokens
    per second (lazy accounting: the refill happens on access, from the
    elapsed clock time, so an idle bucket costs nothing).  The bucket
    starts full — a fresh tenant gets its burst immediately.
    """

    def __init__(self, rate: float, burst: float,
                 clock=None) -> None:
        if rate <= 0:
            raise MachineError(f"token rate {rate} must be positive")
        if burst < 1:
            raise MachineError(f"burst {burst} must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else SystemClock()
        self._tokens = self.burst
        self._last = self._clock.monotonic()

    def _refill(self) -> None:
        now = self._clock.monotonic()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._last = now

    @property
    def available(self) -> float:
        """Current token balance (after lazy refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if the balance covers them; never blocks."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


class WatermarkGate:
    """Queue-depth hysteresis: pause intake at ``high``, resume at ``low``.

    Plain hysteresis (not a single threshold) so a queue hovering around
    the limit doesn't flap the paused state — once paused, the tenant
    stays paused until the worker has drained the backlog down to
    ``low``.
    """

    def __init__(self, high: int, low: int) -> None:
        if not 0 <= low < high:
            raise MachineError(
                f"watermarks need 0 <= low < high, got low={low} "
                f"high={high}")
        self.high = high
        self.low = low
        self.paused = False
        self.pause_count = 0

    def update(self, depth: int) -> bool:
        """Fold the current queue depth in; returns the paused state."""
        if not self.paused and depth >= self.high:
            self.paused = True
            self.pause_count += 1
        elif self.paused and depth <= self.low:
            self.paused = False
        return self.paused


class DeadlineBudget:
    """A session's remaining wall-clock allowance.

    Created at admission (the clock starts ticking while the request is
    still queued — a deadline is a promise to the tenant, not to the
    executor).  ``deadline=None`` never expires.
    """

    def __init__(self, deadline: Optional[float], clock=None) -> None:
        if deadline is not None and deadline <= 0:
            raise MachineError(f"deadline {deadline} must be positive")
        self._clock = clock if clock is not None else SystemClock()
        self.deadline = deadline
        self.started = self._clock.monotonic()

    def elapsed(self) -> float:
        return self._clock.monotonic() - self.started

    def remaining(self) -> Optional[float]:
        """Seconds left (``None`` = unbounded; never negative)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self.elapsed())

    def expired(self) -> bool:
        return self.deadline is not None and self.elapsed() >= self.deadline
