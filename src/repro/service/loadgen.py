"""Seeded multi-tenant load generator (bench + smoke driver).

Builds a deterministic request schedule — mixed Stencil/Circuit/Pennant
tenants with heavy zipf-style skew (tenant 0 submits ~half the traffic)
— drives it through an :class:`~repro.service.service.AnalysisService`,
and summarizes outcomes and latency percentiles for
``BENCH_service.json``.  Same seed ⇒ same schedule, every run, every
machine; the chaos smoke in CI leans on that to compare fingerprints
against cold runs.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import MachineError
from repro.service.session import SessionRequest

#: Tenant i analyzes APPS_CYCLE[i % 3] with ALGOS_CYCLE[i % 3] — mixed
#: applications and algorithms across the tenant population.
APPS_CYCLE = ("stencil", "circuit", "pennant")
ALGOS_CYCLE = ("raycast", "warnock", "tree_painter")


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible load shape."""

    seed: int = 0
    tenants: int = 3
    sessions: int = 24
    pieces: int = 4
    iterations: int = 1
    skew: float = 1.0      #: zipf exponent over tenant ranks (0 = uniform)
    deadline: Optional[float] = None
    apps: Sequence[str] = APPS_CYCLE
    algorithms: Sequence[str] = ALGOS_CYCLE

    def tenant_name(self, rank: int) -> str:
        return f"tenant{rank}"

    def request_for(self, rank: int) -> SessionRequest:
        return SessionRequest(
            tenant=self.tenant_name(rank),
            app=self.apps[rank % len(self.apps)],
            pieces=self.pieces,
            iterations=self.iterations,
            algorithm=self.algorithms[rank % len(self.algorithms)],
            deadline=self.deadline)


def build_requests(spec: LoadSpec) -> list[SessionRequest]:
    """The deterministic submission schedule: ``sessions`` requests with
    tenant ranks drawn from a zipf-skewed categorical."""
    if spec.tenants < 1:
        raise MachineError("need at least one tenant")
    if spec.sessions < 1:
        raise MachineError("need at least one session")
    rng = random.Random(spec.seed)
    weights = [1.0 / (rank + 1) ** spec.skew for rank in range(spec.tenants)]
    ranks = rng.choices(range(spec.tenants), weights=weights,
                        k=spec.sessions)
    return [spec.request_for(rank) for rank in ranks]


async def drive(service, requests: Sequence[SessionRequest],
                gap: float = 0.0) -> list:
    """Submit the schedule concurrently (each submission is its own
    task; ``gap`` seconds of pacing between launches) and gather every
    terminal result in submission order."""
    tasks = []
    for request in requests:
        tasks.append(asyncio.ensure_future(service.submit(request)))
        if gap > 0:
            await asyncio.sleep(gap)
        else:
            # yield so per-tenant workers interleave with submissions
            await asyncio.sleep(0)
    return list(await asyncio.gather(*tasks))


def summarize(results, service=None) -> dict:
    """Outcome counts + latency stats over the completed sessions."""
    by_status: dict[str, int] = {}
    by_tenant: dict[str, int] = {}
    latencies = []
    degraded = 0
    for result in results:
        by_status[result.status] = by_status.get(result.status, 0) + 1
        by_tenant[result.tenant] = by_tenant.get(result.tenant, 0) + 1
        if result.ok:
            latencies.append(result.seconds)
            degraded += int(result.degraded)
    latencies.sort()

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        k = min(len(latencies) - 1, max(0, round(q * (len(latencies) - 1))))
        return latencies[k]

    out = {
        "sessions": len(results),
        "by_status": dict(sorted(by_status.items())),
        "by_tenant": dict(sorted(by_tenant.items())),
        "degraded": degraded,
        "latency": {"p50": pct(0.50), "p95": pct(0.95), "p99": pct(0.99),
                    "mean": (sum(latencies) / len(latencies)
                             if latencies else 0.0)},
    }
    if service is not None:
        out["service"] = service.census_block()
    return out


def run_load(spec: LoadSpec, gap: float = 0.0, hub=None,
             **service_kwargs) -> tuple:
    """Synchronous driver: boot a service, run the schedule, stop.

    Returns ``(results, summary)``.  Keyword arguments go to
    :class:`~repro.service.service.AnalysisService`.

    ``hub`` (a :class:`~repro.obs.telemetry.TelemetryHub`) is sampled
    on its own interval from an asyncio task for the duration of the
    run — same event loop as the service, so its samplers can read slot
    state without locks — with the service's runtime sampler attached
    and one final flush tick after the last session resolves.
    """
    from repro.service.service import AnalysisService

    async def sample_loop(active_hub):
        while True:
            active_hub.sample()
            await asyncio.sleep(active_hub.interval)

    async def main():
        async with AnalysisService(**service_kwargs) as service:
            ticker = None
            if hub is not None:
                hub.add_sampler(service.telemetry_sampler())
                if hub.evaluator is not None \
                        and hub.evaluator.ledger is None:
                    hub.evaluator.ledger = service.ledger
                ticker = asyncio.ensure_future(sample_loop(hub))
            try:
                results = await drive(service, build_requests(spec),
                                      gap=gap)
            finally:
                if ticker is not None:
                    ticker.cancel()
                    try:
                        await ticker
                    except asyncio.CancelledError:
                        pass
                    hub.sample()  # flush the tail of the run
            return results, summarize(results, service)

    return asyncio.run(main())
