"""The ``service.*`` instrument surface.

One thin facade over :class:`repro.obs.metrics.MetricsRegistry` so the
service code reads as intent (``metrics.rejected(tenant, reason)``)
rather than registry plumbing, and so the *disabled* path — no registry
attached — is a single ``None`` test per hook.  The overhead proof in
``benchmarks/test_obs_overhead.py`` pins that property: a service-less
run pays nothing for these instruments existing.

Instruments:

* counters ``service.admitted`` / ``service.rejected`` (labelled by
  rejection reason) / ``service.completed`` / ``service.expired`` /
  ``service.errors`` / ``service.degraded_sessions``, per tenant;
* gauges ``service.queue_depth{tenant}``, ``service.paused{tenant}``,
  ``service.inflight``, ``service.tenants``, ``service.breaker``
  (0=closed, 1=half-open, 2=open);
* histograms ``service.latency_seconds`` (global) and
  ``service.latency_seconds{tenant}`` (per tenant — the series the
  telemetry hub's windowed quantile digests are built from) with
  p50/p95/p99 summary via
  :meth:`~repro.obs.metrics.Histogram.quantile_summary`.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry

#: Latency buckets (seconds): service sessions run milliseconds to tens
#: of seconds; finer-grained at the low end than the analysis default.
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class ServiceMetrics:
    """Publishes service control-plane state; no-op without a registry.

    ``exemplars``/``exemplar_seed`` configure the latency histograms'
    per-bucket exemplar reservoirs (see
    :class:`repro.obs.metrics.Histogram`); zero keeps the histograms
    exemplar-free, exactly as before.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 exemplars: int = 0, exemplar_seed: int = 0) -> None:
        self.registry = registry
        self.exemplars = int(exemplars)
        self.exemplar_seed = int(exemplar_seed)

    @property
    def enabled(self) -> bool:
        return self.registry is not None

    # -- admission ------------------------------------------------------
    def admitted(self, tenant: str) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.admitted", tenant=tenant).inc()

    def rejected(self, tenant: str, reason: str) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.rejected", tenant=tenant,
                              reason=reason).inc()

    # -- completion -----------------------------------------------------
    def completed(self, tenant: str, seconds: float,
                  exemplar: Optional[dict] = None) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.completed", tenant=tenant).inc()
        # global and per-tenant latency series: the telemetry hub's
        # windowed digests need the tenant label to answer "what is
        # tenant X's p99 right now" without storing raw samples
        self.registry.histogram(
            "service.latency_seconds", buckets=LATENCY_BUCKETS,
            exemplars=self.exemplars,
            exemplar_seed=self.exemplar_seed).observe(seconds, exemplar)
        self.registry.histogram(
            "service.latency_seconds", buckets=LATENCY_BUCKETS,
            exemplars=self.exemplars, exemplar_seed=self.exemplar_seed,
            tenant=tenant).observe(seconds, exemplar)

    def expired(self, tenant: str) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.expired", tenant=tenant).inc()

    def errored(self, tenant: str) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.errors", tenant=tenant).inc()

    def degraded(self, tenant: str) -> None:
        if self.registry is None:
            return
        self.registry.counter("service.degraded_sessions",
                              tenant=tenant).inc()

    # -- gauges ---------------------------------------------------------
    def set_queue_depth(self, tenant: str, depth: int) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.queue_depth", tenant=tenant).set(depth)

    def set_paused(self, tenant: str, paused: bool) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.paused", tenant=tenant).set(
            1 if paused else 0)

    def set_inflight(self, n: int) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.inflight").set(n)

    def set_tenants(self, n: int) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.tenants").set(n)

    def set_breaker(self, code: int) -> None:
        if self.registry is None:
            return
        self.registry.gauge("service.breaker").set(code)

    # -- summaries ------------------------------------------------------
    def latency_quantiles(self) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` bucket bounds in
        seconds (zeros when disabled or empty)."""
        if self.registry is None:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        hist = self.registry.find("service.latency_seconds")
        if hist is None or hist.count == 0:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return hist.quantile_summary()
