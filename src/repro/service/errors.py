"""Structured failure surface of the analysis service.

The service never lets a tenant session end ambiguously: every submitted
request resolves to a :class:`~repro.service.session.SessionResult`
whose ``status`` is one of the four values below, and every
non-``ok`` outcome is additionally ledgered as a :class:`ServiceEvent`
so operators can reconstruct *why* the service shed load, expired work,
or degraded a backend — long after the sessions themselves are gone.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import MachineError

#: Session terminal statuses.
OK = "ok"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR = "error"

STATUSES = (OK, OVERLOADED, DEADLINE_EXCEEDED, ERROR)

#: Admission-rejection reasons carried by :class:`Overloaded`.
REJECT_RATE = "rate"                  # per-tenant token bucket empty
REJECT_CAPACITY = "capacity"          # global inflight cap reached
REJECT_BACKPRESSURE = "backpressure"  # tenant queue over high water


class ServiceError(MachineError):
    """Base of every structured service failure."""


class Overloaded(ServiceError):
    """Admission control rejected the request instead of queueing it.

    ``reason`` is one of :data:`REJECT_RATE`, :data:`REJECT_CAPACITY`,
    :data:`REJECT_BACKPRESSURE`.
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        super().__init__(
            f"overloaded ({reason})" + (f": {detail}" if detail else ""))


class DeadlineExceeded(ServiceError):
    """The session's deadline budget expired (queued or mid-analysis)."""


@dataclass(frozen=True)
class ServiceEvent:
    """One ledgered control-plane decision.

    ``kind`` ∈ {``rejected``, ``expired``, ``cancelled``, ``errored``,
    ``degraded``, ``breaker``, ``slot_poisoned``, ``alert``}; ``detail``
    carries kind-specific context (rejection reason, breaker
    transition, SLO burn-rate alert transition, ...).
    """

    kind: str
    tenant: str
    session: int = -1
    detail: str = ""
    at: float = 0.0


class ServiceLedger:
    """Append-only, thread-safe record of control-plane events.

    Deliberately tiny: the service is long-lived, so the ledger keeps at
    most ``capacity`` most-recent events (drops the oldest half when
    full) while the *counts* stay exact forever.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._lock = threading.Lock()
        self._events: list[ServiceEvent] = []
        self._counts: dict[str, int] = {}
        self.capacity = max(2, capacity)
        #: Optional observer called with every recorded event, *outside*
        #: the ledger lock (it may do IO — the flight recorder dumps its
        #: rings on alert/breaker/deadline events).
        self.listener = None

    def record(self, kind: str, tenant: str, session: int = -1,
               detail: str = "", at: float = 0.0) -> None:
        event = ServiceEvent(kind, tenant, session, detail, at)
        with self._lock:
            self._counts[kind] = self._counts.get(kind, 0) + 1
            if len(self._events) >= self.capacity:
                del self._events[:self.capacity // 2]
            self._events.append(event)
        listener = self.listener
        if listener is not None:
            listener(event)

    def snapshot(self) -> list[ServiceEvent]:
        with self._lock:
            return list(self._events)

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def count(self, kind: str) -> int:
        with self._lock:
            return self._counts.get(kind, 0)

    def events(self, kind: Optional[str] = None,
               tenant: Optional[str] = None) -> list[ServiceEvent]:
        return [e for e in self.snapshot()
                if (kind is None or e.kind == kind)
                and (tenant is None or e.tenant == tenant)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)
