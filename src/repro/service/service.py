"""The always-on multi-tenant analysis service.

:class:`AnalysisService` is a long-lived asyncio front-end over the
repository's replicated analysis: many tenants submit
:class:`~repro.service.session.SessionRequest` jobs concurrently, and
each tenant's jobs run *in order* on a persistent per-tenant
:class:`~repro.distributed.sharded.ShardedRuntime` slot (analysis state
must evolve sequentially per tenant), while different tenants run in
parallel on an executor-thread pool.

Robustness is structural, not incidental:

* **Admission control** — a per-tenant :class:`TokenBucket` plus a
  global inflight cap; a request that would exceed either resolves
  immediately to a structured ``overloaded`` result instead of joining
  an unbounded queue.
* **Backpressure** — per-tenant queues are bounded, with
  :class:`WatermarkGate` hysteresis pausing intake at the high-water
  mark; queue depth and paused state are live ``service.*`` gauges.
* **Deadlines** — every session carries a :class:`DeadlineBudget`
  started at admission; expiry (queued or mid-analysis) cancels the
  work, ledgers the cancellation, and poisons the slot so the next
  session starts on verified-clean state.
* **Graceful degradation** — a :class:`CircuitBreaker` guards the
  process backend: repeated infrastructure failures (worker loss,
  timeouts) shed it, new slots fall back to serial in-process analysis
  (``degraded=True`` results), and a half-open probe restores the
  process backend automatically.
* **Tenant isolation** — each tenant owns its geometry cache
  (:func:`~repro.geometry.fastpath.tenant_geometry_cache`) and its
  provenance records are tenant-tagged
  (:meth:`~repro.obs.provenance.ProvenanceLedger.scope`); worker
  processes are per-tenant by construction (each slot owns its
  backend).

Correctness bar: :func:`verify_sessions` cold-replays every completed
session's stream on a fresh single-tenant runtime and demands
bit-identical analysis fingerprints — the visibility-reasoning
obligation that concurrent tenants observe results *as if* their stream
ran alone.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.distributed.faults import FaultPlan, SystemClock
from repro.distributed.sharded import ShardedRuntime
from repro.errors import MachineError
from repro.geometry.fastpath import GeometryCache, tenant_geometry_cache
from repro.obs import provenance as prov
from repro.obs import tracer as tracing
from repro.runtime.task import TaskStream
from repro.service.admission import DeadlineBudget, TokenBucket, WatermarkGate
from repro.service.breaker import HALF_OPEN, STATE_CODES, CircuitBreaker
from repro.service.errors import (DEADLINE_EXCEEDED, ERROR, OK, OVERLOADED,
                                  REJECT_BACKPRESSURE, REJECT_CAPACITY,
                                  REJECT_RATE, ServiceLedger)
from repro.service.metrics import ServiceMetrics
from repro.service.session import SessionRequest, SessionResult


def make_app(name: str, pieces: int):
    from repro.apps import APPS

    if name not in APPS:
        raise MachineError(f"unknown app {name!r}; known: {sorted(APPS)}")
    return APPS[name](pieces=pieces)


def session_stream(app, iterations: int, include_init: bool) -> TaskStream:
    """The deterministic task stream of one session: the app's init
    stream (first session on a fresh slot only) plus ``iterations``
    steady iterations."""
    stream = TaskStream()
    if include_init:
        stream.extend_from(app.init_stream())
    for _ in range(iterations):
        stream.extend_from(app.iteration_stream())
    return stream


@dataclass
class _Slot:
    """One persistent per-tenant runtime (lazy-built, poisoned on any
    non-ok session so slot state always equals its ordered ok
    sessions)."""

    key: tuple
    app: object
    runtime: Optional[ShardedRuntime]
    backend: str
    epoch: int
    windows: int = 0    #: ok sessions analyzed on this slot so far
    probe: bool = False  #: this slot is the breaker's half-open probe


@dataclass
class _Tenant:
    name: str
    bucket: TokenBucket
    gate: WatermarkGate
    cache: GeometryCache = field(default_factory=GeometryCache)
    queue: deque = field(default_factory=deque)
    slots: dict = field(default_factory=dict)
    epochs: dict = field(default_factory=dict)
    wake: Optional[asyncio.Event] = None
    worker: Optional[asyncio.Task] = None


class _Pending:
    __slots__ = ("request", "session", "budget", "future", "abandoned")

    def __init__(self, request: SessionRequest, session: int,
                 budget: DeadlineBudget, future: asyncio.Future) -> None:
        self.request = request
        self.session = session
        self.budget = budget
        self.future = future
        #: Set when a deadline fired while the executor thread was still
        #: analyzing: the thread owns runtime teardown on its way out.
        self.abandoned = threading.Event()


class AnalysisService:
    """See module docstring.  Use as an async context manager::

        async with AnalysisService() as svc:
            result = await svc.submit(SessionRequest(tenant="a"))
    """

    def __init__(self, *,
                 backend: str = "process",
                 shards: int = 2,
                 max_inflight: int = 8,
                 queue_limit: int = 8,
                 high_water: Optional[int] = None,
                 low_water: Optional[int] = None,
                 rate: float = 50.0,
                 burst: float = 16.0,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 5.0,
                 default_deadline: Optional[float] = None,
                 registry=None,
                 clock=None,
                 faults: Optional[FaultPlan] = None,
                 recv_timeout: float = 10.0,
                 checkpoint_interval: int = 2,
                 max_threads: int = 4,
                 analyze_fn: Optional[Callable] = None,
                 exemplar_seed: Optional[int] = None,
                 exemplar_capacity: int = 4,
                 recorder=None) -> None:
        if backend not in ("serial", "thread", "process"):
            raise MachineError(f"unknown service backend {backend!r}")
        if max_inflight < 1 or queue_limit < 1:
            raise MachineError("max_inflight and queue_limit must be >= 1")
        self.backend = backend
        self.shards = shards
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.high_water = high_water if high_water is not None \
            else max(1, (queue_limit * 3) // 4)
        self.low_water = low_water if low_water is not None \
            else max(0, self.high_water // 2)
        self.rate = rate
        self.burst = burst
        self.default_deadline = default_deadline
        self.faults = faults
        self.recv_timeout = recv_timeout
        self.checkpoint_interval = checkpoint_interval
        self._clock = clock if clock is not None else SystemClock()
        self._real_time = isinstance(self._clock, SystemClock)
        # exemplar_seed opts the latency histograms into per-bucket
        # exemplar reservoirs (seeded-deterministic; see obs.metrics)
        self.metrics = ServiceMetrics(
            registry,
            exemplars=exemplar_capacity if exemplar_seed is not None else 0,
            exemplar_seed=exemplar_seed or 0)
        self.ledger = ServiceLedger()
        self.recorder = recorder
        if recorder is not None:
            # every control-plane event reaches the flight recorder; the
            # listener trips blackbox dumps on alert/breaker/deadline
            self.ledger.listener = recorder.record_event
            if registry is not None and recorder.exemplar_source is None:
                recorder.exemplar_source = registry.exemplars
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            reset_timeout=breaker_reset, clock=self._clock,
            on_transition=self._on_breaker)
        self._analyze_fn = analyze_fn
        self._tenants: dict[str, _Tenant] = {}
        self._inflight = 0
        self._next_session = 0
        self._running = False
        self._stopping = False
        self._max_threads = max_threads
        self._executor: Optional[ThreadPoolExecutor] = None
        self.counts = {"sessions": 0, "admitted": 0, "rejected": 0,
                       "completed": 0, "expired": 0, "errors": 0,
                       "degraded_sessions": 0}

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "AnalysisService":
        if self._running:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_threads,
            thread_name_prefix="service-session")
        self._running = True
        self._stopping = False
        self.metrics.set_breaker(STATE_CODES[self.breaker.state])
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._stopping = True
        workers = []
        for tenant in self._tenants.values():
            if tenant.wake is not None:
                tenant.wake.set()
            if tenant.worker is not None:
                workers.append(tenant.worker)
        if workers:
            await asyncio.gather(*workers, return_exceptions=True)
        # close every surviving slot (spawned workers must not outlive
        # the service)
        loop = asyncio.get_running_loop()
        closers = []
        for tenant in self._tenants.values():
            for slot in tenant.slots.values():
                if slot.runtime is not None:
                    closers.append(loop.run_in_executor(
                        self._executor, slot.runtime.close))
            tenant.slots.clear()
        if closers:
            await asyncio.gather(*closers, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._executor = None
        self._running = False

    async def __aenter__(self) -> "AnalysisService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- admission ------------------------------------------------------
    async def submit(self, request: SessionRequest) -> SessionResult:
        """Admit, queue, run; resolves to the session's terminal result.

        Never raises for load/deadline/infrastructure conditions — those
        become structured statuses on the result.
        """
        if not self._running or self._stopping:
            raise MachineError("service is not running")
        tenant = self._tenant(request.tenant)
        session = self._next_session
        self._next_session += 1
        self.counts["sessions"] += 1
        if not tenant.bucket.try_acquire():
            return self._reject(request, session, REJECT_RATE)
        if self._inflight >= self.max_inflight:
            return self._reject(request, session, REJECT_CAPACITY)
        if tenant.gate.paused or len(tenant.queue) >= self.queue_limit:
            return self._reject(request, session, REJECT_BACKPRESSURE)
        self.counts["admitted"] += 1
        self.metrics.admitted(request.tenant)
        deadline = request.deadline if request.deadline is not None \
            else self.default_deadline
        pending = _Pending(request, session,
                           DeadlineBudget(deadline, self._clock),
                           asyncio.get_running_loop().create_future())
        self._inflight += 1
        self.metrics.set_inflight(self._inflight)
        tenant.queue.append(pending)
        paused = tenant.gate.update(len(tenant.queue))
        self.metrics.set_queue_depth(tenant.name, len(tenant.queue))
        self.metrics.set_paused(tenant.name, paused)
        tenant.wake.set()
        return await pending.future

    def _reject(self, request: SessionRequest, session: int,
                reason: str) -> SessionResult:
        self.counts["rejected"] += 1
        self.metrics.rejected(request.tenant, reason)
        self.ledger.record("rejected", request.tenant, session, reason,
                           at=self._clock.monotonic())
        return SessionResult(request=request, session=session,
                             status=OVERLOADED, reason=reason)

    def _tenant(self, name: str) -> _Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = _Tenant(
                name=name,
                bucket=TokenBucket(self.rate, self.burst, self._clock),
                gate=WatermarkGate(self.high_water, self.low_water))
            tenant.wake = asyncio.Event()
            tenant.worker = asyncio.get_running_loop().create_task(
                self._drain(tenant))
            self._tenants[name] = tenant
            self.metrics.set_tenants(len(self._tenants))
        return tenant

    # -- per-tenant serial drain ----------------------------------------
    async def _drain(self, tenant: _Tenant) -> None:
        while True:
            while not tenant.queue:
                if self._stopping:
                    return
                tenant.wake.clear()
                await tenant.wake.wait()
            pending = tenant.queue.popleft()
            paused = tenant.gate.update(len(tenant.queue))
            self.metrics.set_queue_depth(tenant.name, len(tenant.queue))
            self.metrics.set_paused(tenant.name, paused)
            if self._stopping:
                result = SessionResult(
                    request=pending.request, session=pending.session,
                    status=ERROR, error="service stopped")
                self.counts["errors"] += 1
            else:
                result = await self._run(tenant, pending)
            self._resolve(pending, result)

    def _resolve(self, pending: _Pending, result: SessionResult) -> None:
        self._inflight -= 1
        self.metrics.set_inflight(self._inflight)
        if not pending.future.done():
            pending.future.set_result(result)

    # -- session execution ----------------------------------------------
    async def _run(self, tenant: _Tenant,
                   pending: _Pending) -> SessionResult:
        request = pending.request
        if pending.budget.expired():
            return self._expire(tenant, pending, "expired in queue",
                                slot=None)
        slot = tenant.slots.get(request.slot_key)
        fresh = slot is None
        if not fresh and slot.backend != self.backend \
                and self.backend == "process":
            # degraded slot while the breaker would allow the process
            # backend again: retire it and rebuild (automatic recovery;
            # the rebuild is the half-open probe when one is pending)
            backend, probe = self._choose_backend()
            if backend == "process":
                tenant.slots.pop(slot.key, None)
                if slot.runtime is not None and self._executor is not None:
                    self._executor.submit(slot.runtime.close)
                self.ledger.record("slot_retired", tenant.name,
                                   pending.session, "recovering from "
                                   f"{slot.backend} to process",
                                   at=self._clock.monotonic())
                slot = None
                fresh = True
                try:
                    slot = await self._build_slot(tenant, request,
                                                  backend, probe)
                except Exception as exc:  # noqa: BLE001
                    return self._fail(tenant, pending, None, exc)
        if fresh and slot is None:
            backend, probe = self._choose_backend()
            try:
                slot = await self._build_slot(tenant, request, backend,
                                              probe)
            except Exception as exc:  # noqa: BLE001 - structured surface
                return self._fail(tenant, pending, None, exc)
        start = self._clock.monotonic()
        try:
            fingerprint, trace_ref = await self._analyze(tenant, slot,
                                                         pending)
        except asyncio.TimeoutError:
            # the executor thread is still analyzing; hand it runtime
            # teardown (it checks this flag on the way out)
            pending.abandoned.set()
            return self._expire(tenant, pending, "cancelled mid-analysis",
                                slot=slot)
        except Exception as exc:  # noqa: BLE001 - structured surface
            return self._fail(tenant, pending, slot, exc)
        seconds = self._clock.monotonic() - start
        if pending.budget.expired():
            # completed, but past the promise — still a deadline miss
            return self._expire(tenant, pending, "finished past deadline",
                                slot=slot)
        slot.windows += 1
        if slot.backend == "process":
            self.breaker.record_success()
            slot.probe = False
        degraded = self.backend == "process" and slot.backend != "process"
        if degraded:
            self.counts["degraded_sessions"] += 1
            self.metrics.degraded(tenant.name)
            self.ledger.record("degraded", tenant.name, pending.session,
                               f"served on {slot.backend} backend",
                               at=self._clock.monotonic())
        self.counts["completed"] += 1
        exemplar = None
        if self.metrics.exemplars:
            exemplar = {"trace": trace_ref, "tenant": tenant.name,
                        "session": pending.session,
                        "backend": slot.backend}
        self.metrics.completed(tenant.name, seconds, exemplar)
        return SessionResult(
            request=request, session=pending.session, status=OK,
            fingerprint=fingerprint, backend=slot.backend,
            epoch=slot.epoch, fresh=fresh, degraded=degraded,
            seconds=seconds)

    def _choose_backend(self) -> tuple:
        """Consult the breaker for the backend of the next slot build.

        Returns ``(backend, probe)``; consuming the half-open probe when
        one is available, falling back to serial when the breaker is
        open (or the probe is already taken)."""
        if self.backend != "process":
            return self.backend, False
        state = self.breaker.state
        if self.breaker.allow():
            return "process", state == HALF_OPEN
        return "serial", False

    async def _build_slot(self, tenant: _Tenant, request: SessionRequest,
                          backend: str, probe: bool) -> _Slot:
        epoch = tenant.epochs.get(request.slot_key, -1) + 1
        tenant.epochs[request.slot_key] = epoch
        if self._analyze_fn is not None:
            slot = _Slot(key=request.slot_key, app=None, runtime=None,
                         backend=backend, epoch=epoch, probe=probe)
            tenant.slots[request.slot_key] = slot
            return slot

        def build() -> _Slot:
            # app/tree/runtime construction does geometry work too: keep
            # it on the tenant's cache, never the process-global one
            with tenant_geometry_cache(tenant.cache):
                app = make_app(request.app, request.pieces)
                runtime = ShardedRuntime(
                    app.tree, app.initial, shards=self.shards,
                    algorithm=request.algorithm, backend=backend,
                    faults=self.faults if backend == "process" else None,
                    recv_timeout=self.recv_timeout,
                    checkpoint_interval=self.checkpoint_interval)
            return _Slot(key=request.slot_key, app=app, runtime=runtime,
                         backend=backend, epoch=epoch, probe=probe)

        slot = await asyncio.get_running_loop().run_in_executor(
            self._executor, build)
        tenant.slots[request.slot_key] = slot
        return slot

    def _session_span(self, tenant: _Tenant, slot: _Slot,
                      pending: _Pending):
        """The per-session trace span: its id is the exemplar trace
        reference, and its args let ``repro blackbox`` replay the exact
        analysis (``repro explain`` cross-links).  No-op (span_id 0)
        when the tracer is disabled."""
        request = pending.request
        return tracing.span(
            "session", "service.session", tenant=tenant.name,
            session=pending.session, app=request.app,
            pieces=request.pieces, iterations=request.iterations,
            algorithm=request.algorithm, backend=slot.backend)

    async def _analyze(self, tenant: _Tenant, slot: _Slot,
                       pending: _Pending) -> tuple:
        """Returns ``(fingerprint, trace_ref)`` — the session span's id
        (0 when tracing is off), threaded into the latency exemplar."""
        request = pending.request
        if self._analyze_fn is not None:
            # injected analysis (FakeClock unit tests): run inline so
            # the control plane stays single-threaded and sleep-free
            with self._session_span(tenant, slot, pending) as sp:
                fingerprint = self._analyze_fn(request, slot.backend,
                                               tenant.name)
            return fingerprint, getattr(sp, "span_id", 0)
        runtime = slot.runtime
        app = slot.app
        iterations = request.iterations
        include_init = slot.windows == 0

        def work() -> tuple:
            try:
                ledger = prov.active_ledger()
                with self._session_span(tenant, slot, pending) as sp, \
                        tenant_geometry_cache(tenant.cache), \
                        ledger.scope(tenant=tenant.name):
                    # stream construction builds tasks and region
                    # requirements — tenant-cache traffic as well
                    stream = session_stream(app, iterations, include_init)
                    reports = runtime.analyze(stream)
                return (reports[0].fingerprint,
                        getattr(sp, "span_id", 0))
            finally:
                if pending.abandoned.is_set():
                    # deadline fired while we were analyzing; the slot
                    # was already dropped — tear the runtime down from
                    # the thread that owns it
                    try:
                        runtime.close()
                    except Exception:  # pragma: no cover - best effort
                        pass

        future = asyncio.get_running_loop().run_in_executor(
            self._executor, work)
        remaining = pending.budget.remaining()
        if self._real_time and remaining is not None:
            return await asyncio.wait_for(future, timeout=remaining)
        return await future

    # -- failure paths ---------------------------------------------------
    def _expire(self, tenant: _Tenant, pending: _Pending, detail: str,
                slot: Optional[_Slot]) -> SessionResult:
        self.counts["expired"] += 1
        self.metrics.expired(tenant.name)
        self.ledger.record("expired" if slot is None else "cancelled",
                           tenant.name, pending.session, detail,
                           at=self._clock.monotonic())
        if slot is not None:
            if slot.backend == "process":
                self.breaker.record_failure()
            self._poison(tenant, pending, slot, detail)
        return SessionResult(request=pending.request,
                             session=pending.session,
                             status=DEADLINE_EXCEEDED, reason=detail,
                             seconds=pending.budget.elapsed())

    def _fail(self, tenant: _Tenant, pending: _Pending,
              slot: Optional[_Slot], exc: Exception) -> SessionResult:
        self.counts["errors"] += 1
        self.metrics.errored(tenant.name)
        self.ledger.record("errored", tenant.name, pending.session,
                           f"{type(exc).__name__}: {exc}",
                           at=self._clock.monotonic())
        if (slot is None or slot.backend == "process") \
                and self.backend == "process":
            # worker loss / spawn failure / corrupt pipes: count against
            # the process pool's breaker
            self.breaker.record_failure()
        if slot is not None:
            self._poison(tenant, pending, slot, type(exc).__name__)
        return SessionResult(request=pending.request,
                             session=pending.session, status=ERROR,
                             error=f"{type(exc).__name__}: {exc}",
                             seconds=pending.budget.elapsed())

    def _poison(self, tenant: _Tenant, pending: _Pending, slot: _Slot,
                detail: str) -> None:
        """Drop a slot whose state can no longer be trusted; the next
        session on its key starts a fresh epoch."""
        tenant.slots.pop(slot.key, None)
        self.ledger.record("slot_poisoned", tenant.name, pending.session,
                           detail, at=self._clock.monotonic())
        runtime = slot.runtime
        if runtime is None:
            return
        if pending.abandoned.is_set():
            return  # the abandoned analysis thread closes it
        if self._executor is not None:
            self._executor.submit(runtime.close)
        else:  # pragma: no cover - defensive
            runtime.close()

    def _on_breaker(self, old: str, new: str) -> None:
        self.metrics.set_breaker(STATE_CODES[new])
        self.ledger.record("breaker", "", detail=f"{old}->{new}",
                           at=self._clock.monotonic())

    # -- telemetry -------------------------------------------------------
    def telemetry_sampler(self):
        """A :meth:`~repro.obs.telemetry.TelemetryHub.add_sampler`
        callable publishing live runtime internals into the registry
        before each tick: per-tenant geometry-cache counters and every
        live slot's analysis profile / recovery / precedence-oracle
        state (via :meth:`~repro.distributed.sharded.ShardedRuntime
        .publish_telemetry`).

        Must run on the service's event loop (``repro serve`` ticks the
        hub from an asyncio task), where slot maps are only ever
        mutated — no extra locking needed.
        """
        def sample(registry) -> None:
            for tenant in self._tenants.values():
                tenant.cache.publish_to(registry, tenant=tenant.name)
                for slot in tenant.slots.values():
                    if slot.runtime is not None:
                        slot.runtime.publish_telemetry(
                            registry, tenant=tenant.name)
        return sample

    # -- introspection ---------------------------------------------------
    def census_block(self) -> dict:
        """The census ``service`` block (all ints; see
        :data:`repro.obs.census.CENSUS_SCHEMA`)."""
        return {
            "tenants": len(self._tenants),
            "sessions": self.counts["sessions"],
            "admitted": self.counts["admitted"],
            "rejected": self.counts["rejected"],
            "completed": self.counts["completed"],
            "expired": self.counts["expired"],
            "errors": self.counts["errors"],
            "degraded_sessions": self.counts["degraded_sessions"],
            "breaker_state": STATE_CODES[self.breaker.state],
            "breaker_transitions": len(self.breaker.transitions),
        }

    def render(self) -> str:
        c = self.counts
        q = self.metrics.latency_quantiles()
        lat = (f" latency p50={q['p50'] * 1e3:.1f}ms "
               f"p95={q['p95'] * 1e3:.1f}ms p99={q['p99'] * 1e3:.1f}ms"
               if self.metrics.enabled and c["completed"] else "")
        return (f"service: {len(self._tenants)} tenants, "
                f"{c['sessions']} sessions "
                f"({c['completed']} ok, {c['rejected']} rejected, "
                f"{c['expired']} expired, {c['errors']} errors, "
                f"{c['degraded_sessions']} degraded), "
                f"breaker {self.breaker.state}{lat}")


# ----------------------------------------------------------------------
# cold-replay verification
# ----------------------------------------------------------------------
def verify_sessions(results, shards: int = 1) -> list[str]:
    """Cold-replay every completed session and compare fingerprints.

    Groups ok results by ``(tenant, slot_key, epoch)`` — exactly one
    persistent runtime's life — replays each group's streams in session
    order on a fresh serial runtime, and returns a list of mismatch
    descriptions (empty ⇔ every session observed analysis results
    bit-identical to an isolated single-tenant run: no cross-tenant
    leaks, no corrupted recovery)."""
    groups: dict[tuple, list] = {}
    for result in results:
        if result.status != OK:
            continue
        key = (result.tenant,) + result.request.slot_key + (result.epoch,)
        groups.setdefault(key, []).append(result)
    problems: list[str] = []
    for key, sessions in sorted(groups.items()):
        sessions.sort(key=lambda r: r.session)
        if not sessions[0].fresh:
            problems.append(
                f"group {key}: first ok session {sessions[0].session} is "
                "not the epoch head (missing fresh session — cannot "
                "anchor the replay)")
            continue
        first = sessions[0].request
        app = make_app(first.app, first.pieces)
        with ShardedRuntime(app.tree, app.initial, shards=shards,
                            algorithm=first.algorithm,
                            backend="serial") as runtime:
            include_init = True
            for result in sessions:
                stream = session_stream(app, result.request.iterations,
                                        include_init=include_init)
                include_init = False
                fingerprint = runtime.analyze(stream)[0].fingerprint
                if fingerprint != result.fingerprint:
                    problems.append(
                        f"group {key}: session {result.session} "
                        f"fingerprint {result.fingerprint[:16]} != cold "
                        f"replay {fingerprint[:16]}")
    return problems
