"""Circuit breaker guarding the process-backend pool.

Classic three-state breaker over the injectable clock:

* **closed** — process backend healthy; infrastructure failures
  (``WorkerLost``, receive timeouts, deadline cancellations of
  process-backed slots) count against ``failure_threshold``.
* **open** — the service sheds the process backend: new runtime slots
  are built on the serial in-process backend (correct but slower,
  surfaced as ``degraded=True`` on session results).  After
  ``reset_timeout`` seconds the breaker half-opens.
* **half_open** — exactly one probe slot may try the process backend;
  its success closes the breaker, its failure re-opens (re-arming the
  timer).

The breaker never *blocks* work — it only steers backend selection —
so a tripped breaker converts outages into slow-but-correct service
rather than errors.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.distributed.faults import SystemClock
from repro.errors import MachineError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric gauge encoding (``service.breaker`` metric).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0, clock=None,
                 on_transition: Optional[Callable[[str, str], None]] = None
                 ) -> None:
        if failure_threshold < 1:
            raise MachineError(
                f"failure threshold {failure_threshold} must be >= 1")
        if reset_timeout <= 0:
            raise MachineError(
                f"reset timeout {reset_timeout} must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock if clock is not None else SystemClock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self._on_transition = on_transition
        #: (old, new) transition history, for tests and the ledger.
        self.transitions: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    def _transition(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        self.transitions.append((old, new))
        if self._on_transition is not None:
            self._on_transition(old, new)

    @property
    def state(self) -> str:
        """Current state, folding in the open→half-open timer."""
        if self._state == OPEN and (self._clock.monotonic() - self._opened_at
                                    >= self.reset_timeout):
            self._transition(HALF_OPEN)
            self._probe_inflight = False
        return self._state

    @property
    def failures(self) -> int:
        return self._failures

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the *next* slot may use the guarded (process) backend.

        In ``half_open`` exactly one caller gets True (the probe);
        everyone else builds serial until the probe resolves.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        """A guarded-backend session completed cleanly."""
        if self.state == HALF_OPEN:
            self._probe_inflight = False
            self._transition(CLOSED)
        self._failures = 0

    def record_failure(self) -> None:
        """A guarded-backend session failed for infrastructure reasons."""
        state = self.state
        if state == HALF_OPEN:
            self._probe_inflight = False
            self._opened_at = self._clock.monotonic()
            self._transition(OPEN)
            return
        self._failures += 1
        if state == CLOSED and self._failures >= self.failure_threshold:
            self._opened_at = self._clock.monotonic()
            self._transition(OPEN)

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._failures}/{self.failure_threshold})")
