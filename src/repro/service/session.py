"""Session request/result records — the service's wire surface.

A *session* is one tenant-submitted analysis job: an application stream
(init + ``iterations`` steady iterations, exactly what ``repro-cli
analyze`` builds) analyzed on the tenant's persistent runtime slot.
Requests are self-describing and deterministic — ``(app, pieces,
iterations, algorithm)`` fully determines the task stream — which is
what makes the cold-replay verification in
:func:`repro.service.service.verify_sessions` possible: any completed
session can be re-derived from its result record alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.service.errors import OK


@dataclass(frozen=True)
class SessionRequest:
    """One tenant analysis job."""

    tenant: str
    app: str = "stencil"
    pieces: int = 4
    iterations: int = 1
    algorithm: str = "raycast"
    #: Wall-clock budget in seconds, from admission (``None`` = no
    #: deadline).  The clock runs while queued.
    deadline: Optional[float] = None

    @property
    def slot_key(self) -> tuple:
        """Runtime-slot identity: sessions with the same key share one
        persistent runtime (and therefore accumulate analysis state)."""
        return (self.app, self.pieces, self.algorithm)


@dataclass(frozen=True)
class SessionResult:
    """Terminal outcome of one session.  Always returned, never raised.

    ``status`` ∈ {``ok``, ``overloaded``, ``deadline_exceeded``,
    ``error``}; ``reason``/``error`` carry the structured detail.
    ``epoch`` counts the tenant slot's rebuilds (a poisoned slot is
    closed and the next session starts epoch+1 on fresh state), and
    ``fresh`` marks the first session of an epoch — together they let
    the verifier replay exactly the state each fingerprint was computed
    on.  ``degraded`` marks sessions served by the serial fallback while
    the circuit breaker held the process backend shed.
    """

    request: SessionRequest
    session: int
    status: str
    fingerprint: str = ""
    backend: str = ""
    epoch: int = 0
    fresh: bool = False
    degraded: bool = False
    seconds: float = 0.0
    reason: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def tenant(self) -> str:
        return self.request.tenant

    def describe(self) -> str:
        """One log line."""
        extra = ""
        if self.status == OK:
            extra = (f" fp={self.fingerprint[:12]} {self.backend}"
                     + (" degraded" if self.degraded else ""))
        elif self.reason:
            extra = f" ({self.reason})"
        elif self.error:
            extra = f" ({self.error})"
        return (f"[{self.tenant}] session {self.session} "
                f"{self.request.app}: {self.status}{extra} "
                f"{self.seconds * 1e3:.1f}ms")
