"""Exception hierarchy for the :mod:`repro` library.

All errors raised deliberately by the library derive from :class:`ReproError`
so that callers can catch library failures without catching programming
errors (``TypeError`` etc.) by accident.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric construction (bad rectangle, mismatched dims...)."""


class RegionTreeError(ReproError):
    """Invalid region-tree construction or traversal."""


class PrivilegeError(ReproError):
    """Invalid privilege usage (unknown reduction operator, bad combo...)."""


class TaskError(ReproError):
    """Invalid task launch: malformed requirements or aliased interfering
    region arguments within a single task (forbidden by the model, see
    paper section 4)."""


class CoherenceError(ReproError):
    """Internal coherence-algorithm invariant violation.

    Raised by the self-checking code in :mod:`repro.visibility`; seeing this
    in the wild means a bug in an algorithm, never a user mistake.
    """


class MachineError(ReproError):
    """Invalid machine model configuration or simulation misuse."""
