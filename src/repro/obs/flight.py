"""The flight recorder — always-on tail-latency forensics.

The obs stack *detects* trouble (SLO burn-rate alerts, breaker trips,
deadline expiries, recovery instants) but, until this module, kept no
evidence: by the time an alert fires the spans and ledger events that
explain it are gone, because tracing is off in production and the
service ledger only keeps counts.  The flight recorder closes that gap
the way aircraft do — a bounded ring of the *recent past*, always
recording, snapshotted to disk the moment something goes wrong.

Three pieces:

* :class:`FlightRecorder` — lock-protected rings of recently finished
  spans (keyed per shard), instant events, and ServiceLedger events
  (keyed per tenant).  Disarmed cost is the same one-attribute-check
  fast path as :func:`repro.obs.tracer.traced` and the provenance
  ledger; the micro-benchmark in ``benchmarks/test_obs_overhead.py``
  pins it under 1% of analysis time.
* **Triggered dumps** — when an SLO transitions to firing, a breaker
  opens, a deadline expires, or a recovery instant lands, the recorder
  snapshots its rings plus the registry's histogram exemplars into a
  schema-validated ``repro.blackbox/1`` JSON file.  Dumps are
  size-capped (oldest half of each ring dropped until the payload
  fits), rotated like :class:`~repro.obs.telemetry.TelemetrySink`
  segments, and debounced by a cooldown so an alert storm produces a
  handful of files, not thousands.
* :func:`validate_blackbox` / :func:`render_blackbox` — the schema
  check and the ``repro blackbox FILE`` incident report (timeline,
  critical path over the dumped spans, exemplar offenders, ``repro
  explain`` cross-links).

Worker-side spans arrive through the existing backend reply protocol:
:meth:`repro.obs.tracer.Tracer.absorb` offers every clock-aligned span
to the recorder, so process-backend shards contribute ring fragments
with no new wire messages.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.obs import tracer as tracer_mod
from repro.obs.doctor import TRUTHY, config_snapshot
from repro.obs.tracer import Instant, Span

#: Schema tag of every dump file.
BLACKBOX_SCHEMA = "repro.blackbox/1"

#: Environment hard-disable: when truthy the recorder refuses to arm
#: (registered in :data:`repro.obs.doctor.HATCHES`).
ENV_DISABLE = "REPRO_NO_FLIGHT"

#: Trigger kinds a dump can carry.
TRIGGER_KINDS = ("slo", "breaker", "deadline", "recovery", "manual")


def _env_disabled(environ: Optional[dict] = None) -> bool:
    import os
    env = os.environ if environ is None else environ
    return env.get(ENV_DISABLE, "").strip().lower() in TRUTHY


def _span_dict(span: Span) -> dict:
    return {"name": span.name, "category": span.category,
            "start": span.start, "end": span.end, "pid": span.pid,
            "tid": span.tid, "span_id": span.span_id,
            "parent_id": span.parent_id, "args": dict(span.args)}


def _instant_dict(event: Instant) -> dict:
    return {"name": event.name, "category": event.category,
            "ts": event.ts, "pid": event.pid, "tid": event.tid,
            "args": dict(event.args)}


def _event_dict(event) -> dict:
    """A ServiceLedger event (duck-typed — the service layer sits above
    obs in the import graph, so no ServiceEvent import here)."""
    return {"kind": event.kind, "tenant": event.tenant,
            "session": event.session, "detail": event.detail,
            "at": event.at}


class FlightRecorder:
    """Bounded rings of the recent past, dumped on anomaly.

    Parameters
    ----------
    directory:
        Where dump files go.  ``None`` keeps the recorder purely
        in-memory: rings fill and triggers are counted, but nothing is
        written (the process-global default).
    span_capacity / instant_capacity / event_capacity:
        Ring sizes — spans per shard, instants globally, ledger events
        per tenant.
    max_bytes:
        Dump size cap.  Oversized payloads drop the oldest half of
        every ring (repeatedly) until they fit; the ``dropped`` section
        of the dump records how much evidence was shed.
    max_dumps:
        Rotation: at most this many ``blackbox-*.json`` files are kept,
        oldest deleted first.
    cooldown:
        Minimum seconds between dumps (same injectable clock protocol
        as the tracer) — an alert storm is one incident, not a dump per
        event.  Suppressed triggers are counted in
        ``dumps_suppressed``.
    exemplar_source:
        Zero-argument callable returning exemplar rows (wire
        :meth:`repro.obs.metrics.MetricsRegistry.exemplars`).
    config_source:
        Zero-argument callable returning the configuration snapshot
        embedded in each dump; defaults to
        :func:`repro.obs.doctor.config_snapshot`.
    armed:
        Start recording immediately.  Arming is refused (silently — the
        hatch exists for incident response, not for raising) when
        ``REPRO_NO_FLIGHT`` is truthy.
    """

    def __init__(self, directory=None, *, span_capacity: int = 256,
                 instant_capacity: int = 128, event_capacity: int = 128,
                 max_bytes: int = 256 * 1024, max_dumps: int = 8,
                 cooldown: float = 5.0, clock=None,
                 exemplar_source: Optional[Callable[[], list]] = None,
                 config_source: Optional[Callable[[], dict]] = None,
                 armed: bool = False) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.span_capacity = max(1, int(span_capacity))
        self.instant_capacity = max(1, int(instant_capacity))
        self.event_capacity = max(1, int(event_capacity))
        self.max_bytes = max(4096, int(max_bytes))
        self.max_dumps = max(1, int(max_dumps))
        self.cooldown = float(cooldown)
        self.clock = clock if clock is not None \
            else tracer_mod._DEFAULT_CLOCK
        self.exemplar_source = exemplar_source
        self.config_source = config_source or config_snapshot
        self._lock = threading.Lock()
        self._spans: dict[int, deque] = {}
        self._instants: deque = deque(maxlen=self.instant_capacity)
        self._events: dict[str, deque] = {}
        self._paths: list[Path] = []
        self._dump_index = 0
        self._last_dump_at: Optional[float] = None
        self.dumps_written = 0
        self.dumps_suppressed = 0
        self.triggers_seen = 0
        self.last_dump: Optional[Path] = None
        self.armed = bool(armed) and not _env_disabled()

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> bool:
        """Start recording; returns whether arming took effect
        (``REPRO_NO_FLIGHT`` wins)."""
        if _env_disabled():
            self.armed = False
            return False
        self.armed = True
        return True

    def disarm(self) -> None:
        self.armed = False

    # ------------------------------------------------------------------
    # recording (hot path — called from tracer hooks and the ledger)
    # ------------------------------------------------------------------
    def record_span(self, span: Span) -> None:
        if not self.armed:
            return
        with self._lock:
            ring = self._spans.get(span.tid)
            if ring is None:
                ring = self._spans[span.tid] = \
                    deque(maxlen=self.span_capacity)
            ring.append(span)

    def record_spans(self, spans: Iterable[Span]) -> None:
        if not self.armed:
            return
        with self._lock:
            for span in spans:
                ring = self._spans.get(span.tid)
                if ring is None:
                    ring = self._spans[span.tid] = \
                        deque(maxlen=self.span_capacity)
                ring.append(span)

    def record_instant(self, event: Instant) -> None:
        if not self.armed:
            return
        with self._lock:
            self._instants.append(event)
        if event.category == "recovery":
            self._maybe_dump({"kind": "recovery", "name": event.name,
                              "detail": "", "tenant": "", "session": -1,
                              "ts": event.ts})

    def record_event(self, event) -> None:
        """Offer one ServiceLedger event (wired as the ledger's
        listener); trips a dump on alert-firing / breaker-open /
        deadline events."""
        if not self.armed:
            return
        with self._lock:
            ring = self._events.get(event.tenant)
            if ring is None:
                ring = self._events[event.tenant] = \
                    deque(maxlen=self.event_capacity)
            ring.append(event)
        trigger = self._event_trigger(event)
        if trigger is not None:
            self._maybe_dump(trigger)

    @staticmethod
    def _event_trigger(event) -> Optional[dict]:
        if event.kind == "alert" and "firing" in event.detail:
            kind = "slo"
        elif event.kind == "breaker" and event.detail.endswith("->open"):
            kind = "breaker"
        elif event.kind in ("expired", "cancelled"):
            kind = "deadline"
        else:
            return None
        return {"kind": kind, "name": event.kind, "detail": event.detail,
                "tenant": event.tenant, "session": event.session,
                "ts": event.at}

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    def dump(self, detail: str = "") -> Optional[Path]:
        """Force a dump now (``manual`` trigger; no cooldown)."""
        return self._write_dump({"kind": "manual", "name": "manual",
                                 "detail": detail, "tenant": "",
                                 "session": -1,
                                 "ts": self.clock.monotonic()})

    def _maybe_dump(self, trigger: dict) -> Optional[Path]:
        self.triggers_seen += 1
        now = self.clock.monotonic()
        with self._lock:
            if (self._last_dump_at is not None
                    and now - self._last_dump_at < self.cooldown):
                self.dumps_suppressed += 1
                return None
            self._last_dump_at = now
        return self._write_dump(trigger)

    def snapshot(self, trigger: Optional[dict] = None) -> dict:
        """The full ``repro.blackbox/1`` payload, without writing it."""
        trigger = trigger or {"kind": "manual", "name": "manual",
                              "detail": "", "tenant": "", "session": -1,
                              "ts": self.clock.monotonic()}
        with self._lock:
            shards = {str(tid): {"spans": [_span_dict(s) for s in ring]}
                      for tid, ring in sorted(self._spans.items())}
            instants = [_instant_dict(i) for i in self._instants]
            tenants = {name: {"events": [_event_dict(e) for e in ring]}
                       for name, ring in sorted(self._events.items())}
        exemplars = []
        if self.exemplar_source is not None:
            try:
                exemplars = list(self.exemplar_source())
            except Exception:  # evidence collection must not raise
                exemplars = []
        try:
            config = self.config_source()
        except Exception:
            config = {}
        return {"schema": BLACKBOX_SCHEMA, "seq": self.dumps_written,
                "trigger": dict(trigger),
                "written_at": self.clock.monotonic(), "config": config,
                "shards": shards, "instants": instants,
                "tenants": tenants, "exemplars": exemplars,
                "dropped": {"spans": 0, "instants": 0, "events": 0}}

    def _write_dump(self, trigger: dict) -> Optional[Path]:
        if self.directory is None:
            return None
        payload = self.snapshot(trigger)
        encoded = self._fit(payload)
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"blackbox-{self._dump_index:05d}.json"
        self._dump_index += 1
        path.write_text(encoded + "\n", encoding="utf-8")
        self._paths.append(path)
        while len(self._paths) > self.max_dumps:
            oldest = self._paths.pop(0)
            try:
                oldest.unlink()
            except OSError:
                pass
        self.dumps_written += 1
        self.last_dump = path
        return path

    def _fit(self, payload: dict) -> str:
        """Serialize under the size cap, shedding the oldest half of
        every ring per round and accounting for it in ``dropped``."""
        encoded = json.dumps(payload, sort_keys=True)
        while len(encoded.encode("utf-8")) > self.max_bytes:
            shed = 0
            for shard in payload["shards"].values():
                spans = shard["spans"]
                cut = max(1, len(spans) // 2) if spans else 0
                del spans[:cut]
                payload["dropped"]["spans"] += cut
                shed += cut
            instants = payload["instants"]
            cut = max(1, len(instants) // 2) if instants else 0
            del instants[:cut]
            payload["dropped"]["instants"] += cut
            shed += cut
            for tenant in payload["tenants"].values():
                events = tenant["events"]
                cut = max(1, len(events) // 2) if events else 0
                del events[:cut]
                payload["dropped"]["events"] += cut
                shed += cut
            exemplars = payload["exemplars"]
            cut = max(1, len(exemplars) // 2) if exemplars else 0
            del exemplars[:cut]
            shed += cut
            if shed == 0:
                break
            encoded = json.dumps(payload, sort_keys=True)
        return encoded

    def __repr__(self) -> str:
        state = "armed" if self.armed else "disarmed"
        spans = sum(len(r) for r in self._spans.values())
        return (f"FlightRecorder({state}, shards={len(self._spans)}, "
                f"spans={spans}, dumps={self.dumps_written})")


# ----------------------------------------------------------------------
# the process-global recorder (mirrors tracer._ACTIVE / prov._LEDGER)
# ----------------------------------------------------------------------
_RECORDER = FlightRecorder()
tracer_mod.set_flight_sink(_RECORDER)


def active_recorder() -> FlightRecorder:
    """The process-global recorder the tracer hooks feed."""
    return _RECORDER


def set_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Install a recorder (and point the tracer hooks at it); returns
    the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    tracer_mod.set_flight_sink(recorder)
    return previous


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema", "seq", "trigger", "written_at", "config",
             "shards", "instants", "tenants", "exemplars", "dropped")
_SPAN_KEYS = {"name": str, "category": str, "start": (int, float),
              "end": (int, float), "pid": int, "tid": int,
              "span_id": int, "args": dict}
_INSTANT_KEYS = {"name": str, "category": str, "ts": (int, float),
                 "pid": int, "tid": int, "args": dict}
_EVENT_KEYS = {"kind": str, "tenant": str, "session": int,
               "detail": str, "at": (int, float)}


def _check_record(record, keys: dict, where: str,
                  problems: list[str]) -> None:
    if not isinstance(record, dict):
        problems.append(f"{where}: expected object, got "
                        f"{type(record).__name__}")
        return
    for key, types in keys.items():
        if key not in record:
            problems.append(f"{where}: missing key {key!r}")
        elif not isinstance(record[key], types):
            problems.append(
                f"{where}.{key}: expected "
                f"{getattr(types, '__name__', types)}, got "
                f"{type(record[key]).__name__}")


def validate_blackbox(data) -> list[str]:
    """Structural check of one dump against ``repro.blackbox/1``.

    Returns problem strings, each prefixed with the key path of the
    offending record (``shards.0.spans[3].end: ...``) — empty when
    valid.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return [f"$: expected object, got {type(data).__name__}"]
    for key in _TOP_KEYS:
        if key not in data:
            problems.append(f"$: missing key {key!r}")
    if problems:
        return problems
    if data["schema"] != BLACKBOX_SCHEMA:
        problems.append(f"schema: expected {BLACKBOX_SCHEMA!r}, "
                        f"got {data['schema']!r}")
    trigger = data["trigger"]
    if not isinstance(trigger, dict):
        problems.append("trigger: expected object, got "
                        f"{type(trigger).__name__}")
    else:
        if not isinstance(trigger.get("kind"), str):
            problems.append("trigger.kind: missing or not a string")
        elif trigger["kind"] not in TRIGGER_KINDS:
            problems.append(f"trigger.kind: unknown kind "
                            f"{trigger['kind']!r}")
        if not isinstance(trigger.get("ts"), (int, float)):
            problems.append("trigger.ts: missing or not a number")
    if not isinstance(data["shards"], dict):
        problems.append("shards: expected object")
    else:
        for sid, shard in data["shards"].items():
            if not isinstance(shard, dict) or "spans" not in shard:
                problems.append(f"shards.{sid}: missing key 'spans'")
                continue
            for k, span in enumerate(shard["spans"]):
                _check_record(span, _SPAN_KEYS,
                              f"shards.{sid}.spans[{k}]", problems)
    if not isinstance(data["instants"], list):
        problems.append("instants: expected array")
    else:
        for k, inst in enumerate(data["instants"]):
            _check_record(inst, _INSTANT_KEYS, f"instants[{k}]", problems)
    if not isinstance(data["tenants"], dict):
        problems.append("tenants: expected object")
    else:
        for name, tenant in data["tenants"].items():
            if not isinstance(tenant, dict) or "events" not in tenant:
                problems.append(f"tenants.{name}: missing key 'events'")
                continue
            for k, event in enumerate(tenant["events"]):
                _check_record(event, _EVENT_KEYS,
                              f"tenants.{name}.events[{k}]", problems)
    if not isinstance(data["exemplars"], list):
        problems.append("exemplars: expected array")
    else:
        for k, row in enumerate(data["exemplars"]):
            if not isinstance(row, dict):
                problems.append(f"exemplars[{k}]: expected object")
                continue
            if not isinstance(row.get("value"), (int, float)):
                problems.append(
                    f"exemplars[{k}].value: missing or not a number")
            if not isinstance(row.get("metric"), str):
                problems.append(
                    f"exemplars[{k}].metric: missing or not a string")
    if not isinstance(data["config"], dict):
        problems.append("config: expected object")
    return problems


def load_blackbox(path) -> dict:
    """Read and validate one dump file; raises ``ValueError`` with the
    full problem list on schema violations."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    problems = validate_blackbox(data)
    if problems:
        raise ValueError(
            f"{path}: not a valid {BLACKBOX_SCHEMA} dump:\n  "
            + "\n  ".join(problems))
    return data


def blackbox_spans(data: dict) -> list[Span]:
    """Reconstruct :class:`~repro.obs.tracer.Span` records from a dump
    (the critical-path analyzer's input)."""
    spans = []
    for shard in data["shards"].values():
        for rec in shard["spans"]:
            spans.append(Span(rec["name"], rec["category"], rec["start"],
                              rec["end"], rec["pid"], rec["tid"],
                              rec["span_id"], rec.get("parent_id"),
                              dict(rec["args"])))
    return spans


# ----------------------------------------------------------------------
# rendering (the `repro blackbox` report)
# ----------------------------------------------------------------------
def _timeline(data: dict, last: int = 15) -> list[str]:
    rows = []
    for inst in data["instants"]:
        rows.append((inst["ts"], f"shard {inst['tid']}",
                     f"instant {inst['name']} [{inst['category']}]"))
    for name, tenant in data["tenants"].items():
        for event in tenant["events"]:
            what = event["kind"]
            if event["session"] >= 0:
                what += f" session {event['session']}"
            if event["detail"]:
                what += f" ({event['detail']})"
            rows.append((event["at"], f"tenant {name}", what))
    rows.sort(key=lambda r: r[0])
    return [f"  t={ts:>10.3f}  [{who}] {what}"
            for ts, who, what in rows[-last:]]


def render_blackbox(data: dict, top_k: int = 5) -> str:
    """Human incident report for one validated dump."""
    from repro.obs.critpath import TASK_CATEGORY, critical_path

    trigger = data["trigger"]
    lines = [f"{BLACKBOX_SCHEMA} incident dump (seq {data['seq']})"]
    what = trigger["kind"]
    if trigger.get("name") and trigger["name"] != trigger["kind"]:
        what += f" ({trigger['name']})"
    if trigger.get("detail"):
        what += f": {trigger['detail']}"
    who = []
    if trigger.get("tenant"):
        who.append(f"tenant={trigger['tenant']}")
    if trigger.get("session", -1) >= 0:
        who.append(f"session={trigger['session']}")
    lines.append(f"trigger    : {what}"
                 + (f"  [{' '.join(who)}]" if who else "")
                 + f"  at t={trigger['ts']:.3f}")
    overridden = {env: cfg for env, cfg in data["config"].items()
                  if cfg.get("origin") == "env"}
    if overridden:
        effects = ", ".join(f"{env}={cfg['value']}"
                            for env, cfg in sorted(overridden.items()))
        lines.append(f"config     : {effects}")
    else:
        lines.append("config     : all escape hatches at defaults")
    span_counts = {sid: len(s["spans"])
                   for sid, s in sorted(data["shards"].items())}
    total_spans = sum(span_counts.values())
    lines.append(
        f"evidence   : {total_spans} spans over "
        f"{len(span_counts)} shard(s) "
        f"({', '.join(f'{sid}:{n}' for sid, n in span_counts.items())}), "
        f"{len(data['instants'])} instants, "
        f"{sum(len(t['events']) for t in data['tenants'].values())} "
        f"ledger events, {len(data['exemplars'])} exemplars")
    dropped = data["dropped"]
    if any(dropped.values()):
        lines.append(f"dropped    : {dropped['spans']} spans, "
                     f"{dropped['instants']} instants, "
                     f"{dropped['events']} events (size cap)")
    timeline = _timeline(data)
    if timeline:
        lines.append(f"timeline (last {len(timeline)} events):")
        lines.extend(timeline)
    spans = blackbox_spans(data)
    task_spans = [s for s in spans if s.category == TASK_CATEGORY]
    if task_spans:
        lines.append(f"critical path ({len(task_spans)} task spans):")
        try:
            report = critical_path(spans)
            lines.extend("  " + row
                         for row in report.render(top_k).splitlines())
        except Exception as exc:  # partial rings may not form a DAG
            lines.append(f"  (critical-path analysis failed: {exc})")
    else:
        lines.append("critical path: (no task spans captured)")
    exemplars = sorted(data["exemplars"],
                       key=lambda e: -e.get("value", 0.0))[:top_k]
    if exemplars:
        lines.append(f"slowest exemplars (top {len(exemplars)}):")
        span_ids = {s.span_id for s in spans}
        for row in exemplars:
            extra = " ".join(f"{k}={row[k]}" for k in
                             ("trace", "task", "tenant", "shard",
                              "session") if k in row)
            mark = ""
            if isinstance(row.get("trace"), int):
                mark = (" -> span in dump" if row["trace"] in span_ids
                        else " (span evicted from ring)")
            lines.append(f"  {row.get('metric', '?')} "
                         f"value={row.get('value', 0.0):.6f} "
                         f"{extra}{mark}")
    hints = _explain_hints(data, spans, top_k)
    if hints:
        lines.append("explain cross-links:")
        lines.extend(hints)
    return "\n".join(lines)


def _explain_hints(data: dict, spans: list[Span],
                   top_k: int) -> list[str]:
    """``repro explain`` command lines cross-linking the longest dumped
    task spans into the provenance explainer.  The app parameters come
    from the enclosing ``service.session`` spans (preferring the one
    named by the trigger), so the printed command replays the exact
    analysis that produced the task."""
    from repro.obs.critpath import TASK_CATEGORY

    trigger = data["trigger"]
    session_args = None
    for span in spans:
        if span.category != "service.session":
            continue
        args = span.args
        if not all(k in args for k in ("app", "pieces", "iterations")):
            continue
        if session_args is None:
            session_args = args
        if (args.get("tenant") == trigger.get("tenant")
                and args.get("session") == trigger.get("session")):
            session_args = args
            break
    if session_args is None:
        return []
    tasks = sorted(
        (s for s in spans
         if s.category == TASK_CATEGORY and "task_id" in s.args),
        key=lambda s: -s.duration)
    hints = []
    seen = set()
    for span in tasks:
        task = span.args["task_id"]
        if task in seen:
            continue
        seen.add(task)
        hints.append(
            f"  repro explain {task} --app {session_args['app']} "
            f"--pieces {session_args['pieces']} "
            f"--iterations {session_args['iterations']}")
        if len(hints) >= top_k:
            break
    return hints
