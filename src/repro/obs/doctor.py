"""``repro doctor`` — one table of every ``REPRO_*`` escape hatch.

Every performance subsystem in this repository ships with an
environment escape hatch (disable the geometry operation cache, the
columnar scan path, the precedence oracle, ...).  During an incident the
first question is always "which of these was actually in effect?", so
this module keeps the authoritative registry: each :class:`Hatch` knows
its environment variable, what the subsystem does when the variable is
unset, and how a set value changes that.  ``repro doctor`` renders the
table; the flight recorder embeds :func:`config_snapshot` in every
``repro.blackbox/1`` dump so the exact configuration travels with the
evidence.

The registry is *declarative on purpose*: resolving a hatch only reads
``os.environ`` (no subsystem imports), so ``doctor`` can run — and dumps
can be written — even while the subsystems themselves are wedged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

#: Values treated as "set" for toggle hatches — mirrors
#: ``repro.runtime.order._TRUTHY`` and the ``_env_enabled`` helpers in
#: ``geometry.fastpath`` / ``visibility.history``.
TRUTHY = ("1", "true", "yes", "on")

#: Hatch kinds: ``disable`` (truthy turns a default-on feature off),
#: ``enable`` (truthy turns a default-off feature on), ``value`` (the
#: raw string is the setting).
KINDS = ("disable", "enable", "value")


@dataclass(frozen=True)
class Hatch:
    """One environment escape hatch.

    ``on_effect``/``off_effect`` are the human-readable in-effect values
    when the variable is set (truthy) respectively unset/falsey; for
    ``kind="value"`` the raw string itself is the in-effect value and
    ``off_effect`` is the default.
    """

    name: str
    env: str
    kind: str
    off_effect: str
    on_effect: str
    description: str

    def resolve(self, environ: Optional[dict] = None) -> dict:
        """``{"name", "env", "value", "origin", "raw"}`` for the current
        (or given) environment.  ``origin`` is ``"env"`` when the
        variable changes the outcome, ``"default"`` otherwise."""
        env = os.environ if environ is None else environ
        raw = env.get(self.env)
        stripped = (raw or "").strip().lower()
        if self.kind == "value":
            if raw is not None and raw.strip():
                return {"name": self.name, "env": self.env,
                        "value": raw.strip(), "origin": "env", "raw": raw}
            return {"name": self.name, "env": self.env,
                    "value": self.off_effect, "origin": "default",
                    "raw": raw}
        set_ = stripped in TRUTHY
        value = self.on_effect if set_ else self.off_effect
        return {"name": self.name, "env": self.env, "value": value,
                "origin": "env" if set_ else "default", "raw": raw}


#: The authoritative hatch registry, in rough dependency order.  New
#: escape hatches MUST be appended here — ``repro doctor`` and the
#: blackbox config snapshot are only as complete as this list.
HATCHES = (
    Hatch("geometry operation cache", "REPRO_NO_GEOM_CACHE", "disable",
          "enabled", "disabled",
          "memoized interval intersect/union fast path"),
    Hatch("columnar dependence scan", "REPRO_NO_COLUMNAR", "disable",
          "enabled", "disabled",
          "structure-of-arrays batched dependence scan"),
    Hatch("precedence order labels", "REPRO_NO_PRECEDENCE", "disable",
          "maintained", "disabled",
          "O(1) order-maintenance precedence oracle"),
    Hatch("precedence scan pruning", "REPRO_PRECEDENCE", "enable",
          "opt-in (off)", "on",
          "prune dependence scans with the precedence oracle"),
    Hatch("precedence differential", "REPRO_PRECEDENCE_DIFFERENTIAL",
          "enable", "off", "on",
          "cross-check every label answer against BFS"),
    Hatch("provenance ledger (serve)", "REPRO_PROVENANCE", "enable",
          "off", "recording",
          "arm the dependence-provenance ledger in repro serve"),
    Hatch("telemetry stream (serve)", "REPRO_NO_TELEMETRY", "disable",
          "enabled", "disabled",
          "suppress the telemetry hub/sink in repro serve"),
    Hatch("flight recorder", "REPRO_NO_FLIGHT", "disable",
          "armable", "hard-disabled",
          "forbid arming the blackbox flight recorder"),
    Hatch("benchmark node cap", "REPRO_BENCH_MAX_NODES", "value",
          "512 (full sweep)", "",
          "cap the node count of the benchmark sweep"),
)


def resolve_hatches(environ: Optional[dict] = None) -> list[dict]:
    """Every hatch resolved against the (given) environment."""
    return [h.resolve(environ) for h in HATCHES]


def config_snapshot(environ: Optional[dict] = None) -> dict:
    """``{env_var: {"value", "origin"}}`` — the compact form embedded in
    every blackbox dump (raw values included only when set)."""
    out = {}
    for row in resolve_hatches(environ):
        entry = {"value": row["value"], "origin": row["origin"]}
        if row["raw"] is not None:
            entry["raw"] = row["raw"]
        out[row["env"]] = entry
    return out


def render_doctor(environ: Optional[dict] = None) -> str:
    """The ``repro doctor`` table: hatch, variable, in-effect value,
    origin, and what the hatch controls."""
    rows = [("hatch", "env var", "in effect", "origin", "controls")]
    for h, row in zip(HATCHES, resolve_hatches(environ)):
        rows.append((row["name"], row["env"], row["value"], row["origin"],
                     h.description))
    widths = [max(len(r[k]) for r in rows) for k in range(5)]
    return "\n".join(
        "  ".join(col.ljust(w) for col, w in zip(row, widths)).rstrip()
        for row in rows)
