"""Structured span tracing — the event-timeline half of ``repro.obs``.

Legion ships Legion Prof because the costs the paper measures (dependence
analysis, equivalence-set refinement, shipping, recovery) are invisible
without per-phase attribution.  This module records them as **spans**: a
named, categorized interval with a start/end timestamp, a process/thread
attribution (``pid``/``tid`` — mapped to shard ids by the distributed
backends), a parent link (spans nest through a thread-local stack), and a
free-form ``args`` mapping.  Alongside spans a tracer buffers **instant
events** (recovery incidents: crash, respawn, replay, adoption) and
timestamped **counter samples**.

The buffers export losslessly to the Chrome trace-event / Perfetto JSON
format (:mod:`repro.obs.export`) and feed the offline critical-path
analyzer (:mod:`repro.obs.critpath`).

Design constraints, in order:

1. **A disabled tracer is (almost) free.**  The process-global default
   tracer is disabled; every instrumentation point goes through
   :func:`span`/:func:`traced`, whose fast path is one attribute check
   returning a shared no-op context manager.  The micro-benchmark in
   ``benchmarks/test_obs_overhead.py`` holds this under 5% of analysis
   time.
2. **Injectable clock.**  Timestamps come from the same clock protocol as
   :class:`repro.distributed.faults.SystemClock` /
   :class:`~repro.distributed.faults.FakeClock`, so trace tests assert on
   exact synthetic times instead of real elapsed time.
3. **Thread-safe, picklable payloads.**  Finished spans append under a
   lock (the thread backend interleaves replica analyses); the
   :class:`Span` records themselves are plain dataclasses of primitives
   so worker processes can ship their buffers back inside a
   :class:`~repro.distributed.verify.ShardReport`.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

#: pid used for the driver (control) process; workers use ``shard + 1``.
DRIVER_PID = 0


class _MonotonicClock:
    """Default clock: the same protocol as
    :class:`repro.distributed.faults.SystemClock` (``monotonic``/``sleep``),
    defined locally because this module sits *below* the distributed layer
    in the import graph — the backends instrument themselves with it, so a
    faults import here would be circular.  Inject a faults ``SystemClock``
    or ``FakeClock`` freely; the protocols are identical.
    """

    monotonic = staticmethod(time.monotonic)
    sleep = staticmethod(time.sleep)


_DEFAULT_CLOCK = _MonotonicClock()


@dataclass
class Span:
    """One finished, named interval.  Times are clock-monotonic seconds;
    the exporter converts to trace-event microseconds."""

    name: str
    category: str
    start: float
    end: float
    pid: int = DRIVER_PID
    tid: int = 0
    span_id: int = 0
    parent_id: Optional[int] = None
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def shifted(self, offset: float) -> "Span":
        """A copy with both timestamps moved by ``offset`` (clock-offset
        alignment when merging worker buffers into the driver trace)."""
        return replace(self, start=self.start + offset,
                       end=self.end + offset)


@dataclass
class Instant:
    """A zero-duration event (recovery incidents, markers)."""

    name: str
    category: str
    ts: float
    pid: int = DRIVER_PID
    tid: int = 0
    args: dict = field(default_factory=dict)


@dataclass
class CounterSample:
    """One timestamped sample of a named numeric series."""

    name: str
    ts: float
    value: float
    pid: int = DRIVER_PID


@dataclass
class TraceBuffer:
    """A self-contained snapshot of everything a tracer recorded."""

    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)


_span_ids = itertools.count(1)

#: Flight-recorder sink (:class:`repro.obs.flight.FlightRecorder`).
#: Installed by :mod:`repro.obs.flight` at import; every finished span
#: and instant is offered to it when armed.  The disarmed fast path is
#: two attribute checks — see ``benchmarks/test_obs_overhead.py``.
_FLIGHT = None


def set_flight_sink(sink) -> None:
    """Install the recorder finished spans/instants are offered to."""
    global _FLIGHT
    _FLIGHT = sink


class _NoopSpan:
    """Shared do-nothing context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Discard args (mirrors :meth:`_OpenSpan.set`)."""


_NOOP = _NoopSpan()


class _OpenSpan:
    """An in-flight span: context manager and mutable handle."""

    __slots__ = ("_tracer", "name", "category", "args", "start",
                 "span_id", "parent_id", "pid", "tid")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.args = args

    def set(self, **args) -> None:
        """Attach or update args while the span is open (e.g. the
        dependence list, known only once the scan finishes)."""
        self.args.update(args)

    def __enter__(self) -> "_OpenSpan":
        tracer = self._tracer
        self.span_id = next(_span_ids)
        stack = tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.pid, self.tid = tracer._attribution()
        stack.append(self)
        self.start = tracer.clock.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        end = tracer.clock.monotonic()
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        finished = Span(self.name, self.category, self.start, end,
                        self.pid, self.tid, self.span_id, self.parent_id,
                        self.args)
        if tracer.retain:
            with tracer._lock:
                tracer._buffer.spans.append(finished)
        flight = _FLIGHT
        if flight is not None and flight.armed:
            flight.record_span(finished)
        return False


class _Scope:
    """Thread-local pid/tid override (shard attribution)."""

    __slots__ = ("_tracer", "_pid", "_tid", "_prev")

    def __init__(self, tracer: "Tracer", pid: Optional[int],
                 tid: Optional[int]) -> None:
        self._tracer = tracer
        self._pid = pid
        self._tid = tid

    def __enter__(self) -> "_Scope":
        local = self._tracer._local
        self._prev = getattr(local, "override", None)
        prev_pid, prev_tid = self._prev if self._prev else (None, None)
        local.override = (self._pid if self._pid is not None else prev_pid,
                          self._tid if self._tid is not None else prev_tid)
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._local.override = self._prev
        return False


class Tracer:
    """Records spans, instants and counter samples with per-thread nesting.

    Parameters
    ----------
    clock:
        Monotonic clock (``monotonic()``); defaults to
        :class:`~repro.distributed.faults.SystemClock`.  Inject a
        :class:`~repro.distributed.faults.FakeClock` for exact-time tests.
    enabled:
        When False every recording entry point is a no-op; flip the
        attribute at any time.
    pid:
        Default process attribution for recorded events
        (:data:`DRIVER_PID` for the control process).
    retain:
        When False, finished spans/instants/counters are *not* kept in
        the tracer's own buffer — they are still offered to the flight
        recorder.  A long-lived service arms the recorder with a
        ``retain=False`` tracer so span memory stays bounded by the
        recorder's rings instead of growing for the process lifetime.
    """

    def __init__(self, clock=None, enabled: bool = True,
                 pid: int = DRIVER_PID, retain: bool = True) -> None:
        self.clock = clock if clock is not None else _DEFAULT_CLOCK
        self.enabled = enabled
        self.pid = pid
        self.retain = retain
        self._lock = threading.Lock()
        self._buffer = TraceBuffer()
        self._local = threading.local()
        self._tids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # per-thread state
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _attribution(self) -> tuple[int, int]:
        """(pid, tid) for an event recorded on the calling thread."""
        override = getattr(self._local, "override", None)
        pid = tid = None
        if override is not None:
            pid, tid = override
        if pid is None:
            pid = self.pid
        if tid is None:
            ident = threading.get_ident()
            tid = self._tids.get(ident)
            if tid is None:
                with self._lock:
                    tid = self._tids.setdefault(ident, len(self._tids))
        return pid, tid

    def scope(self, pid: Optional[int] = None, tid: Optional[int] = None):
        """Context manager attributing everything recorded by this thread
        to the given pid/tid (the backends map both to shard ids)."""
        if not self.enabled:
            return _NOOP
        return _Scope(self, pid, tid)

    def current(self) -> Optional[_OpenSpan]:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def span(self, name: str, category: str = "", **args):
        """Open a span as a context manager; ``with tracer.span(...)``."""
        if not self.enabled:
            return _NOOP
        return _OpenSpan(self, name, category, args)

    def instant(self, name: str, category: str = "", **args) -> None:
        """Record a zero-duration event at the current time."""
        if not self.enabled:
            return
        pid, tid = self._attribution()
        event = Instant(name, category, self.clock.monotonic(), pid, tid,
                        args)
        if self.retain:
            with self._lock:
                self._buffer.instants.append(event)
        flight = _FLIGHT
        if flight is not None and flight.armed:
            flight.record_instant(event)

    def counter(self, name: str, value: float) -> None:
        """Record one timestamped sample of a counter series."""
        if not self.enabled:
            return
        if not self.retain:
            return
        pid, _ = self._attribution()
        sample = CounterSample(name, self.clock.monotonic(), float(value),
                               pid)
        with self._lock:
            self._buffer.counters.append(sample)

    # ------------------------------------------------------------------
    # buffer management
    # ------------------------------------------------------------------
    def absorb(self, spans: Iterable[Span] = (),
               instants: Iterable[Instant] = (),
               offset: float = 0.0) -> None:
        """Merge externally recorded events (a worker's shipped buffer)
        into this tracer, shifting times by ``offset`` for clock
        alignment."""
        spans = [s.shifted(offset) for s in spans]
        instants = [replace(i, ts=i.ts + offset) for i in instants]
        if self.retain:
            with self._lock:
                self._buffer.spans.extend(spans)
                self._buffer.instants.extend(instants)
        flight = _FLIGHT
        if flight is not None and flight.armed:
            flight.record_spans(spans)
            for event in instants:
                flight.record_instant(event)

    def snapshot(self) -> TraceBuffer:
        """Copy of everything recorded so far."""
        with self._lock:
            return TraceBuffer(list(self._buffer.spans),
                               list(self._buffer.instants),
                               list(self._buffer.counters))

    def drain(self) -> TraceBuffer:
        """Remove and return everything recorded so far (workers drain
        their buffer into each analyze reply)."""
        with self._lock:
            out = self._buffer
            self._buffer = TraceBuffer()
            return out

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (f"Tracer({state}, spans={len(self._buffer.spans)}, "
                f"instants={len(self._buffer.instants)})")


# ----------------------------------------------------------------------
# the process-global active tracer
# ----------------------------------------------------------------------
#: Instrumentation points record against this tracer (like the root
#: logger); the default is disabled, so unconfigured runs pay only the
#: ``enabled`` check.
_ACTIVE = Tracer(enabled=False)


def active_tracer() -> Tracer:
    """The process-global tracer instrumentation records against."""
    return _ACTIVE


def set_tracer(tracer: Tracer) -> Tracer:
    """Install a new active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def span(name: str, category: str = "", **args):
    """Open a span on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if not tracer.enabled:
        return _NOOP
    return _OpenSpan(tracer, name, category, args)


def instant(name: str, category: str = "", **args) -> None:
    """Record an instant event on the active tracer."""
    tracer = _ACTIVE
    if tracer.enabled:
        tracer.instant(name, category, **args)


def counter(name: str, value: float) -> None:
    """Record a counter sample on the active tracer."""
    tracer = _ACTIVE
    if tracer.enabled:
        tracer.counter(name, value)


def traced(name: str, category: Optional[str] = None):
    """Decorator instrumenting a method with a span.

    ``category=None`` resolves the instance's ``_obs_cat`` attribute at
    call time (set by :class:`~repro.visibility.base.CoherenceAlgorithm`
    to ``"visibility.<algorithm>"``), so one decorator serves every
    subclass.  The disabled fast path adds a single attribute check.
    """
    import functools

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            tracer = _ACTIVE
            if not tracer.enabled:
                return fn(self, *args, **kwargs)
            cat = category if category is not None \
                else getattr(self, "_obs_cat", "")
            with _OpenSpan(tracer, name, cat, {}):
                return fn(self, *args, **kwargs)
        return wrapper
    return decorate
