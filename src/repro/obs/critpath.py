"""Offline critical-path analysis over recorded task spans.

DePa (Westrick et al., PPoPP 2022) shows that order reasoning over the
dynamic task DAG is cheap enough to do online; here we do the offline
variant over exactly the structures this repository already produces: the
per-task analysis spans recorded by :class:`~repro.obs.tracer.Tracer`
(category ``"task"``, tagged with ``task_id`` and the dependence list)
and the :class:`~repro.runtime.dependence.DependenceGraph`.

The longest *weighted* path — weights are real measured span durations,
not unit hop counts like
:meth:`~repro.runtime.dependence.DependenceGraph.critical_path_length` —
is the analysis-time lower bound no amount of parallelism can beat.  The
report attributes it per task (top-k spans on the path) and per phase
(child-span categories: which visibility algorithm, materialize vs
commit), turning the ROADMAP's "fast as the hardware allows" goal into a
measurable, attributable quantity.

Dependences come either from a live graph or from the ``deps`` list the
runtime stores in each task span's args — so ``repro-cli prof`` can
recompute the critical path from a trace file alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.tracer import Span

#: Span category the runtime records one span per task launch under.
TASK_CATEGORY = "task"


def select_task_spans(spans: Iterable[Span]) -> dict[int, Span]:
    """Pick one span per task id.

    Replicated analyses (N shards) record N spans per task; they are
    grouped by ``(pid, tid)`` and the group covering the most distinct
    tasks wins (ties break toward the smallest attribution — the
    reference replica on the driver, pid 0 / tid 0).  Within the group
    the earliest span per task id is kept.
    """
    groups: dict[tuple[int, int], dict[int, Span]] = {}
    for span in spans:
        if span.category != TASK_CATEGORY:
            continue
        task_id = span.args.get("task_id")
        if task_id is None:
            continue
        group = groups.setdefault((span.pid, span.tid), {})
        best = group.get(task_id)
        if best is None or span.start < best.start:
            group[task_id] = span
    if not groups:
        return {}
    winner = min(groups, key=lambda key: (-len(groups[key]), key))
    return groups[winner]


def deps_from_spans(task_spans: Mapping[int, Span]) -> dict[int, tuple]:
    """Dependence lists recovered from span args (trace-file mode)."""
    return {tid: tuple(span.args.get("deps") or ())
            for tid, span in task_spans.items()}


@dataclass
class PathStep:
    """One task on the critical path."""

    task_id: int
    name: str
    seconds: float
    cumulative: float  #: longest-path cost ending at (and including) this task


@dataclass
class CritPathReport:
    """The longest weighted path through the analyzed task DAG."""

    steps: list[PathStep] = field(default_factory=list)
    total: float = 0.0          #: summed span time along the path
    span_total: float = 0.0     #: summed time of *all* task spans
    tasks: int = 0              #: total tasks considered
    #: child-span seconds along the path, grouped by category
    #: (e.g. ``visibility.raycast`` materialize/commit time).
    per_phase: dict[str, float] = field(default_factory=dict)

    @property
    def parallel_fraction(self) -> float:
        """1 − path/total: the share of span time off the critical path
        (what perfect parallelism could hide)."""
        if self.span_total <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.total / self.span_total)

    def render(self, top_k: int = 10) -> str:
        if not self.steps:
            return "(no task spans recorded — was the tracer enabled?)"
        lines = [
            f"critical path: {len(self.steps)} of {self.tasks} tasks, "
            f"{self.total:.6f}s of {self.span_total:.6f}s total span time "
            f"({self.parallel_fraction * 100:.1f}% parallelizable)"]
        ranked = sorted(self.steps, key=lambda s: -s.seconds)[:top_k]
        rows = [("task", "name", "seconds", "path%")]
        for step in ranked:
            share = 100.0 * step.seconds / self.total if self.total else 0.0
            rows.append((str(step.task_id), step.name,
                         f"{step.seconds:.6f}", f"{share:.1f}"))
        widths = [max(len(r[k]) for r in rows) for k in range(4)]
        lines.append(f"top {len(ranked)} spans on the critical path:")
        for row in rows:
            lines.append("  " + "  ".join(
                col.ljust(w) if k == 1 else col.rjust(w)
                for k, (col, w) in enumerate(zip(row, widths))))
        if self.per_phase:
            lines.append("per-phase attribution along the path:")
            width = max(len(cat) for cat in self.per_phase)
            for cat, seconds in sorted(self.per_phase.items(),
                                       key=lambda kv: -kv[1]):
                share = 100.0 * seconds / self.total if self.total else 0.0
                lines.append(f"  {cat.ljust(width)}  {seconds:.6f}s "
                             f"({share:.1f}%)")
        return "\n".join(lines)


def _attribute_phases(path_spans: Sequence[Span],
                      all_spans: Iterable[Span]) -> dict[str, float]:
    """Sum child-span durations by category for spans on the path; the
    remainder of each task span is attributed to ``runtime.other``."""
    on_path = {span.span_id: span for span in path_spans}
    per_phase: dict[str, float] = {}
    child_time: dict[int, float] = {}
    for span in all_spans:
        parent = span.parent_id
        if parent in on_path and span.category != TASK_CATEGORY:
            cat = span.category or "uncategorized"
            per_phase[cat] = per_phase.get(cat, 0.0) + span.duration
            child_time[parent] = child_time.get(parent, 0.0) + span.duration
    residual = sum(max(0.0, span.duration - child_time.get(span.span_id, 0.0))
                   for span in path_spans)
    if residual > 0.0 and per_phase:
        per_phase["runtime.other"] = residual
    return per_phase


def critical_path(spans: Iterable[Span],
                  graph=None,
                  deps: Optional[Mapping[int, Iterable[int]]] = None
                  ) -> CritPathReport:
    """Compute the longest weighted path through the task DAG.

    ``spans`` is any span collection containing the ``"task"``-category
    spans (extra categories feed the per-phase attribution).  Dependences
    come from ``graph`` (a live
    :class:`~repro.runtime.dependence.DependenceGraph`), an explicit
    ``deps`` mapping, or — when neither is given — the ``deps`` stored in
    the span args by the runtime.
    """
    spans = list(spans)
    task_spans = select_task_spans(spans)
    if not task_spans:
        return CritPathReport()
    if deps is None:
        if graph is not None:
            deps = {tid: graph.dependences_of(tid)
                    for tid in task_spans if tid in graph.task_ids}
        else:
            deps = deps_from_spans(task_spans)

    # Dependences always point at earlier task ids, so ascending id order
    # is a topological order: one linear DP pass finds the longest path.
    cost: dict[int, float] = {}
    via: dict[int, Optional[int]] = {}
    for tid in sorted(task_spans):
        duration = task_spans[tid].duration
        best_dep, best_cost = None, 0.0
        for dep in deps.get(tid, ()):
            dep_cost = cost.get(dep)
            if dep_cost is not None and dep_cost > best_cost:
                best_dep, best_cost = dep, dep_cost
        cost[tid] = best_cost + duration
        via[tid] = best_dep

    tail = max(cost, key=lambda tid: (cost[tid], tid))
    path_ids: list[int] = []
    cursor: Optional[int] = tail
    while cursor is not None:
        path_ids.append(cursor)
        cursor = via[cursor]
    path_ids.reverse()

    steps = [PathStep(tid, task_spans[tid].name,
                      task_spans[tid].duration, cost[tid])
             for tid in path_ids]
    path_spans = [task_spans[tid] for tid in path_ids]
    return CritPathReport(
        steps=steps,
        total=sum(step.seconds for step in steps),
        span_total=sum(span.duration for span in task_spans.values()),
        tasks=len(task_spans),
        per_phase=_attribute_phases(path_spans, spans))
