"""The metrics registry — one labelled store behind every instrument.

Before this module the repository had three disjoint metric silos:
:class:`~repro.visibility.meter.CostMeter` (algorithmic operation
counts), :class:`~repro.visibility.meter.PhaseProfile` (wall-clock per
phase) and :class:`~repro.distributed.faults.RecoveryReport` (supervision
counters).  Each now carries a ``publish_to(registry, **labels)`` method
mapping its totals into *this* store, so exporters, the CLI and the
Perfetto counter tracks all read from one place.

Three instrument kinds, all labelled:

* :class:`Counter` — a monotonically published total;
* :class:`Gauge` — a last-value-wins measurement;
* :class:`Histogram` — fixed-bucket distribution (observations fall into
  the first bucket whose upper bound is >= the value, plus a +inf
  overflow bucket), with ``count`` and ``sum``.

All mutation is lock-protected: registries are shared across the thread
backend's workers.
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Iterator, Optional, Sequence

#: Default histogram buckets (seconds): spans from microseconds to
#: minutes, log-spaced — the range analysis phases actually cover.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def format_labels(labels: dict) -> str:
    """Render labels Prometheus-style: ``{k="v",...}`` (empty → '')."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Metric:
    """Base: a named instrument with one fixed label set."""

    kind = "abstract"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = dict(labels)
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        return self.name + format_labels(self.labels)

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_lock")
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(Metric):
    """A published monotonic total."""

    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += n

    def set_total(self, total: float) -> None:
        """Publish an externally accumulated total (idempotent; used by
        ``publish_to`` so re-publishing the same source is safe)."""
        if total < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot move backwards "
                f"({self.value} -> {total})")
        with self._lock:
            self.value = total


class Gauge(Metric):
    """A last-value-wins measurement."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += delta


class Histogram(Metric):
    """Fixed-bucket histogram with labels.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit +inf bucket catches the overflow.

    With ``exemplars > 0`` each bucket additionally keeps a bounded
    **exemplar reservoir**: up to that many concrete observations
    (value plus caller-supplied context: trace/span id, task, tenant,
    shard) chosen by reservoir sampling.  Sampling is driven by a
    private :class:`random.Random` seeded from ``exemplar_seed`` and the
    instrument's full name — never the salted builtin ``hash`` — so the
    same observation stream always yields byte-identical reservoirs.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: dict,
                 buckets: Sequence[float] = DEFAULT_BUCKETS,
                 exemplars: int = 0, exemplar_seed: int = 0) -> None:
        super().__init__(name, labels)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bounds = bounds + (math.inf,)
        self.counts = [0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0
        self.exemplar_capacity = int(exemplars)
        self.exemplar_seed = int(exemplar_seed)
        if self.exemplar_capacity:
            self._reservoirs: list[list[dict]] = \
                [[] for _ in self.bounds]
            self._reservoir_seen = [0] * len(self.bounds)
            self._exemplar_seq = 0
            # crc32 keeps the derivation stable across processes and
            # PYTHONHASHSEED values (str hash is salted; crc32 is not)
            self._rng = random.Random(
                self.exemplar_seed ^ zlib.crc32(self.full_name.encode()))

    def observe(self, value: float,
                exemplar: Optional[dict] = None) -> None:
        with self._lock:
            for k, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[k] += 1
                    break
            self.sum += value
            self.count += 1
            if self.exemplar_capacity and exemplar is not None:
                self._offer_exemplar(k, value, exemplar)

    def _offer_exemplar(self, k: int, value: float,
                        context: dict) -> None:
        """Reservoir-sample (Algorithm R) into bucket ``k``'s reservoir.
        Caller holds ``_lock``."""
        self._exemplar_seq += 1
        entry = dict(context)
        entry["value"] = float(value)
        entry["seq"] = self._exemplar_seq
        reservoir = self._reservoirs[k]
        self._reservoir_seen[k] += 1
        if len(reservoir) < self.exemplar_capacity:
            reservoir.append(entry)
            return
        j = self._rng.randrange(self._reservoir_seen[k])
        if j < self.exemplar_capacity:
            reservoir[j] = entry

    def exemplars(self) -> list[dict]:
        """Snapshot of every bucket reservoir, flattened.

        Each entry carries the caller's context keys plus ``value``,
        ``seq`` (monotone per-histogram offer number — lets the
        telemetry hub ship only new-since-last-tick exemplars) and
        ``bucket`` (the bucket's upper bound; ``None`` for +inf so the
        payload stays JSON-clean).
        """
        if not self.exemplar_capacity:
            return []
        with self._lock:
            out = []
            for bound, reservoir in zip(self.bounds, self._reservoirs):
                for entry in reservoir:
                    row = dict(entry)
                    row["bucket"] = None if math.isinf(bound) else bound
                    out.append(row)
        out.sort(key=lambda e: e["seq"])
        return out

    def bucket_counts(self) -> tuple[list[int], int, float]:
        """Tear-free ``(counts, count, sum)`` snapshot — safe to read
        while other threads observe (the telemetry hub's delta source)."""
        with self._lock:
            return list(self.counts), self.count, self.sum

    def quantile_bound(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile.

        An empty histogram has no quantiles: returns ``nan`` (render
        shows "no samples") rather than inventing a bound of 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        counts, count, _ = self.bucket_counts()
        if count == 0:
            return math.nan
        target = q * count
        seen = 0
        for bound, n in zip(self.bounds, counts):
            seen += n
            if seen >= target:
                return bound
        return self.bounds[-1]

    def quantile_summary(self,
                         qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """``{"p50": bound, "p95": bound, ...}`` for the given quantiles
        (bucket upper bounds; the latency summary the service publishes).
        All values are ``nan`` when the histogram is empty."""
        return {f"p{round(q * 100) if q < 1 else 100}":
                self.quantile_bound(q) for q in qs}

    def render(self, width: int = 40) -> str:
        """ASCII bar chart of the bucket distribution."""
        counts, count, _ = self.bucket_counts()
        if count == 0:
            return "(no samples)"
        peak = max(counts)
        lines = []
        for bound, n in zip(self.bounds, counts):
            if n == 0:
                continue
            label = "+inf" if math.isinf(bound) else _si(bound)
            bar = "#" * max(1, round(width * n / peak))
            lines.append(f"  <= {label:>8}  {n:>6}  {bar}")
        return "\n".join(lines)


def _si(seconds: float) -> str:
    """Human-scale seconds: 1e-05 → '10us'."""
    for scale, unit in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us")):
        if seconds >= scale:
            value = seconds / scale
            return (f"{value:.0f}{unit}" if value >= 1
                    else f"{value:g}{unit}")
    return f"{seconds:g}s"


class MetricsRegistry:
    """Process-wide store of labelled instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    (name, labels) pair always returns the same instrument, and asking
    for an existing name with a different kind is an error.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple, Metric] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs) -> Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, labels, **kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  exemplars: int = 0, exemplar_seed: int = 0,
                  **labels) -> Histogram:
        # get-or-create: exemplar settings (like buckets) only apply on
        # first creation of a given (name, labels) instrument
        return self._get(Histogram, name, labels, buckets=buckets,
                         exemplars=exemplars, exemplar_seed=exemplar_seed)

    def exemplars(self) -> list[dict]:
        """Every exemplar across every histogram, each row tagged with
        its instrument's ``metric`` full name (the flight recorder's
        dump source)."""
        out: list[dict] = []
        for metric in self:
            if isinstance(metric, Histogram) and metric.exemplar_capacity:
                for row in metric.exemplars():
                    row["metric"] = metric.full_name
                    out.append(row)
        return out

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Metric]:
        with self._lock:
            metrics = list(self._metrics.values())
        return iter(sorted(metrics, key=lambda m: m.full_name))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def find(self, name: str, **labels) -> Optional[Metric]:
        """Look an instrument up without creating it."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def snapshot(self) -> dict[str, float | dict]:
        """Flat ``{full_name: value}`` mapping (histograms nest a dict)."""
        out: dict[str, float | dict] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                _, count, total = metric.bucket_counts()
                out[metric.full_name] = {"count": count, "sum": total}
            else:
                out[metric.full_name] = metric.value
        return out

    def render(self) -> str:
        """Aligned text table of every instrument."""
        if not self._metrics:
            return "(no metrics recorded)"
        rows = [("metric", "kind", "value")]
        for metric in self:
            if isinstance(metric, Histogram):
                _, count, total = metric.bucket_counts()
                value = f"count={count} sum={total:.6f}"
            elif isinstance(metric, Gauge):
                value = f"{metric.value:.6f}"
            else:
                value = f"{metric.value:g}"
            rows.append((metric.full_name, metric.kind, value))
        widths = [max(len(r[k]) for r in rows) for k in range(3)]
        return "\n".join(
            "  ".join(col.ljust(w) for col, w in zip(row, widths)).rstrip()
            for row in rows)
