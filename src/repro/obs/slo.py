"""Declarative SLOs evaluated as multi-window burn-rate alerts.

An :class:`SloSpec` names an objective over the streaming telemetry —
availability (good/bad event counters), a latency threshold (fraction of
sessions under a bound, read from the windowed quantile digests), or a
rejection rate — and the :class:`SloEvaluator` turns each spec into the
standard SRE *multi-window, multi-burn-rate* alert pair:

* **fast burn** ("page"): the error budget is burning at >=
  ``fast_factor`` × the sustainable rate over *both* a short and a
  medium window — a sudden outage, caught in seconds, auto-resolving as
  soon as the short window clears;
* **slow burn** ("ticket"): >= ``slow_factor`` × over both a medium and
  a long window — a simmering problem that would quietly exhaust the
  budget.

The burn rate over a window is ``bad_fraction / (1 - objective)``: 1.0
means the budget is being spent exactly at the rate that exhausts it at
the objective horizon; 14× means a 99% objective's monthly budget would
be gone in ~2 days.  Requiring *two* windows to agree is what makes the
alerts both quick to fire and quick to resolve without flapping.

Evaluation is pure over a :class:`~repro.obs.telemetry.TelemetryHub` —
no sleeps, no wall clock — so a :class:`FakeClock`-driven test can march
an alert through fire and resolve deterministically.  Every transition
is recorded as a structured ``alert`` event on the service ledger (when
attached) and as ``slo.*`` gauges on the registry (when attached).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import MachineError

#: Spec kinds.
AVAILABILITY = "availability"
LATENCY = "latency"
REJECTION = "rejection"

KINDS = (AVAILABILITY, LATENCY, REJECTION)

#: Alert severities (the two burn speeds).
FAST = "fast"
SLOW = "slow"


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the telemetry stream.

    ``good``/``bad`` are counter *base* names (labels stripped; deltas
    are summed across tenants) for the ``availability`` and
    ``rejection`` kinds.  The ``latency`` kind instead reads the digest
    of ``histogram`` (a full metric name) and counts observations at
    centroids <= ``threshold`` seconds as good.
    """

    name: str
    kind: str
    objective: float                      #: target good fraction, e.g. 0.99
    good: tuple = ()
    bad: tuple = ()
    histogram: str = ""
    threshold: float = 0.0
    fast_factor: float = 14.0
    slow_factor: float = 2.0
    fast_windows: tuple = ("10s", "1m")   #: (short, medium)
    slow_windows: tuple = ("1m", "5m")    #: (medium, long)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise MachineError(f"unknown SLO kind {self.kind!r}; "
                               f"known: {KINDS}")
        if not 0.0 < self.objective < 1.0:
            raise MachineError(
                f"objective {self.objective} outside (0, 1)")
        if self.kind == LATENCY:
            if not self.histogram or self.threshold <= 0:
                raise MachineError("latency SLO needs a histogram name "
                                   "and a positive threshold")
        elif not self.good or not self.bad:
            raise MachineError(f"{self.kind} SLO needs good and bad "
                               "counter names")

    @property
    def budget(self) -> float:
        """Tolerated bad fraction (1 - objective)."""
        return 1.0 - self.objective

    def bad_fraction(self, hub, window) -> Optional[float]:
        """Fraction of events in the window that were bad (``None``
        when the window carries no events — no data is not an outage)."""
        if self.kind == LATENCY:
            digest = hub.digest(self.histogram, window)
            if digest is None or digest.count == 0:
                return None
            return 1.0 - digest.fraction_at_most(self.threshold)
        good = sum(hub.delta_matching(name, window) for name in self.good)
        bad = sum(hub.delta_matching(name, window) for name in self.bad)
        total = good + bad
        if total <= 0:
            return None
        return bad / total

    def burn_rate(self, hub, window) -> float:
        """Budget-burn multiple over the window (0.0 when no data)."""
        fraction = self.bad_fraction(hub, window)
        if fraction is None:
            return 0.0
        return fraction / self.budget


@dataclass
class SloStatus:
    """One (spec, severity) evaluation: the burn pair and alert state.

    ``changed`` marks a transition this tick (fire or resolve) — only
    changed statuses are appended to the hub's alert log and ledgered.
    """

    slo: str
    severity: str            #: :data:`FAST` or :data:`SLOW`
    firing: bool
    changed: bool
    ts: float
    burn_short: float = 0.0
    burn_long: float = 0.0
    factor: float = 0.0
    windows: tuple = ()
    objective: float = 0.0

    @property
    def name(self) -> str:
        return f"{self.slo}[{self.severity}]"

    def to_line(self) -> dict:
        """The ``repro.telemetry/1`` alert line."""
        return {
            "kind": "alert", "ts": round(self.ts, 6), "name": self.name,
            "slo": self.slo, "severity": self.severity,
            "state": "firing" if self.firing else "resolved",
            "burn": {"short": round(self.burn_short, 4),
                     "long": round(self.burn_long, 4)},
            "factor": self.factor,
            "windows": list(self.windows),
            "objective": self.objective,
        }

    def describe(self) -> str:
        state = "firing" if self.firing else "resolved"
        return (f"{self.name} {state}: burn "
                f"{self.burn_short:.1f}x/{self.burn_long:.1f}x over "
                f"{'/'.join(self.windows)} "
                f"(>{self.factor:g}x of {self.objective:.2%} budget)")


class SloEvaluator:
    """Evaluates a set of specs once per hub tick, with hysteresis-free
    two-window state machines per (spec, severity).

    ``ledger`` (a :class:`~repro.service.errors.ServiceLedger`) receives
    an ``alert`` event per transition; ``registry`` receives
    ``slo.burn{slo=,window=}`` and ``slo.firing{slo=,severity=}``
    gauges every tick.
    """

    def __init__(self, specs: Sequence[SloSpec], *,
                 ledger=None, registry=None) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise MachineError(f"duplicate SLO names in {names}")
        self.specs = tuple(specs)
        self.ledger = ledger
        self.registry = registry
        self._firing: dict[tuple, bool] = {}

    def evaluate(self, hub, now: float) -> list[SloStatus]:
        """One tick: burn every spec's window pairs, flip state machines,
        ledger transitions, publish gauges.  Returns every (spec,
        severity) status; callers filter on ``changed``."""
        statuses: list[SloStatus] = []
        for spec in self.specs:
            burns: dict[str, float] = {}
            for severity, factor, windows in (
                    (FAST, spec.fast_factor, spec.fast_windows),
                    (SLOW, spec.slow_factor, spec.slow_windows)):
                short, long_ = (burns.get(w) if w in burns
                                else spec.burn_rate(hub, w)
                                for w in windows)
                burns[windows[0]], burns[windows[1]] = short, long_
                firing = short > factor and long_ > factor
                key = (spec.name, severity)
                changed = firing != self._firing.get(key, False)
                self._firing[key] = firing
                status = SloStatus(
                    slo=spec.name, severity=severity, firing=firing,
                    changed=changed, ts=now, burn_short=short,
                    burn_long=long_, factor=factor, windows=windows,
                    objective=spec.objective)
                statuses.append(status)
                if changed and self.ledger is not None:
                    self.ledger.record("alert", "", detail=status.describe(),
                                       at=now)
            if self.registry is not None:
                for window, burn in sorted(burns.items()):
                    self.registry.gauge("slo.burn", slo=spec.name,
                                        window=window).set(burn)
        if self.registry is not None:
            for (slo, severity), firing in sorted(self._firing.items()):
                self.registry.gauge("slo.firing", slo=slo,
                                    severity=severity).set(int(firing))
        return statuses

    def firing(self) -> list[str]:
        """Currently-firing alert names, sorted."""
        return sorted(f"{slo}[{severity}]"
                      for (slo, severity), state in self._firing.items()
                      if state)


def default_service_slos() -> tuple[SloSpec, ...]:
    """The analysis service's stock objectives (what ``repro serve
    --telemetry-out`` evaluates):

    * ``availability`` — 99% of finished sessions complete (errors and
      deadline expiries spend the budget; admission rejects do not);
    * ``latency-1s`` — 95% of completed sessions finish within 1s
      (read from the global latency digest);
    * ``rejection`` — 95% of admission decisions admit (sustained
      shedding is an SLO violation even though each reject is a
      structured, intentional outcome).
    """
    return (
        SloSpec(name="availability", kind=AVAILABILITY, objective=0.99,
                good=("service.completed",),
                bad=("service.errors", "service.expired")),
        SloSpec(name="latency-1s", kind=LATENCY, objective=0.95,
                histogram="service.latency_seconds", threshold=1.0),
        SloSpec(name="rejection", kind=REJECTION, objective=0.95,
                good=("service.admitted",), bad=("service.rejected",)),
    )
