"""Streaming telemetry: windowed time-series over the live service.

The cumulative instruments in :mod:`repro.obs.metrics` answer
*post-mortem* questions — totals since process start.  A long-lived
:class:`~repro.service.service.AnalysisService` needs the *streaming*
questions answered while it runs: what is p99 latency right now, is a
tenant burning its error budget, did the breaker flap in the last
minute.  This module maintains that state incrementally — the
observability analogue of the paper's core move of updating analysis
state per task instead of recomputing from scratch:

* :class:`TelemetryHub` periodically samples a
  :class:`~repro.obs.metrics.MetricsRegistry` (plus any registered
  *samplers* that publish live runtime internals into it first) into a
  ring buffer of per-tick :class:`TelemetrySample` records.  Counters
  are stored as **deltas** (cumulative totals are differenced, with
  reset detection), gauges as last values, and histograms as per-tick
  :class:`QuantileDigest` deltas — so any sliding window is a cheap
  fold over at most ``window / interval`` small records and raw samples
  are never retained.
* :class:`QuantileDigest` is a mergeable fixed-centroid digest: a fixed
  vector of centroid locations (histogram bucket bounds) with counts.
  Merging two digests adds counts; a window quantile is one cumulative
  walk.  Digests built from the same bucket bounds as the offline
  :class:`~repro.obs.metrics.Histogram` agree with its
  ``quantile_bound`` within one bucket width by construction.
* :class:`TelemetrySink` writes every sample (and every SLO alert
  transition) as one JSON line in the ``repro.telemetry/1`` schema,
  with size-based rotation; :func:`validate_telemetry` is the schema
  checker CI runs over emitted files, and :func:`load_telemetry`
  replays a recorded stream back into a hub so ``repro-cli top`` can
  render from a file exactly as it renders live.

The clock is injectable (:class:`~repro.distributed.faults.SystemClock`
/ :class:`~repro.distributed.faults.FakeClock`), so every windowing and
burn-rate behavior is testable without real sleeps: advance the clock,
call :meth:`TelemetryHub.sample`, assert.
"""

from __future__ import annotations

import json
import math
import re
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import MachineError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Schema identifier stamped on every telemetry JSONL file.
TELEMETRY_SCHEMA = "repro.telemetry/1"

#: Line kinds a telemetry stream may carry.
LINE_KINDS = ("meta", "sample", "alert")

#: Default sliding windows (name -> seconds).
WINDOWS = {"10s": 10.0, "1m": 60.0, "5m": 300.0}

_FULL_NAME = re.compile(r'^(?P<name>[^{]+)(\{(?P<labels>.*)\})?$')
_LABEL = re.compile(r'(\w+)="([^"]*)"')


@lru_cache(maxsize=8192)
def _parse_cached(full_name: str) -> tuple[str, tuple]:
    match = _FULL_NAME.match(full_name)
    if match is None:  # pragma: no cover - regex accepts everything
        return full_name, ()
    labels = tuple(_LABEL.findall(match.group("labels") or ""))
    return match.group("name"), labels


def parse_full_name(full_name: str) -> tuple[str, dict]:
    """Split ``name{k="v",...}`` into ``(name, labels)`` — the inverse
    of :func:`repro.obs.metrics.format_labels`.  Metric names recur
    every tick, so the parse is memoized (a fresh labels dict is handed
    out per call; mutate freely)."""
    name, labels = _parse_cached(full_name)
    return name, dict(labels)


# ----------------------------------------------------------------------
# fixed-centroid quantile digest
# ----------------------------------------------------------------------
class QuantileDigest:
    """A mergeable quantile summary over a fixed centroid vector.

    ``centroids`` are inclusive upper bounds in strictly increasing
    order; a trailing ``+inf`` centroid is appended when absent, so the
    digest covers the whole line.  Observations land on the first
    centroid >= value (exactly the bucket rule of
    :class:`~repro.obs.metrics.Histogram`), which is what makes the
    windowed quantiles agree with the offline histogram bounds within
    one bucket width.  Merging digests with identical centroids is an
    elementwise count add — O(centroids), no raw samples kept.
    """

    __slots__ = ("centroids", "counts", "count", "sum")

    def __init__(self, centroids: Sequence[float]) -> None:
        bounds = tuple(float(c) for c in centroids)
        if not bounds:
            raise MachineError("digest needs at least one centroid")
        if list(bounds) != sorted(set(bounds)):
            raise MachineError("digest centroids must be strictly "
                               "increasing")
        if not math.isinf(bounds[-1]):
            bounds = bounds + (math.inf,)
        self.centroids = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, n: int = 1) -> None:
        """Fold ``n`` observations of ``value`` into the digest."""
        self.counts[bisect_left(self.centroids, value)] += n
        self.count += n
        self.sum += value * n

    def add_bucket_counts(self, counts: Sequence[int],
                          total: float = 0.0) -> None:
        """Fold pre-bucketed counts (a histogram delta) in; ``counts``
        must align with ``centroids``."""
        if len(counts) != len(self.counts):
            raise MachineError(
                f"bucket vector length {len(counts)} != "
                f"{len(self.counts)} centroids")
        for k, n in enumerate(counts):
            self.counts[k] += n
            self.count += n
        self.sum += total

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into this digest (identical centroids only)."""
        if other.centroids != self.centroids:
            raise MachineError("cannot merge digests with different "
                               "centroid vectors")
        self.add_bucket_counts(other.counts, other.sum)
        return self

    def quantile(self, q: float) -> float:
        """Centroid holding the ``q``-quantile (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise MachineError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return math.nan
        target = q * self.count
        seen = 0
        for centroid, n in zip(self.centroids, self.counts):
            seen += n
            if seen >= target:
                return centroid
        return self.centroids[-1]

    def quantiles(self, qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` — same key shape as
        :meth:`repro.obs.metrics.Histogram.quantile_summary`."""
        return {f"p{round(q * 100) if q < 1 else 100}": self.quantile(q)
                for q in qs}

    def fraction_at_most(self, bound: float) -> float:
        """Fraction of observations on centroids <= ``bound`` (NaN when
        empty) — the latency-SLO 'good events' reader."""
        if self.count == 0:
            return math.nan
        good = sum(n for c, n in zip(self.centroids, self.counts)
                   if c <= bound)
        return good / self.count

    def copy(self) -> "QuantileDigest":
        out = QuantileDigest(self.centroids)
        out.counts = list(self.counts)
        out.count = self.count
        out.sum = self.sum
        return out

    def to_dict(self) -> dict:
        """JSON-safe wire form (``inf`` centroid encoded as ``null``)."""
        return {
            "centroids": [None if math.isinf(c) else c
                          for c in self.centroids],
            "counts": list(self.counts),
            "sum": round(self.sum, 9),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileDigest":
        centroids = [math.inf if c is None else float(c)
                     for c in data["centroids"]]
        digest = cls(centroids)
        digest.add_bucket_counts([int(n) for n in data["counts"]],
                                 float(data.get("sum", 0.0)))
        return digest

    def __repr__(self) -> str:
        return (f"QuantileDigest(count={self.count}, "
                f"centroids={len(self.centroids)})")


# ----------------------------------------------------------------------
# one sampling tick
# ----------------------------------------------------------------------
@dataclass
class TelemetrySample:
    """Everything one hub tick extracted from the registry.

    ``counters`` hold **deltas** since the previous tick (reset-aware),
    ``gauges`` hold current values, ``digests`` hold per-tick histogram
    deltas as :class:`QuantileDigest` records.  Keys are metric
    ``full_name`` strings (labels included), so per-tenant series stay
    distinct.  ``exemplars`` carry the histogram exemplar rows *offered
    since the previous tick* (keyed like ``digests``; present only when
    a histogram has exemplar reservoirs enabled), so a windowed p99 can
    point at the concrete sessions behind it.
    """

    ts: float
    interval: float
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    digests: dict[str, QuantileDigest] = field(default_factory=dict)
    exemplars: dict[str, list] = field(default_factory=dict)

    def to_line(self) -> dict:
        line = {
            "kind": "sample", "ts": round(self.ts, 6),
            "interval": round(self.interval, 6),
            "counters": {k: self.counters[k]
                         for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "digests": {k: self.digests[k].to_dict()
                        for k in sorted(self.digests)},
        }
        if self.exemplars:
            line["exemplars"] = {k: self.exemplars[k]
                                 for k in sorted(self.exemplars)}
        return line

    @classmethod
    def from_line(cls, line: dict) -> "TelemetrySample":
        return cls(
            ts=float(line["ts"]), interval=float(line.get("interval", 0.0)),
            counters={k: float(v)
                      for k, v in (line.get("counters") or {}).items()},
            gauges={k: float(v)
                    for k, v in (line.get("gauges") or {}).items()},
            digests={k: QuantileDigest.from_dict(v)
                     for k, v in (line.get("digests") or {}).items()},
            exemplars={k: list(v)
                       for k, v in (line.get("exemplars") or {}).items()})

    def base_totals(self) -> dict[str, float]:
        """Counter deltas folded by base name (labels stripped), built
        lazily and cached — samples are immutable once ringed, and the
        SLO evaluator asks for this fold every tick."""
        cache = getattr(self, "_base_totals", None)
        if cache is None:
            cache = {}
            for name, value in self.counters.items():
                base = _parse_cached(name)[0]
                cache[base] = cache.get(base, 0.0) + value
            self._base_totals = cache
        return cache


# ----------------------------------------------------------------------
# JSONL sink with size-based rotation
# ----------------------------------------------------------------------
class TelemetrySink:
    """Writes telemetry lines under a directory, rotating by size.

    Files are ``<prefix>-00000.jsonl``, ``<prefix>-00001.jsonl``, ...;
    every file opens with its own ``meta`` line so each rotation segment
    is self-describing.  ``max_bytes`` bounds one segment (the meta +
    at least one record always fit — a single oversized record never
    wedges the sink).
    """

    def __init__(self, directory: str | Path, *,
                 max_bytes: int = 1 << 20,
                 prefix: str = "telemetry",
                 meta: Optional[dict] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max(1024, int(max_bytes))
        self.prefix = prefix
        self.meta = dict(meta or {})
        self._index = 0
        self._handle = None
        self._written = 0
        self.lines = 0
        self.rotations = 0

    @property
    def paths(self) -> list[Path]:
        """Every segment written so far, in rotation order."""
        return sorted(self.directory.glob(f"{self.prefix}-*.jsonl"))

    def _open_segment(self) -> None:
        path = self.directory / f"{self.prefix}-{self._index:05d}.jsonl"
        self._handle = path.open("w")
        self._written = 0
        meta = dict(self.meta, kind="meta", schema=TELEMETRY_SCHEMA,
                    segment=self._index)
        self._emit(meta)

    def _emit(self, obj: dict) -> None:
        text = json.dumps(obj, sort_keys=True,
                          separators=(",", ":")) + "\n"
        self._handle.write(text)
        self._handle.flush()
        self._written += len(text)
        self.lines += 1

    def write(self, obj: dict) -> None:
        """Append one line, rotating first when the segment is full."""
        if self._handle is None:
            self._open_segment()
        elif self._written >= self.max_bytes:
            self._handle.close()
            self._index += 1
            self.rotations += 1
            self._open_segment()
        self._emit(obj)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# the hub
# ----------------------------------------------------------------------
class TelemetryHub:
    """Periodic sampler + sliding-window query surface.

    Pull-based by design: nothing in the analysis or service hot paths
    knows the hub exists — they keep publishing cumulative instruments
    exactly as before, and the hub differences those totals at each
    :meth:`sample`.  A run without a hub therefore pays *zero* telemetry
    cost (the overhead proof in ``benchmarks/test_obs_overhead.py`` pins
    this).

    ``samplers`` are callables invoked with the registry at the top of
    every tick; they publish live runtime internals (service slot
    profiles, recovery counters, per-tenant geometry caches) so the
    subsequent snapshot sees them.  ``evaluator`` (an
    :class:`~repro.obs.slo.SloEvaluator`) is consulted once per tick;
    alert transitions are appended to :attr:`alerts` and written to the
    sink.
    """

    def __init__(self,
                 registry: Optional[MetricsRegistry] = None,
                 *,
                 clock=None,
                 interval: float = 1.0,
                 windows: Optional[dict[str, float]] = None,
                 sink: Optional[TelemetrySink] = None,
                 evaluator=None) -> None:
        if interval <= 0:
            raise MachineError(f"sample interval {interval} must be > 0")
        if clock is None:
            from repro.distributed.faults import SystemClock
            clock = SystemClock()
        self.registry = registry
        self.clock = clock
        self.interval = float(interval)
        self.windows = dict(windows if windows is not None else WINDOWS)
        if not self.windows:
            raise MachineError("hub needs at least one window")
        capacity = int(math.ceil(max(self.windows.values())
                                 / self.interval)) + 1
        self.samples: deque[TelemetrySample] = deque(maxlen=capacity)
        self.sink = sink
        self.evaluator = evaluator
        self.alerts: list[dict] = []
        self._samplers: list[Callable] = []
        self._last_counters: dict[str, float] = {}
        self._last_hist: dict[str, tuple] = {}
        self._last_exemplar_seq: dict[str, int] = {}
        self._last_ts: Optional[float] = None

    # -- sampling -------------------------------------------------------
    def add_sampler(self, sampler: Callable) -> None:
        """Register ``sampler(registry)`` to run before each snapshot."""
        self._samplers.append(sampler)

    def sample(self) -> TelemetrySample:
        """Take one tick: publish samplers, difference the registry,
        append to the ring, evaluate SLOs, write the sink."""
        if self.registry is None:
            raise MachineError("replayed hub cannot sample (no registry)")
        for sampler in self._samplers:
            sampler(self.registry)
        now = self.clock.monotonic()
        elapsed = (now - self._last_ts if self._last_ts is not None
                   else self.interval)
        self._last_ts = now
        sample = TelemetrySample(ts=now, interval=max(0.0, elapsed))
        for metric in self.registry:
            name = metric.full_name
            if isinstance(metric, Counter):
                current = metric.value
                last = self._last_counters.get(name)
                # reset-aware delta: a total below the last seen value
                # means the source restarted; its whole total is new
                delta = current if last is None or current < last \
                    else current - last
                self._last_counters[name] = current
                sample.counters[name] = delta
            elif isinstance(metric, Histogram):
                counts, _, total = metric.bucket_counts()
                last_counts, last_sum = self._last_hist.get(
                    name, ([0] * len(counts), 0.0))
                if len(last_counts) != len(counts) \
                        or any(c < p for c, p in zip(counts, last_counts)):
                    last_counts, last_sum = [0] * len(counts), 0.0
                digest = QuantileDigest(metric.bounds)
                digest.add_bucket_counts(
                    [c - p for c, p in zip(counts, last_counts)],
                    total - last_sum)
                self._last_hist[name] = (counts, total)
                if digest.count:
                    sample.digests[name] = digest
                if metric.exemplar_capacity:
                    # ship only exemplars offered since the last tick
                    # (monotone per-histogram seq), mirroring the delta
                    # treatment of every other record kind
                    last_seq = self._last_exemplar_seq.get(name, 0)
                    fresh = [row for row in metric.exemplars()
                             if row["seq"] > last_seq]
                    if fresh:
                        self._last_exemplar_seq[name] = \
                            max(row["seq"] for row in fresh)
                        sample.exemplars[name] = fresh
            elif isinstance(metric, Gauge):
                sample.gauges[name] = metric.value
        self._derive_hit_rates(sample)
        self.samples.append(sample)
        if self.sink is not None:
            self.sink.write(sample.to_line())
        if self.evaluator is not None:
            for status in self.evaluator.evaluate(self, now):
                if status.changed:
                    line = status.to_line()
                    self.alerts.append(line)
                    if self.sink is not None:
                        self.sink.write(line)
        return sample

    def _derive_hit_rates(self, sample: TelemetrySample) -> None:
        """Instantaneous ``geom.cache.hit_rate`` gauges from the tick's
        hit/miss deltas (one per label set; only when there was
        traffic)."""
        for name, hits in sample.counters.items():
            base, labels = parse_full_name(name)
            if base != "geom.cache.hits":
                continue
            miss_name = name.replace("geom.cache.hits",
                                     "geom.cache.misses", 1)
            misses = sample.counters.get(miss_name, 0.0)
            if hits + misses > 0:
                from repro.obs.metrics import format_labels
                sample.gauges["geom.cache.hit_rate"
                              + format_labels(labels)] = \
                    hits / (hits + misses)

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    # -- windowed queries -----------------------------------------------
    def window_seconds(self, window: str | float) -> float:
        """Resolve a window name (or raw seconds) to seconds."""
        if isinstance(window, str):
            if window not in self.windows:
                raise MachineError(
                    f"unknown window {window!r}; have "
                    f"{sorted(self.windows)}")
            return self.windows[window]
        return float(window)

    def samples_in(self, window: str | float) -> list[TelemetrySample]:
        """Samples whose timestamp falls inside the trailing window."""
        if not self.samples:
            return []
        horizon = self.samples[-1].ts - self.window_seconds(window)
        return [s for s in self.samples if s.ts > horizon]

    def span(self, window: str | float) -> float:
        """Seconds of data actually covered by the window's samples."""
        return sum(s.interval for s in self.samples_in(window))

    def delta(self, name: str, window: str | float) -> float:
        """Summed counter delta over the window (0.0 when unseen)."""
        return sum(s.counters.get(name, 0.0)
                   for s in self.samples_in(window))

    def delta_matching(self, base_name: str,
                       window: str | float) -> float:
        """Summed deltas of every counter whose *base* name (labels
        stripped) equals ``base_name`` — the cross-tenant fold."""
        return sum(s.base_totals().get(base_name, 0.0)
                   for s in self.samples_in(window))

    def rate(self, name: str, window: str | float) -> float:
        """Per-second rate of a counter over the window."""
        seconds = self.span(window)
        return self.delta(name, window) / seconds if seconds > 0 else 0.0

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Most recent value of a gauge (scans back for samplers that
        publish intermittently)."""
        for sample in reversed(self.samples):
            if name in sample.gauges:
                return sample.gauges[name]
        return default

    def digest(self, name: str,
               window: str | float) -> Optional[QuantileDigest]:
        """Merged digest of a histogram series over the window (``None``
        when the window saw no observations)."""
        merged: Optional[QuantileDigest] = None
        for sample in self.samples_in(window):
            part = sample.digests.get(name)
            if part is None:
                continue
            if merged is None:
                merged = part.copy()
            else:
                merged.merge(part)
        return merged

    def quantiles(self, name: str, window: str | float,
                  qs: Sequence[float] = (0.5, 0.95, 0.99)) -> dict:
        """Windowed quantile summary (NaNs when the window is empty)."""
        digest = self.digest(name, window)
        if digest is None:
            return {f"p{round(q * 100) if q < 1 else 100}": math.nan
                    for q in qs}
        return digest.quantiles(qs)

    def exemplars_in(self, name: str, window: str | float) -> list[dict]:
        """Every exemplar row shipped for ``name`` inside the window,
        slowest first — what ``repro top`` renders as the concrete
        offenders behind the windowed p95/p99."""
        rows: list[dict] = []
        for sample in self.samples_in(window):
            rows.extend(sample.exemplars.get(name, ()))
        rows.sort(key=lambda r: -r.get("value", 0.0))
        return rows

    def series_names(self) -> dict[str, set]:
        """Every key seen across the ring, by record kind."""
        out = {"counters": set(), "gauges": set(), "digests": set()}
        for sample in self.samples:
            out["counters"].update(sample.counters)
            out["gauges"].update(sample.gauges)
            out["digests"].update(sample.digests)
        return out

    def firing_alerts(self) -> list[dict]:
        """Alert lines still in the firing state (latest transition per
        alert name wins — correct for live and replayed hubs alike)."""
        latest: dict[str, dict] = {}
        for line in self.alerts:
            latest[line["name"]] = line
        return [line for _, line in sorted(latest.items())
                if line["state"] == "firing"]

    def __len__(self) -> int:
        return len(self.samples)


# ----------------------------------------------------------------------
# schema validation + replay
# ----------------------------------------------------------------------
def _telemetry_paths(source: str | Path) -> list[Path]:
    path = Path(source)
    if path.is_dir():
        paths = sorted(path.glob("*.jsonl"))
        if not paths:
            raise FileNotFoundError(
                f"no *.jsonl telemetry segments under {path}")
        return paths
    if not path.exists():
        raise FileNotFoundError(f"no such telemetry file: {path}")
    return [path]


def validate_telemetry(source) -> list[str]:
    """Schema-check a telemetry stream; returns human-readable problems
    (empty means valid).

    ``source`` is a file path, a directory of segments, or an iterable
    of already-parsed line dicts.  Checks: every line is an object with
    a known ``kind``; each segment opens with a ``repro.telemetry/1``
    meta line; sample timestamps are monotone per segment; counter
    deltas are non-negative numbers; digests carry aligned, increasing
    centroid vectors with non-negative counts; alerts carry a name and
    a firing/resolved state.
    """
    if isinstance(source, (str, Path)):
        try:
            paths = _telemetry_paths(source)
        except FileNotFoundError as exc:
            return [str(exc)]
        segments = []
        for path in paths:
            lines = []
            for k, text in enumerate(path.read_text().splitlines()):
                try:
                    lines.append(json.loads(text))
                except json.JSONDecodeError as exc:
                    return [f"{path.name} line {k}: not JSON ({exc})"]
            segments.append((path.name, lines))
    else:
        segments = [("<lines>", list(source))]

    problems: list[str] = []
    for segment, lines in segments:
        if not lines:
            problems.append(f"{segment}: empty segment")
            continue
        last_ts = None
        for k, line in enumerate(lines):
            where = f"{segment} line {k}"
            if not isinstance(line, dict):
                problems.append(f"{where}: not an object")
                continue
            kind = line.get("kind")
            if kind not in LINE_KINDS:
                problems.append(f"{where}: unknown kind {kind!r}")
                continue
            if k == 0:
                if kind != "meta":
                    problems.append(
                        f"{where}: segment must open with a meta line")
                elif line.get("schema") != TELEMETRY_SCHEMA:
                    problems.append(
                        f"{where}: schema {line.get('schema')!r} != "
                        f"{TELEMETRY_SCHEMA!r}")
                continue
            if kind == "meta":
                continue
            ts = line.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: 'ts' must be a number")
                continue
            if kind == "sample":
                if last_ts is not None and ts < last_ts:
                    problems.append(
                        f"{where}: sample ts {ts} precedes {last_ts}")
                last_ts = ts
                for group in ("counters", "gauges"):
                    values = line.get(group, {})
                    if not isinstance(values, dict):
                        problems.append(f"{where}: {group!r} must be an "
                                        "object")
                        continue
                    for name, value in values.items():
                        if not isinstance(value, (int, float)):
                            problems.append(
                                f"{where}: {group}[{name!r}] not a "
                                "number")
                        elif group == "counters" and value < 0:
                            problems.append(
                                f"{where}: counter delta {name!r} is "
                                f"negative ({value})")
                for name, digest in (line.get("digests") or {}).items():
                    problems.extend(
                        f"{where}: digests[{name!r}]: {p}"
                        for p in _digest_problems(digest))
                exemplars = line.get("exemplars", {})
                if not isinstance(exemplars, dict):
                    problems.append(
                        f"{where}: 'exemplars' must be an object")
                else:
                    for name, rows in exemplars.items():
                        problems.extend(
                            f"{where}: exemplars[{name!r}]{p}"
                            for p in _exemplar_problems(rows))
            elif kind == "alert":
                if not isinstance(line.get("name"), str):
                    problems.append(f"{where}: alert needs a 'name'")
                if line.get("state") not in ("firing", "resolved"):
                    problems.append(
                        f"{where}: alert state must be firing/resolved, "
                        f"got {line.get('state')!r}")
    return problems


def _exemplar_problems(rows) -> list[str]:
    """Problems with one sample line's exemplar rows; each message is
    suffix key-path form (``[k].value: ...``)."""
    if not isinstance(rows, list):
        return [": must be an array"]
    problems = []
    for k, row in enumerate(rows):
        if not isinstance(row, dict):
            problems.append(f"[{k}]: must be an object")
            continue
        if not isinstance(row.get("value"), (int, float)):
            problems.append(f"[{k}].value: missing or not a number")
        if not isinstance(row.get("seq"), int) or row.get("seq", 0) < 1:
            problems.append(f"[{k}].seq: missing or not a positive "
                            "integer")
    return problems


def _digest_problems(digest) -> list[str]:
    if not isinstance(digest, dict):
        return ["not an object"]
    centroids = digest.get("centroids")
    counts = digest.get("counts")
    if not isinstance(centroids, list) or not isinstance(counts, list):
        return ["needs 'centroids' and 'counts' lists"]
    if len(centroids) != len(counts):
        return [f"{len(centroids)} centroids vs {len(counts)} counts"]
    finite = [c for c in centroids if c is not None]
    if finite != sorted(set(finite)):
        return ["centroids not strictly increasing"]
    if any(not isinstance(n, int) or n < 0 for n in counts):
        return ["counts must be non-negative integers"]
    return []


def load_telemetry(source: str | Path) -> TelemetryHub:
    """Replay a recorded stream into a query-only hub.

    The returned hub has no registry (``sample()`` is refused) but the
    full windowed query surface and the recorded alert transitions —
    ``repro-cli top --once`` renders from it exactly as from a live
    hub."""
    paths = _telemetry_paths(source)
    problems = validate_telemetry(source)
    if problems:
        detail = "; ".join(problems[:5])
        if len(problems) > 5:
            detail += f"; ... {len(problems) - 5} more"
        raise ValueError(f"{source} is not a valid telemetry stream: "
                         f"{detail}")
    interval = 1.0
    windows: Optional[dict] = None
    samples: list[TelemetrySample] = []
    alerts: list[dict] = []
    for path in paths:
        for text in path.read_text().splitlines():
            line = json.loads(text)
            kind = line.get("kind")
            if kind == "meta":
                interval = float(line.get("interval", interval))
                if isinstance(line.get("windows"), dict):
                    windows = {str(k): float(v)
                               for k, v in line["windows"].items()}
            elif kind == "sample":
                samples.append(TelemetrySample.from_line(line))
            elif kind == "alert":
                alerts.append(line)
    hub = TelemetryHub(None, clock=_FrozenClock(), interval=interval,
                       windows=windows)
    for sample in samples:
        hub.samples.append(sample)
    hub.alerts = alerts
    return hub


class _FrozenClock:
    """Clock for replayed hubs — never consulted, never sleeps."""

    def monotonic(self) -> float:  # pragma: no cover - defensive
        return 0.0

    def sleep(self, seconds: float) -> None:  # pragma: no cover
        raise MachineError("replayed telemetry hub cannot sleep")
