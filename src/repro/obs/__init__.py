"""repro.obs — unified observability: span tracing, metrics, Perfetto
export, and critical-path profiling.

One subsystem replaces three silos (`CostMeter`, `PhaseProfile`,
`RecoveryReport` keep their APIs but publish into the shared
:class:`MetricsRegistry`), adds the event timeline they lacked, and
answers "what was the critical path of this run?" offline from a trace
file alone.
"""

from repro.obs.critpath import CritPathReport, critical_path, deps_from_spans
from repro.obs.export import (load_trace, to_chrome_trace, trace_events,
                              validate_trace, write_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               DEFAULT_BUCKETS)
from repro.obs.tracer import (DRIVER_PID, CounterSample, Instant, Span,
                              TraceBuffer, Tracer, active_tracer, counter,
                              instant, set_tracer, span, traced)

__all__ = [
    "CritPathReport", "critical_path", "deps_from_spans",
    "load_trace", "to_chrome_trace", "trace_events", "validate_trace",
    "write_trace",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "DRIVER_PID", "CounterSample", "Instant", "Span", "TraceBuffer",
    "Tracer", "active_tracer", "counter", "instant", "set_tracer", "span",
    "traced",
]
